//! Sequential vs. batched+sharded write distribution (the tentpole
//! comparison behind the distributor refactor).
//!
//! For each (provider, batch, shards) point the harness replays the same
//! seeded zipf-skewed write workload through the real follower → leader
//! pipeline and reports the leader's distribution throughput in virtual
//! time under that provider's calibrated latency model (AWS: SQS FIFO +
//! S3/DynamoDB; GCP: ordered Pub/Sub + Cloud Storage/Datastore), for
//! both the object-store and hybrid backends.

use fk_bench::distributor_bench::{compare, run_multi_leader, DistRunConfig, MultiRunConfig};
use fk_core::deploy::Provider;
use fk_core::distributor::DistributorConfig;
use fk_core::UserStoreKind;

fn main() {
    println!("distributor_path: leader distribution throughput (virtual time)");
    println!(
        "{:<5} {:<10} {:>6} {:>7} {:>14} {:>14} {:>9}",
        "cloud", "store", "batch", "shards", "seq tx/s", "pipe tx/s", "speedup"
    );
    for (cloud, provider) in [("aws", Provider::Aws), ("gcp", Provider::Gcp)] {
        for (label, store) in [
            ("object", UserStoreKind::Object),
            ("hybrid", UserStoreKind::hybrid_default()),
        ] {
            for (batch, shards) in [(8usize, 4usize), (16, 4), (16, 8), (32, 8)] {
                let base = DistRunConfig {
                    store,
                    provider,
                    ..DistRunConfig::standard(DistributorConfig::new(shards, batch))
                };
                let (seq, pipe, speedup) = compare(DistributorConfig::new(shards, batch), &base);
                println!(
                    "{cloud:<5} {label:<10} {batch:>6} {shards:>7} {:>14.1} {:>14.1} {:>8.2}x",
                    seq.throughput_per_s, pipe.throughput_per_s, speedup
                );
            }
        }
    }

    println!();
    println!("multi_leader: leader-tier scale-out, uniform interleaved write mix");
    println!(
        "{:<5} {:>7} {:>14} {:>14} {:>9}",
        "cloud", "groups", "1-group tx/s", "tier tx/s", "speedup"
    );
    for (cloud, provider) in [("aws", Provider::Aws), ("gcp", Provider::Gcp)] {
        let config = MultiRunConfig {
            provider,
            ..MultiRunConfig::standard()
        };
        let one = run_multi_leader(1, &config);
        for groups in [2usize, 4, 8] {
            let tier = run_multi_leader(groups, &config);
            println!(
                "{cloud:<5} {groups:>7} {:>14.1} {:>14.1} {:>8.2}x",
                one.throughput_per_s,
                tier.throughput_per_s,
                tier.throughput_per_s / one.throughput_per_s
            );
        }
    }
}
