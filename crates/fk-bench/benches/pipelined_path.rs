//! Criterion microbenchmark behind the `pipelined_depth` gate: one
//! session's zipf write mix at pipeline depth 1 (the blocking client)
//! against depth 16 (the handle-based client), on both provider
//! profiles — see `fk_bench::pipelined_bench` for the three-clock model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fk_bench::pipelined_bench::{run_pipelined, PipelinedRunConfig};
use fk_core::deploy::Provider;

fn bench_pipelined_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelined_depth");
    group.sample_size(10);
    for provider in [Provider::Aws, Provider::Gcp] {
        for depth in [1usize, 4, 16] {
            let config = PipelinedRunConfig {
                provider,
                writes: 32,
                nodes: 8,
                ..PipelinedRunConfig::standard(depth)
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{provider:?}"), depth),
                &depth,
                |b, _| b.iter(|| run_pipelined(black_box(&config))),
            );
        }
    }
    group.finish();

    for provider in [Provider::Aws, Provider::Gcp] {
        let base = PipelinedRunConfig {
            provider,
            ..PipelinedRunConfig::standard(16)
        };
        let (blocking, pipelined, speedup) = fk_bench::pipelined_bench::compare_depths(16, &base);
        println!(
            "pipelined_depth {provider:?}: depth 1 {:.1} writes/s vs depth 16 {:.1} writes/s — {speedup:.2}x",
            blocking.throughput_per_s, pipelined.throughput_per_s,
        );
    }
}

criterion_group!(benches, bench_pipelined_depth);
criterion_main!(benches);
