//! Criterion benchmark of the client read path across user-store
//! backends (no simulated latency) — the implementation-side counterpart
//! of Figure 8 — plus the watermark-validated client cache, whose hits
//! skip the backend entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::read_cache::ReadCacheConfig;
use fk_core::{CreateMode, UserStoreKind};

fn bench_read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_path");
    for (label, store) in [
        ("object", UserStoreKind::Object),
        ("kv", UserStoreKind::KeyValue),
        ("hybrid", UserStoreKind::hybrid_default()),
        ("cached", UserStoreKind::Cached),
    ] {
        for size in [64usize, 4096, 65536] {
            let deployment = Deployment::start(DeploymentConfig::aws().with_user_store(store));
            let client = deployment.connect("bench").expect("connect");
            let path = format!("/r-{label}-{size}");
            client
                .create(&path, &vec![0x77; size], CreateMode::Persistent)
                .expect("create");
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("get_data_{label}"), size),
                &size,
                |b, _| {
                    b.iter(|| client.get_data(&path, false).unwrap());
                },
            );
            drop(client);
            deployment.shutdown();
        }
    }
    group.finish();
}

/// The cached read path: after the first fetch every iteration is a
/// watermark-validated hit — pure client work, no backend access.
fn bench_read_path_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_path_cached");
    for size in [64usize, 4096, 65536] {
        let deployment = Deployment::start(
            DeploymentConfig::aws().with_read_cache(ReadCacheConfig::with_capacity(64)),
        );
        let client = deployment.connect("bench").expect("connect");
        let path = format!("/rc-{size}");
        client
            .create(&path, &vec![0x77; size], CreateMode::Persistent)
            .expect("create");
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("get_data_hit", size), &size, |b, _| {
            b.iter(|| client.get_data(&path, false).unwrap());
        });
        let stats = client.cache_stats();
        assert!(
            stats.hits > stats.misses,
            "bench loop should be hit-dominated: {stats:?}"
        );
        drop(client);
        deployment.shutdown();
    }
    group.finish();
}

fn bench_get_children(c: &mut Criterion) {
    let deployment = Deployment::start(DeploymentConfig::aws());
    let client = deployment.connect("bench").expect("connect");
    client
        .create("/dir", b"", CreateMode::Persistent)
        .expect("create");
    for i in 0..50 {
        client
            .create(&format!("/dir/child-{i:03}"), b"", CreateMode::Persistent)
            .expect("create child");
    }
    c.bench_function("get_children_50", |b| {
        b.iter(|| client.get_children("/dir", false).unwrap());
    });
    drop(client);
    deployment.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_read_path, bench_read_path_cached, bench_get_children
}
criterion_main!(benches);
