//! Criterion microbenchmarks of the synchronization primitives and the
//! KV-store expression engine — the real implementation cost (no
//! simulated latency), complementing Table 6a's modelled latencies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fk_cloud::metering::Meter;
use fk_cloud::trace::Ctx;
use fk_cloud::value::{Item, Value};
use fk_cloud::{Condition, KvStore, Region, Update};
use fk_sync::{AtomicCounter, AtomicList, TimedLockManager};

fn bench_kv_ops(c: &mut Criterion) {
    let kv = KvStore::new("bench", Region::US_EAST_1, Meter::new());
    let ctx = Ctx::disabled();
    let mut group = c.benchmark_group("kvstore");
    for size in [64usize, 1024, 65536] {
        kv.put(
            &ctx,
            "item",
            Item::new().with("data", vec![0u8; size]),
            Condition::Always,
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("conditional_update", size),
            &size,
            |b, _| {
                let mut version = 0i64;
                b.iter(|| {
                    version += 1;
                    kv.update(
                        &ctx,
                        "item",
                        &Update::new().set("version", version),
                        Condition::ItemExists,
                    )
                    .unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("strong_get", size), &size, |b, _| {
            b.iter(|| kv.get(&ctx, "item", fk_cloud::Consistency::Strong).unwrap());
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let kv = KvStore::new("bench", Region::US_EAST_1, Meter::new());
    let ctx = Ctx::disabled();
    let locks = TimedLockManager::new(kv.clone(), 3_600_000);
    let counter = AtomicCounter::new(kv.clone(), "ctr");
    let list = AtomicList::new(kv.clone(), "list");

    let mut group = c.benchmark_group("primitives");
    group.bench_function("lock_acquire_release", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 1;
            let acq = locks.acquire(&ctx, "locked", t).unwrap();
            locks.release(&ctx, &acq.token).unwrap();
        });
    });
    group.bench_function("counter_increment", |b| {
        b.iter(|| counter.increment(&ctx).unwrap());
    });
    group.bench_function("list_append_remove", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            list.append(&ctx, vec![Value::Num(i)]).unwrap();
            list.remove(&ctx, vec![Value::Num(i)]).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kv_ops, bench_primitives);
criterion_main!(benches);
