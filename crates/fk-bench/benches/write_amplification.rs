//! Criterion microbenchmarks behind the `write_amplification` gate: the
//! binary node codec against the legacy JSON encoding (encode + decode
//! throughput and the encoded-size ratio on the zipf payload mix), and
//! the epoch-coalesced session-mark epilogue against the historical
//! per-session conditional updates on the 64-session interleaved mix.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fk_bench::write_amp::{compare_encoded_sizes, run_write_amp, WriteAmpConfig};
use fk_core::codec;
use fk_core::user_store::NodeRecord;
use std::sync::Arc;

fn sample_record(size: usize) -> NodeRecord {
    NodeRecord {
        path: "/bench/amp/node".into(),
        data: bytes::Bytes::from(vec![0xA7; size]),
        created_txid: 17,
        modified_txid: 1 << 24,
        version: 3,
        children: Arc::new((0..8).map(|i| format!("child-{i}")).collect()),
        children_txid: 1 << 24,
        ephemeral_owner: Some("bench".into()),
        epoch_marks: Arc::new(vec![]),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_codec");
    for size in [64usize, 1024, 65536] {
        let record = sample_record(size);
        let bin = codec::encode_node(&record);
        let json = codec::encode_node_json(&record);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode_binary", size), &size, |b, _| {
            b.iter(|| codec::encode_node(black_box(&record)));
        });
        group.bench_with_input(BenchmarkId::new("encode_json", size), &size, |b, _| {
            b.iter(|| codec::encode_node_json(black_box(&record)));
        });
        group.bench_with_input(BenchmarkId::new("decode_binary", size), &size, |b, _| {
            b.iter(|| codec::decode_node(black_box(&bin)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("decode_json", size), &size, |b, _| {
            b.iter(|| codec::decode_node(black_box(&json)).unwrap());
        });
    }
    group.finish();

    let cmp = compare_encoded_sizes(0x512E, 256);
    println!(
        "node_codec: zipf mix of {} records — json {} B, binary {} B ({:.2}x smaller)",
        cmp.records,
        cmp.json_bytes,
        cmp.binary_bytes,
        cmp.ratio()
    );
}

fn bench_session_marks(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_marks");
    group.sample_size(10);
    let config = WriteAmpConfig {
        sessions: 16,
        writes: 32,
        ..WriteAmpConfig::standard()
    };
    for (label, batched) in [("per_session", false), ("batched", true)] {
        group.bench_function(label, |b| {
            b.iter(|| run_write_amp(black_box(&config), batched, true));
        });
    }
    group.finish();

    let full = WriteAmpConfig::standard();
    let baseline = run_write_amp(&full, false, true);
    let batched = run_write_amp(&full, true, true);
    println!(
        "session_marks: {} sessions / {} writes — {:.1} vs {:.1} system-store write req/epoch \
         ({:.0}% fewer)",
        full.sessions,
        full.writes,
        baseline.requests_per_epoch,
        batched.requests_per_epoch,
        (1.0 - batched.requests_per_epoch / baseline.requests_per_epoch) * 100.0,
    );
}

criterion_group!(benches, bench_codec, bench_session_marks);
criterion_main!(benches);
