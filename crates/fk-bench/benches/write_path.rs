//! Criterion benchmark of the full write pipeline (client → follower →
//! leader → user store) with latency simulation disabled — measures the
//! real implementation overhead of Algorithms 1 and 2 per node size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fk_bench::pipeline::WritePipeline;
use fk_core::deploy::DeploymentConfig;
use fk_core::UserStoreKind;

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_path");
    for (label, store) in [
        ("object", UserStoreKind::Object),
        ("hybrid", UserStoreKind::hybrid_default()),
    ] {
        for size in [4usize, 1024, 65536] {
            let config = DeploymentConfig::aws().with_user_store(store);
            let mut pipe = WritePipeline::new(config);
            let path = format!("/bench-{label}-{size}");
            pipe.seed_node(&path, size);
            let data = vec![0xCD; size];
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("set_data_{label}"), size),
                &size,
                |b, _| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        pipe.run_write(seed, &path, &data)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_zk_write(c: &mut Criterion) {
    let ensemble = fk_zk::ZkEnsemble::start(3);
    let client = ensemble
        .connect(0, fk_cloud::trace::Ctx::disabled())
        .expect("connect");
    client
        .create("/bench", b"seed", fk_zk::CreateMode::Persistent)
        .expect("create");
    let mut group = c.benchmark_group("zk_write_path");
    for size in [4usize, 1024, 65536] {
        let data = vec![0xEF; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("set_data", size), &size, |b, _| {
            b.iter(|| client.set_data("/bench", &data, -1).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_write_path, bench_zk_write
}
criterion_main!(benches);
