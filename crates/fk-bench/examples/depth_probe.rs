fn main() {
    for provider in [
        fk_core::deploy::Provider::Aws,
        fk_core::deploy::Provider::Gcp,
    ] {
        let base = fk_bench::pipelined_bench::PipelinedRunConfig {
            provider,
            ..fk_bench::pipelined_bench::PipelinedRunConfig::standard(16)
        };
        for depth in [1usize, 2, 4, 8, 16, 32] {
            let r = fk_bench::pipelined_bench::run_pipelined(
                &fk_bench::pipelined_bench::PipelinedRunConfig {
                    depth,
                    ..base.clone()
                },
            );
            println!(
                "{provider:?} depth {depth:2}: {:8.1} writes/s  ({:?})",
                r.throughput_per_s, r.virtual_time
            );
        }
    }
}
