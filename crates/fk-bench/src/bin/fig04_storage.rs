//! Figure 4: cost and performance of storage in the AWS cloud.
//!
//! (a) Cost of storage services for varying data size and 1 kB
//!     operations, and for varying operation counts on 1 GB of data.
//! (b) Latency of read and write operations against S3-like and
//!     DynamoDB-like stores, intra- and cross-region.

use fk_bench::stats::{ms, print_table, summarize, usd};
use fk_cloud::latency::{ExecEnv, LatencyModel};
use fk_cloud::ops::Op;
use fk_cost::{AwsPricing, CostModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let model = CostModel::paper_default();
    let pricing = AwsPricing::default();

    // ---- Fig 4a left: 1M operations of 1 kB + monthly storage.
    let mut rows = Vec::new();
    for gb in [0.01, 0.03, 0.12, 0.40, 1.0, 4.0, 10.0] {
        let ops = 1_000_000.0;
        let bytes = 1024;
        let s3_storage = gb * pricing.s3_gb_month;
        let ddb_storage = gb * pricing.ddb_gb_month;
        rows.push(vec![
            format!("{gb:.2}"),
            usd(ops * model.r_s3(bytes) + s3_storage),
            usd(ops * model.w_s3(bytes) + s3_storage),
            usd(ops * model.r_dd(bytes) + ddb_storage),
            usd(ops * model.w_dd(bytes) + ddb_storage),
        ]);
    }
    print_table(
        "Fig 4a (left): monthly cost, 1M x 1 kB ops + storage",
        &["GB stored", "S3 read", "S3 write", "DDB read", "DDB write"],
        &rows,
    );
    println!(
        "-> object storage writes are {:.1}x more expensive than reads \
         (paper: 12.5x)",
        model.w_s3(1024) / model.r_s3(1024)
    );

    // ---- Fig 4a right: cost vs number of operations on 1 GB of data.
    let mut rows = Vec::new();
    for exp in [1u32, 3, 5, 7] {
        let ops = 10f64.powi(exp as i32);
        rows.push(vec![
            format!("1e{exp}"),
            usd(ops * model.r_s3(1024)),
            usd(ops * model.w_s3(1024)),
            usd(ops * model.r_dd(1024)),
            usd(ops * model.w_dd(1024)),
        ]);
    }
    print_table(
        "Fig 4a (right): cost vs operation count (1 kB ops, 1 GB stored)",
        &["ops", "S3 read", "S3 write", "DDB read", "DDB write"],
        &rows,
    );
    println!(
        "-> object storage too expensive for frequent small writes: at 1e7 \
         writes S3 costs {} vs DynamoDB {}",
        usd(1e7 * model.w_s3(1024)),
        usd(1e7 * model.w_dd(1024))
    );

    // ---- Fig 4b: latency vs payload size, intra vs cross region.
    let latency = LatencyModel::aws();
    let env = ExecEnv::client();
    let mut rng = SmallRng::seed_from_u64(4242);
    let sizes = [1usize, 50 * 1024, 100 * 1024, 250 * 1024, 500 * 1024];
    let mut rows = Vec::new();
    for &size in &sizes {
        let mut sample = |op: Op, cross: bool| -> f64 {
            let samples: Vec<f64> = (0..300)
                .map(|_| {
                    latency
                        .sample(op, size, cross, &env, &mut rng)
                        .as_secs_f64()
                        * 1e3
                })
                .collect();
            summarize(&samples).p50
        };
        rows.push(vec![
            fk_bench::stats::size_label(size),
            ms(sample(Op::ObjGet, false)),
            ms(sample(Op::ObjPut, false)),
            ms(sample(Op::ObjGet, true)),
            ms(sample(Op::ObjPut, true)),
            ms(sample(Op::KvGet { consistent: true }, false)),
            ms(sample(Op::KvPut, false)),
            ms(sample(Op::KvGet { consistent: true }, true)),
            ms(sample(Op::KvPut, true)),
        ]);
    }
    print_table(
        "Fig 4b: p50 latency [ms] by payload size (S3-like | DynamoDB-like)",
        &[
            "size",
            "S3 rd",
            "S3 wr",
            "S3 rd x-reg",
            "S3 wr x-reg",
            "DDB rd",
            "DDB wr",
            "DDB rd x-reg",
            "DDB wr x-reg",
        ],
        &rows,
    );
    println!(
        "-> S3: efficient read/write on large data; DynamoDB: slow writes on \
         large user data; both pay a cross-region penalty"
    );
}
