//! Figure 5: ZooKeeper utilization in HBase running YCSB.
//!
//! An HBase-like cluster (3 region servers + master) serves the six
//! standard YCSB workloads, five simulated minutes each, while its
//! coordination traffic against a 3-server ZooKeeper ensemble is counted.
//! The paper observes: thousands of application requests per second,
//! "less than a thousand coordination requests in over half an hour",
//! 12 writes, and 0.5–1 % VM utilization.

use fk_bench::stats::print_table;
use fk_cloud::trace::Ctx;
use fk_workloads::hbase_sim::{HBaseCluster, HBaseConfig};
use fk_workloads::ycsb::YcsbWorkload;
use fk_zk::ZkEnsemble;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ensemble = ZkEnsemble::start(3);
    let sessions: Vec<_> = (0..4)
        .map(|i| ensemble.connect(i % 3, Ctx::disabled()).expect("connect"))
        .collect();
    let refs: Vec<&fk_zk::ZkClient> = sessions.iter().collect();

    let config = HBaseConfig {
        region_servers: 3,
        regions: 12,
        records: 100_000,
        liveness_interval_s: 10.0,
        inserts_per_split: 1_500,
    };
    let mut cluster = HBaseCluster::bootstrap(config, refs).expect("bootstrap");
    println!(
        "bootstrap: {} coordination writes, {} reads (master election, \
         region-server registration, meta publication)",
        cluster.bootstrap_writes, cluster.bootstrap_reads
    );

    let mut rng = SmallRng::seed_from_u64(55);
    let mut rows = Vec::new();
    let mut total_reads = cluster.bootstrap_reads;
    let mut total_writes = cluster.bootstrap_writes;
    let mut total_app = 0u64;
    let mut total_secs = 0.0;
    // Five minutes per phase at the paper's HBase throughput scale.
    for workload in YcsbWorkload::all() {
        let rate = 600.0; // app requests per second
        let ops = (rate * 300.0) as u64;
        let stats = cluster
            .run_phase(workload, ops, rate, &mut rng)
            .expect("phase");
        total_reads += stats.coord_reads;
        total_writes += stats.coord_writes;
        total_app += stats.app_ops;
        total_secs += stats.duration_s;
        rows.push(vec![
            format!("workload-{}", stats.workload),
            format!("{:.0}", stats.app_rate()),
            stats.coord_reads.to_string(),
            stats.coord_writes.to_string(),
            format!("{:.2}%", stats.coord_utilization(0.005) * 100.0),
        ]);
    }
    print_table(
        "Fig 5: HBase/YCSB phases vs ZooKeeper traffic",
        &["phase", "app req/s", "ZK reads", "ZK writes", "ZK VM util"],
        &rows,
    );
    println!(
        "\ntotals over {:.0} min: {} application ops, {} coordination \
         requests ({} writes)",
        total_secs / 60.0,
        total_app,
        total_reads + total_writes,
        total_writes
    );
    println!(
        "-> paper: <1000 coordination requests in >30 min, 12 writes, \
         utilization 0.5-1%"
    );
    drop(sessions);
}
