//! Figure 6 / Table 6a: synchronization primitives on the KV store.
//!
//! (a) Latency of the primitives (regular write, timed-lock acquire and
//!     release at 1 kB / 64 kB item sizes, atomic counter, atomic list
//!     appends of 1 and 1024 entries), 1000 warm repetitions.
//! (b) Throughput of standard vs locked updates under open-loop load — a
//!     discrete-event simulation of the bounded-parallelism table,
//!     showing linear scaling and the locked path's ~84 % efficiency.

use fk_bench::stats::{ms, print_table, summarize};
use fk_cloud::des::{self, Station};
use fk_cloud::latency::{ExecEnv, LatencyModel};
use fk_cloud::metering::Meter;
use fk_cloud::ops::Op;
use fk_cloud::trace::{Ctx, LatencyMode};
use fk_cloud::value::{Item, Value};
use fk_cloud::{Condition, KvStore, Region};
use fk_sync::{AtomicCounter, AtomicList, TimedLockManager};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

const REPS: usize = 1000;

fn measure(mut op: impl FnMut(&Ctx, usize)) -> Vec<f64> {
    let model = Arc::new(LatencyModel::aws());
    (0..REPS)
        .map(|i| {
            let ctx = Ctx::new(Arc::clone(&model), LatencyMode::Virtual, 9000 + i as u64);
            op(&ctx, i);
            ctx.now().as_secs_f64() * 1e3
        })
        .collect()
}

fn latency_table() {
    let kv = KvStore::new("bench", Region::US_EAST_1, Meter::new());
    let setup = Ctx::disabled();
    // Warmed-up items of both sizes (as the paper does).
    for (key, size) in [("item-1k", 1024), ("item-64k", 64 * 1024)] {
        kv.put(
            &setup,
            key,
            Item::new().with("data", vec![0u8; size]),
            Condition::Always,
        )
        .expect("seed item");
    }
    let locks = TimedLockManager::new(kv.clone(), 3_600_000);
    let counter = AtomicCounter::new(kv.clone(), "counter");
    let list = AtomicList::new(kv.clone(), "list");

    let mut rows = Vec::new();
    let mut push = |name: &str, size: &str, samples: Vec<f64>| {
        let s = summarize(&samples);
        rows.push(vec![
            name.to_owned(),
            size.to_owned(),
            ms(s.min),
            ms(s.p50),
            ms(s.p95),
            ms(s.p99),
            ms(s.max),
        ]);
    };

    for (key, label, size) in [
        ("item-1k", "1 kB", 1024usize),
        ("item-64k", "64 kB", 64 * 1024),
    ] {
        // Regular write: unconditional full-item update.
        let kv2 = kv.clone();
        push(
            "Regular KV write",
            label,
            measure(|ctx, _| {
                kv2.put(
                    ctx,
                    key,
                    Item::new().with("data", vec![0u8; size]),
                    Condition::Always,
                )
                .expect("write");
            }),
        );
        // Timed lock acquire + release (each one conditional update).
        let locks2 = locks.clone();
        push(
            "Timed lock acquire",
            label,
            measure(|ctx, i| {
                let acq = locks2.acquire(ctx, key, i as i64 * 10).expect("acquire");
                let release = Ctx::disabled();
                locks2.release(&release, &acq.token).expect("release");
            }),
        );
        let locks3 = locks.clone();
        push(
            "Timed lock release",
            label,
            measure(|ctx, i| {
                let setup = Ctx::disabled();
                let acq = locks3.acquire(&setup, key, i as i64 * 10).expect("acquire");
                locks3.release(ctx, &acq.token).expect("release");
            }),
        );
    }

    push(
        "Atomic counter",
        "8 B",
        measure(|ctx, _| {
            counter.increment(ctx).expect("increment");
        }),
    );
    // Atomic list appends: 1 and 1024 entries. Entries model watch ids +
    // bookkeeping (~64 B effective each, cf. EXPERIMENTS.md).
    push(
        "Atomic list append",
        "1",
        measure(|ctx, i| {
            // Keep the list short: remove what we append.
            list.append(ctx, vec![Value::Num(i as i64)])
                .expect("append");
            let cleanup = Ctx::disabled();
            list.remove(&cleanup, vec![Value::Num(i as i64)])
                .expect("remove");
        }),
    );
    push(
        "Atomic list append",
        "1024",
        measure(|ctx, _| {
            let entries: Vec<Value> = (0..1024)
                .map(|j| Value::Str(format!("watch-instance-{j:050}")))
                .collect();
            list.append(ctx, entries).expect("append");
            let cleanup = Ctx::disabled();
            list.pop_front(&cleanup, 1024).expect("cleanup");
        }),
    );

    print_table(
        "Table 6a: latency of synchronization primitives [ms]",
        &["primitive", "size", "min", "p50", "p95", "p99", "max"],
        &rows,
    );
    println!(
        "-> paper anchors: regular write 4.35/66.31 ms (1 kB/64 kB), lock \
         acquire 6.8/67.16 ms, counter 5.59 ms, list append 5.89/76.01 ms"
    );
}

/// Fig 6b: open-loop throughput against a bounded-parallelism store.
struct ThroughputState {
    station: Station<ThroughputState>,
    completed_in_window: u64,
}

fn station_of(s: &mut ThroughputState) -> &mut Station<ThroughputState> {
    &mut s.station
}

fn throughput_sim(offered: f64, locked: bool, seed: u64) -> f64 {
    // The test table's partition parallelism: calibrated so the locked
    // path (3 sequential conditional updates) saturates just below the
    // paper's 1200 op/s ceiling while the standard path stays linear.
    const PARTITIONS: usize = 20;
    let warmup_ns: u64 = 2_000_000_000;
    let window_ns: u64 = 5_000_000_000;
    let model = Arc::new(LatencyModel::aws());

    let state = ThroughputState {
        station: Station::new(PARTITIONS),
        completed_in_window: 0,
    };
    let gap_ns = (1e9 / offered) as u64;
    let final_state = des::run(state, seed, warmup_ns + window_ns, move |state, sched| {
        schedule_arrival(state, sched, gap_ns, locked, Arc::clone(&model), warmup_ns);
    });
    final_state.completed_in_window as f64 / (window_ns as f64 / 1e9)
}

fn schedule_arrival(
    _state: &mut ThroughputState,
    sched: &mut des::Scheduler<ThroughputState>,
    gap_ns: u64,
    locked: bool,
    model: Arc<LatencyModel>,
    warmup_ns: u64,
) {
    // Uniform jitter with mean = gap keeps the offered rate exact.
    let jitter = sched.rng.gen_range(0..gap_ns.max(2));
    let m = Arc::clone(&model);
    sched.schedule(gap_ns / 2 + jitter, move |state, sched| {
        submit_update(state, sched, locked, Arc::clone(&m), warmup_ns, 0);
        schedule_arrival(state, sched, gap_ns, locked, m, warmup_ns);
    });
}

/// One update: standard = read + write; locked = acquire + write + release
/// (each stage one station visit with model-sampled service time).
fn submit_update(
    state: &mut ThroughputState,
    sched: &mut des::Scheduler<ThroughputState>,
    locked: bool,
    model: Arc<LatencyModel>,
    warmup_ns: u64,
    stage: usize,
) {
    let stages = if locked { 3 } else { 2 };
    let op = match (locked, stage) {
        (false, 0) => Op::KvGet { consistent: true },
        (false, _) => Op::KvUpdate { conditional: false },
        (true, 0) | (true, 2) => Op::KvUpdate { conditional: true },
        (true, _) => Op::KvUpdate { conditional: false },
    };
    let m = Arc::clone(&model);
    let service = move |rng: &mut SmallRng| {
        m.sample(op, 1024, false, &ExecEnv::client(), rng)
            .as_nanos() as u64
    };
    let m2 = model;
    des::submit(state, sched, station_of, service, move |state, sched| {
        if stage + 1 < stages {
            submit_update(state, sched, locked, m2, warmup_ns, stage + 1);
        } else if sched.now() >= warmup_ns {
            state.completed_in_window += 1;
        }
    });
}

fn throughput_table() {
    let mut rows = Vec::new();
    for offered in [100.0, 200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0] {
        let std = throughput_sim(offered, false, 11);
        let locked = throughput_sim(offered, true, 13);
        rows.push(vec![
            format!("{offered:.0}"),
            format!("{std:.0}"),
            format!("{locked:.0}"),
            format!("{:.0}%", locked / std * 100.0),
        ]);
    }
    print_table(
        "Fig 6b: throughput of standard vs locked updates [op/s]",
        &["offered", "standard", "locked", "efficiency"],
        &rows,
    );
    println!(
        "-> paper: linear scaling; locking with ~84% efficiency; parallel \
         writes up to 1200 req/s"
    );
}

fn main() {
    latency_table();
    throughput_table();
}
