//! Figure 7 / Tables 7a & 7c: function invocation through serverless
//! queues.
//!
//! End-to-end latency (send → trigger dispatch → warm function → TCP
//! reply) for: direct invocation, SQS standard, SQS FIFO and
//! DynamoDB-Streams-like queues on AWS; direct, Pub/Sub and ordered
//! Pub/Sub on GCP. Plus the throughput study (Fig 7b): FIFO saturates
//! around one hundred requests per second, while unordered queues batch
//! aggressively with huge variance.

use fk_bench::stats::{ms, print_table, summarize};
use fk_cloud::des::{self, Station};
use fk_cloud::latency::LatencyModel;
use fk_cloud::ops::{Op, QueueKind};
use fk_cloud::trace::{Ctx, LatencyMode};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

const REPS: usize = 1000;

/// Samples the end-to-end invocation path for one queue kind.
fn e2e(model: &Arc<LatencyModel>, kind: Option<QueueKind>, size: usize, seed: u64) -> Vec<f64> {
    (0..REPS)
        .map(|i| {
            let ctx = Ctx::new(Arc::clone(model), LatencyMode::Virtual, seed + i as u64);
            match kind {
                None => {
                    ctx.charge(Op::FnInvokeDirect, size);
                }
                Some(kind) => {
                    ctx.charge(Op::QueueSend(kind), size);
                    ctx.charge(Op::QueueDispatch(kind), size);
                }
            }
            ctx.charge(Op::FnWarmOverhead, 0);
            ctx.charge(Op::TcpReply, 64);
            ctx.now().as_secs_f64() * 1e3
        })
        .collect()
}

fn latency_tables() {
    for (provider, model, kinds) in [
        (
            "AWS (Table 7a)",
            Arc::new(LatencyModel::aws()),
            vec![
                ("Direct", None),
                ("SQS", Some(QueueKind::Standard)),
                ("SQS FIFO", Some(QueueKind::Fifo)),
                ("DynamoDB Stream", Some(QueueKind::Stream)),
            ],
        ),
        (
            "GCP (Table 7c)",
            Arc::new(LatencyModel::gcp()),
            vec![
                ("Direct", None),
                ("PubSub", Some(QueueKind::PubSub)),
                ("PubSub FIFO", Some(QueueKind::PubSubOrdered)),
            ],
        ),
    ] {
        let mut rows = Vec::new();
        for (name, kind) in kinds {
            for (label, size) in [("64 B", 64usize), ("64 kB", 64 * 1024)] {
                let s = summarize(&e2e(&model, kind, size, 0xF16));
                rows.push(vec![
                    name.to_owned(),
                    label.to_owned(),
                    ms(s.p50),
                    ms(s.p95),
                    ms(s.p99),
                    ms(s.max),
                ]);
            }
        }
        print_table(
            &format!("{provider}: end-to-end invocation latency [ms]"),
            &["trigger", "payload", "p50", "p95", "p99", "max"],
            &rows,
        );
    }
    println!(
        "-> paper anchors: AWS direct 39.0, SQS 39.83, SQS FIFO 24.22 (beats \
         direct), Streams 242.65; GCP direct 83.29, PubSub 38.04, ordered \
         PubSub 201.22 (p50, 64 B)"
    );
}

/// Fig 7b: queue-triggered invocation throughput.
struct QState {
    station: Station<QState>,
    completed: u64,
    queued: u64,
    /// FIFO/stream: one batch in flight at a time (single ordering group).
    dispatching: bool,
}

fn station_of(s: &mut QState) -> &mut Station<QState> {
    &mut s.station
}

/// FIFO: a single consumer (one ordering group) pulls batches of ≤10; the
/// batch service time is dispatch + per-message handling. Standard: many
/// concurrent consumers.
fn queue_throughput(offered: f64, kind: QueueKind, seed: u64) -> f64 {
    let window_ns: u64 = 10_000_000_000;
    let consumers = match kind {
        QueueKind::Fifo => 1,
        QueueKind::Stream => 1,
        _ => 64,
    };
    let state = QState {
        station: Station::new(consumers),
        completed: 0,
        queued: 0,
        dispatching: false,
    };
    let gap_ns = (1e9 / offered) as u64;
    let final_state = des::run(state, seed, window_ns, move |state, sched| {
        arrival(state, sched, gap_ns, kind);
    });
    final_state.completed as f64 / (window_ns as f64 / 1e9)
}

fn arrival(state: &mut QState, sched: &mut des::Scheduler<QState>, gap_ns: u64, kind: QueueKind) {
    state.queued += 1;
    dispatch_batch(state, sched, kind);
    // Uniform jitter with mean = gap keeps the offered rate exact.
    let jitter = sched.rng.gen_range(0..gap_ns.max(2));
    sched.schedule(gap_ns / 2 + jitter, move |state, sched| {
        arrival(state, sched, gap_ns, kind);
    });
}

fn dispatch_batch(state: &mut QState, sched: &mut des::Scheduler<QState>, kind: QueueKind) {
    if state.queued == 0 {
        return;
    }
    // Ordered queues keep one batch in flight per ordering group, so the
    // next batch only forms after the previous completes — this is what
    // lets backlogs accumulate into full batches.
    let serialized = matches!(
        kind,
        QueueKind::Fifo | QueueKind::Stream | QueueKind::PubSubOrdered
    );
    if serialized && state.dispatching {
        return;
    }
    let max_batch = match kind {
        QueueKind::Fifo => 10u64,
        _ => 1000,
    };
    let batch = state.queued.min(max_batch);
    state.queued -= batch;
    if serialized {
        state.dispatching = true;
    }
    // Batch service time: trigger dispatch + per-message function work.
    let (base_ms, per_msg_ms, sigma) = match kind {
        QueueKind::Fifo => (24.0, 7.5, 0.20),
        QueueKind::Standard => (30.0, 0.8, 0.60),
        QueueKind::Stream => (240.0, 0.8, 0.25),
        _ => (30.0, 0.8, 0.40),
    };
    let service = move |rng: &mut SmallRng| {
        let noise: f64 = (rng.gen::<f64>() - 0.5) * 2.0 * sigma + 1.0;
        ((base_ms + per_msg_ms * batch as f64) * noise.max(0.2) * 1e6) as u64
    };
    des::submit(state, sched, station_of, service, move |state, sched| {
        state.completed += batch;
        if serialized {
            state.dispatching = false;
        }
        dispatch_batch(state, sched, kind);
    });
}

fn throughput_table() {
    let mut rows = Vec::new();
    for offered in [25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0] {
        let fifo = queue_throughput(offered, QueueKind::Fifo, 21);
        let std = queue_throughput(offered, QueueKind::Standard, 22);
        let stream = queue_throughput(offered, QueueKind::Stream, 23);
        rows.push(vec![
            format!("{offered:.0}"),
            format!("{fifo:.0}"),
            format!("{std:.0}"),
            format!("{stream:.0}"),
        ]);
    }
    print_table(
        "Fig 7b: queue-triggered invocation throughput [results/s, 64 B]",
        &["offered", "SQS FIFO", "SQS std", "DDB Stream"],
        &rows,
    );
    println!("-> paper: the FIFO queue saturates at ~100 req/s; unordered queues keep up via large batches");
}

fn main() {
    latency_tables();
    throughput_table();
}
