//! Figure 8: read operations in FaaSKeeper and ZooKeeper.
//!
//! `get_data` latency measured client-side across node sizes for every
//! user-store backend (DynamoDB-like, S3-like, hybrid, Redis-like cache)
//! on the AWS profile, the GCP profile (Datastore / Cloud Storage), and
//! the ZooKeeper baseline serving from a local replica.

use fk_bench::stats::{ms, print_table, size_label, summarize};
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::CreateMode;
use fk_core::UserStoreKind;
use fk_zk::ZkEnsemble;

const REPS: usize = 100;
const SIZES_AWS: [usize; 6] = [64, 1024, 16 * 1024, 64 * 1024, 128 * 1024, 250 * 1024];
const SIZES_GCP: [usize; 6] = [64, 1024, 64 * 1024, 128 * 1024, 250 * 1024, 400 * 1024];

/// Measures FaaSKeeper read latency for one deployment configuration.
fn fk_reads(config: DeploymentConfig, sizes: &[usize]) -> Vec<f64> {
    let deployment = Deployment::start(config);
    let writer = deployment.connect("writer").expect("connect writer");
    let mut medians = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let path = format!("/node-{i}");
        writer
            .create(&path, &vec![0x7F; size], CreateMode::Persistent)
            .expect("create node");
        let reader = deployment
            .connect(format!("reader-{i}"))
            .expect("connect reader");
        let mut samples = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let before = reader.ctx().now();
            reader.get_data(&path, false).expect("read");
            samples.push((reader.ctx().now() - before).as_secs_f64() * 1e3);
        }
        medians.push(summarize(&samples).p50);
        drop(reader);
    }
    deployment.shutdown();
    medians
}

/// Measures ZooKeeper read latency from a local replica.
fn zk_reads(sizes: &[usize]) -> Vec<f64> {
    let ensemble = ZkEnsemble::start(3);
    let model = std::sync::Arc::new(fk_cloud::latency::LatencyModel::aws());
    let writer = ensemble
        .connect(
            0,
            fk_cloud::trace::Ctx::new(std::sync::Arc::clone(&model), LatencyMode::Virtual, 1),
        )
        .expect("connect");
    let mut medians = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let path = format!("/node-{i}");
        writer
            .create(&path, &vec![0u8; size], fk_zk::CreateMode::Persistent)
            .expect("create");
        let reader = ensemble
            .connect(
                0,
                fk_cloud::trace::Ctx::new(
                    std::sync::Arc::clone(&model),
                    LatencyMode::Virtual,
                    50 + i as u64,
                ),
            )
            .expect("connect reader");
        let mut samples = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let before = reader.ctx().now();
            reader.get_data(&path, false).expect("read");
            samples.push((reader.ctx().now() - before).as_secs_f64() * 1e3);
        }
        medians.push(summarize(&samples).p50);
    }
    medians
}

fn main() {
    // ---- AWS panel.
    let aws = |store: UserStoreKind, seed: u64| {
        fk_reads(
            DeploymentConfig::aws()
                .with_mode(LatencyMode::Virtual, seed)
                .with_user_store(store),
            &SIZES_AWS,
        )
    };
    let ddb = aws(UserStoreKind::KeyValue, 81);
    let s3 = aws(UserStoreKind::Object, 82);
    let hybrid = aws(UserStoreKind::hybrid_default(), 83);
    let redis = aws(UserStoreKind::Cached, 84);
    let zk = zk_reads(&SIZES_AWS);

    let rows: Vec<Vec<String>> = SIZES_AWS
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            vec![
                size_label(size),
                ms(ddb[i]),
                ms(s3[i]),
                ms(hybrid[i]),
                ms(redis[i]),
                ms(zk[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 8 (AWS): get_data p50 latency [ms]",
        &[
            "size",
            "FK DynamoDB",
            "FK S3",
            "FK hybrid",
            "FK Redis",
            "ZooKeeper",
        ],
        &rows,
    );
    println!(
        "-> cloud-native storage dominates read time; the in-memory cache is \
         on par with self-hosted ZooKeeper; hybrid follows DynamoDB below \
         4 kB and pays one extra object fetch above"
    );

    // ---- GCP panel.
    let gcp = |store: UserStoreKind, seed: u64| {
        fk_reads(
            DeploymentConfig::gcp()
                .with_mode(LatencyMode::Virtual, seed)
                .with_user_store(store),
            &SIZES_GCP,
        )
    };
    let datastore = gcp(UserStoreKind::KeyValue, 91);
    let gcs = gcp(UserStoreKind::Object, 92);
    let rows: Vec<Vec<String>> = SIZES_GCP
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            vec![
                size_label(size),
                ms(datastore[i]),
                ms(gcs[i]),
                ms(zk.get(i).copied().unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    print_table(
        "Fig 8 (GCP): get_data p50 latency [ms]",
        &["size", "FK Datastore", "FK Cloud Storage", "ZooKeeper"],
        &rows,
    );
    println!(
        "-> paper: Datastore 2.3x slower than DynamoDB on small nodes, ~30% \
         faster on large nodes; GCP object storage slower than AWS S3"
    );
}
