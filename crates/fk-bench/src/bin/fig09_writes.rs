//! Figure 9: write operations in FaaSKeeper and ZooKeeper.
//!
//! `set_data` with base64-encoded payloads of 4 B – 250 kB: end-to-end
//! write time for FaaSKeeper at 512/1024/2048 MB function memory vs the
//! ZooKeeper baseline; follower and leader function times; and the cost
//! distribution of 100 000 requests across queue / DynamoDB / S3 /
//! follower / leader. Run with `--arch` for the x86-vs-ARM comparison of
//! §5.3.2 (Resource Configuration).

use fk_bench::pipeline::WritePipeline;
use fk_bench::stats::{ms, print_table, size_label, summarize, usd};
use fk_cloud::latency::Arch;
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::DeploymentConfig;
use fk_cost::{price_usage, AwsPricing};

const REPS: usize = 120;
const SIZES: [usize; 5] = [4, 1024, 64 * 1024, 128 * 1024, 250 * 1024];
const MEMORIES: [u32; 3] = [512, 1024, 2048];

struct MeasuredConfig {
    memory: u32,
    arch: Arch,
    /// p50 per size: (e2e, follower, leader).
    rows: Vec<(f64, f64, f64)>,
    /// Cost of 100 k requests per size: (queue, kv, obj, follower+leader).
    costs: Vec<(f64, f64, f64, f64)>,
}

fn measure(memory: u32, arch: Arch, seed: u64) -> MeasuredConfig {
    let mut config = DeploymentConfig::aws()
        .with_mode(LatencyMode::Virtual, seed)
        .with_function_memory(memory);
    config.follower_fn = config.follower_fn.with_arch(arch);
    config.leader_fn = config.leader_fn.with_arch(arch);
    let mut pipe = WritePipeline::new(config);
    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let path = format!("/node-{i}");
        pipe.seed_node(&path, size);
        let data = vec![0xAB; size];
        let before = pipe.deployment().meter().snapshot();
        let mut e2e = Vec::with_capacity(REPS);
        let mut follower = Vec::with_capacity(REPS);
        let mut leader = Vec::with_capacity(REPS);
        for rep in 0..REPS {
            let sample = pipe.run_write(seed * 1000 + rep as u64, &path, &data);
            e2e.push(sample.e2e_ms);
            follower.push(sample.follower_ms);
            leader.push(sample.leader_ms);
        }
        rows.push((
            summarize(&e2e).p50,
            summarize(&follower).p50,
            summarize(&leader).p50,
        ));
        // Scale measured usage to 100 000 requests.
        let usage = pipe.deployment().meter().snapshot().since(&before);
        let cost = price_usage(&usage, &AwsPricing::default());
        let scale = 100_000.0 / REPS as f64;
        costs.push((
            cost.queue * scale,
            cost.kv * scale,
            cost.object * scale,
            cost.functions * scale,
        ));
    }
    MeasuredConfig {
        memory,
        arch,
        rows,
        costs,
    }
}

fn zk_writes() -> Vec<f64> {
    let ensemble = fk_zk::ZkEnsemble::start(3);
    let model = std::sync::Arc::new(fk_cloud::latency::LatencyModel::aws());
    let mut medians = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let client = ensemble
            .connect(
                0,
                fk_cloud::trace::Ctx::new(
                    std::sync::Arc::clone(&model),
                    LatencyMode::Virtual,
                    i as u64,
                ),
            )
            .expect("connect");
        let path = format!("/node-{i}");
        client
            .create(&path, &vec![0u8; size], fk_zk::CreateMode::Persistent)
            .expect("create");
        let data = vec![1u8; size];
        let mut samples = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let before = client.ctx().now();
            client.set_data(&path, &data, -1).expect("set_data");
            samples.push((client.ctx().now() - before).as_secs_f64() * 1e3);
        }
        medians.push(summarize(&samples).p50);
    }
    medians
}

fn main() {
    let compare_arch = std::env::args().any(|a| a == "--arch");

    let configs: Vec<MeasuredConfig> = if compare_arch {
        vec![measure(2048, Arch::X86, 900), measure(2048, Arch::Arm, 901)]
    } else {
        MEMORIES
            .iter()
            .enumerate()
            .map(|(i, &m)| measure(m, Arch::X86, 900 + i as u64))
            .collect()
    };
    let zk = zk_writes();

    // ---- total write time.
    let mut rows = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let mut row = vec![size_label(size)];
        for c in &configs {
            row.push(ms(c.rows[i].0));
        }
        row.push(ms(zk[i]));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["size".into()];
    for c in &configs {
        headers.push(format!(
            "FK {} MB{}",
            c.memory,
            if c.arch == Arch::Arm { " ARM" } else { "" }
        ));
    }
    headers.push("ZooKeeper".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Fig 9: set_data end-to-end p50 [ms]", &header_refs, &rows);
    println!("-> ZooKeeper achieves lower write latency (direct connection, in-memory state); FaaSKeeper is bounded by queues and storage");

    // ---- follower / leader function time.
    for (label, pick) in [("follower", 1usize), ("leader", 2usize)] {
        let mut rows = Vec::new();
        for (i, &size) in SIZES.iter().enumerate() {
            let mut row = vec![size_label(size)];
            for c in &configs {
                let v = match pick {
                    1 => c.rows[i].1,
                    _ => c.rows[i].2,
                };
                row.push(ms(v));
            }
            rows.push(row);
        }
        let header_refs: Vec<&str> = headers[..headers.len() - 1]
            .iter()
            .map(String::as_str)
            .collect();
        print_table(
            &format!("Fig 9: {label} function p50 [ms]"),
            &header_refs,
            &rows,
        );
    }
    println!("-> the leader function contributes more to total write latency, especially on small inputs");

    // ---- cost distribution of 100 000 requests.
    let mut rows = Vec::new();
    for c in &configs {
        for (i, &size) in SIZES.iter().enumerate() {
            if size != 4 && size != 64 * 1024 && size != 250 * 1024 {
                continue;
            }
            let (q, kv, obj, fns) = c.costs[i];
            let total = q + kv + obj + fns;
            rows.push(vec![
                format!("{} / {} MB", size_label(size), c.memory),
                usd(total),
                format!("{:.0}%", q / total * 100.0),
                format!("{:.0}%", kv / total * 100.0),
                format!("{:.0}%", obj / total * 100.0),
                format!("{:.0}%", fns / total * 100.0),
            ]);
        }
    }
    print_table(
        "Fig 9: cost distribution of 100,000 write requests",
        &["config", "total", "queue", "DynamoDB", "S3", "functions"],
        &rows,
    );
    println!(
        "-> storage operations are responsible for 40-80% of the cost; \
         paper totals range $1.1-$2.5 per 100k"
    );
}
