//! Figure 10: time distribution of the FaaSKeeper functions.
//!
//! Where do follower and leader invocations spend their time? The spans
//! recorded along the real code path are aggregated per phase: lock /
//! validate / push-to-leader / commit for the follower; get-node /
//! update-user-storage / query-watches / notify-client / pop-updates for
//! the leader. The paper's finding: synchronization is cheap — runtimes
//! are dominated by moving data to queues and storage.

use fk_bench::pipeline::WritePipeline;
use fk_bench::stats::{ms, print_table, size_label, summarize};
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::DeploymentConfig;
use std::collections::BTreeMap;

const REPS: usize = 120;
const SIZES: [usize; 3] = [4, 64 * 1024, 250 * 1024];
const MEMORIES: [u32; 2] = [512, 2048];

const FOLLOWER_PHASES: [&str; 4] = ["lock_node", "validate", "push_to_leader", "commit"];
const LEADER_PHASES: [&str; 5] = [
    "get_node",
    "update_user_storage",
    "query_watches",
    "notify_client",
    "pop_updates",
];

fn main() {
    let mut results: Vec<(String, BTreeMap<String, f64>)> = Vec::new();
    for (ci, &memory) in MEMORIES.iter().enumerate() {
        let config = DeploymentConfig::aws()
            .with_mode(LatencyMode::Virtual, 1000 + ci as u64)
            .with_function_memory(memory);
        let mut pipe = WritePipeline::new(config);
        for (i, &size) in SIZES.iter().enumerate() {
            let path = format!("/node-{i}");
            pipe.seed_node(&path, size);
            let data = vec![0x42; size];
            let mut phase_samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            for rep in 0..REPS {
                let sample = pipe.run_write(5000 + rep as u64, &path, &data);
                for (phase, ms) in sample.phases {
                    phase_samples.entry(phase).or_default().push(ms);
                }
            }
            let medians: BTreeMap<String, f64> = phase_samples
                .into_iter()
                .map(|(k, v)| (k, summarize(&v).p50))
                .collect();
            results.push((format!("{} / {} MB", size_label(size), memory), medians));
        }
    }

    for (title, phases) in [
        (
            "Fig 10: follower function time distribution [p50 ms]",
            &FOLLOWER_PHASES[..],
        ),
        (
            "Fig 10: leader function time distribution [p50 ms]",
            &LEADER_PHASES[..],
        ),
    ] {
        let mut rows = Vec::new();
        for (config, medians) in &results {
            let mut row = vec![config.clone()];
            let mut total = 0.0;
            for phase in phases {
                let v = medians.get(*phase).copied().unwrap_or(0.0);
                total += v;
                row.push(ms(v));
            }
            row.push(ms(total));
            rows.push(row);
        }
        let mut headers: Vec<&str> = vec!["config"];
        headers.extend(phases.iter().copied());
        headers.push("sum");
        print_table(title, &headers, &rows);
    }
    println!(
        "\n-> the impact of synchronization operations (lock, commit) is \
         limited; runtimes are dominated by pushing data to queues \
         (follower) and object storage (leader) — there is no yield in \
         serverless, so I/O waits accrue cost"
    );
}
