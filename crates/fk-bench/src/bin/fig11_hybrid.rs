//! Figure 11: FaaSKeeper writes with hybrid storage.
//!
//! For the node-size range typical of ZooKeeper applications (4 B – 4 kB),
//! replacing the S3 user store with DynamoDB cuts write time by 22–28 %
//! and shifts the cost distribution away from object storage while
//! keeping infrequent large nodes affordable.

use fk_bench::pipeline::WritePipeline;
use fk_bench::stats::{ms, print_table, size_label, summarize, usd};
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::DeploymentConfig;
use fk_core::UserStoreKind;
use fk_cost::{price_usage, AwsPricing};

const REPS: usize = 120;
const SIZES: [usize; 7] = [4, 128, 256, 512, 1024, 2048, 4096];
const MEMORIES: [u32; 3] = [512, 1024, 2048];

/// Per-size cost split: (queue, kv, object, function) USD per write.
type CostSplit = (f64, f64, f64, f64);

fn measure(store: UserStoreKind, memory: u32, seed: u64) -> (Vec<f64>, Vec<CostSplit>) {
    let config = DeploymentConfig::aws()
        .with_mode(LatencyMode::Virtual, seed)
        .with_function_memory(memory)
        .with_user_store(store);
    let mut pipe = WritePipeline::new(config);
    let mut medians = Vec::new();
    let mut costs = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let path = format!("/node-{i}");
        pipe.seed_node(&path, size);
        let data = vec![0x33; size];
        let before = pipe.deployment().meter().snapshot();
        let mut samples = Vec::with_capacity(REPS);
        for rep in 0..REPS {
            samples.push(pipe.run_write(seed * 100 + rep as u64, &path, &data).e2e_ms);
        }
        medians.push(summarize(&samples).p50);
        let usage = pipe.deployment().meter().snapshot().since(&before);
        let cost = price_usage(&usage, &AwsPricing::default());
        let scale = 100_000.0 / REPS as f64;
        costs.push((
            cost.queue * scale,
            cost.kv * scale,
            cost.object * scale,
            cost.functions * scale,
        ));
    }
    (medians, costs)
}

fn main() {
    // ---- write time per memory config, hybrid storage.
    let mut hybrid_rows: Vec<Vec<String>> = SIZES.iter().map(|&s| vec![size_label(s)]).collect();
    let mut hybrid_costs = Vec::new();
    for (i, &memory) in MEMORIES.iter().enumerate() {
        let (medians, costs) = measure(UserStoreKind::hybrid_default(), memory, 1100 + i as u64);
        for (row, median) in hybrid_rows.iter_mut().zip(&medians) {
            row.push(ms(*median));
        }
        if memory == 512 || memory == 2048 {
            hybrid_costs.push((memory, costs));
        }
    }
    // Standard S3 reference at 2048 MB for the improvement claim.
    let (standard, _) = measure(UserStoreKind::Object, 2048, 1200);
    let (hybrid_2048, _) = measure(UserStoreKind::hybrid_default(), 2048, 1201);
    for (row, (std, hyb)) in hybrid_rows
        .iter_mut()
        .zip(standard.iter().zip(&hybrid_2048))
    {
        row.push(format!("{:.0}%", (1.0 - hyb / std) * 100.0));
    }
    print_table(
        "Fig 11: hybrid-storage write p50 [ms] (vs standard S3 at 2048 MB)",
        &["size", "512 MB", "1024 MB", "2048 MB", "improvement"],
        &hybrid_rows,
    );
    println!("-> paper: total write time decreased by 22-28%");

    // ---- cost distribution.
    let mut rows = Vec::new();
    for (memory, costs) in &hybrid_costs {
        for (i, &size) in SIZES.iter().enumerate() {
            if ![4usize, 512, 1024, 4096].contains(&size) {
                continue;
            }
            let (q, kv, obj, fns) = costs[i];
            let total = q + kv + obj + fns;
            rows.push(vec![
                format!("{} / {} MB", size_label(size), memory),
                usd(total),
                format!("{:.0}%", q / total * 100.0),
                format!("{:.0}%", kv / total * 100.0),
                format!("{:.0}%", obj / total * 100.0),
                format!("{:.0}%", fns / total * 100.0),
            ]);
        }
    }
    print_table(
        "Fig 11: cost distribution of 100,000 hybrid writes",
        &[
            "config",
            "total",
            "queue",
            "system+user store",
            "S3",
            "functions",
        ],
        &rows,
    );
    println!(
        "-> paper totals: $0.7-$1.2 per 100k — cheaper than standard \
         storage ($1.1-$2.5) for the small-node common case"
    );
}
