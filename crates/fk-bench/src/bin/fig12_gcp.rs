//! Figure 12: FaaSKeeper writes on Google Cloud.
//!
//! The GCP port (§4.5) swaps SQS FIFO → ordered Pub/Sub, DynamoDB →
//! Datastore (synchronization through transactions), S3 → Cloud Storage.
//! Writes get slower than AWS — transactions make locking/committing
//! costlier and the ordered queue adds >170 ms — and hybrid storage does
//! not pay off because Datastore reads cost more than object-store reads.
//! Also prints the CPU-allocation experiment (§5.3.2): GCP's independent
//! vCPU knob trades 2–10 % performance for a 54–62 % cost cut.

use fk_bench::pipeline::WritePipeline;
use fk_bench::stats::{ms, print_table, size_label, summarize};
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::DeploymentConfig;
use std::collections::BTreeMap;

const REPS: usize = 120;
const SIZES: [usize; 3] = [4, 64 * 1024, 250 * 1024];
const MEMORIES: [u32; 2] = [512, 2048];

fn main() {
    let mut rows_total = Vec::new();
    let mut rows_phases = Vec::new();
    for (ci, &memory) in MEMORIES.iter().enumerate() {
        let config = DeploymentConfig::gcp()
            .with_mode(LatencyMode::Virtual, 1300 + ci as u64)
            .with_function_memory(memory);
        let mut pipe = WritePipeline::new(config);
        for (i, &size) in SIZES.iter().enumerate() {
            let path = format!("/node-{i}");
            pipe.seed_node(&path, size);
            let data = vec![0x55; size];
            let mut e2e = Vec::new();
            let mut follower = Vec::new();
            let mut leader = Vec::new();
            let mut phases: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            for rep in 0..REPS {
                let s = pipe.run_write(7000 + rep as u64, &path, &data);
                e2e.push(s.e2e_ms);
                follower.push(s.follower_ms);
                leader.push(s.leader_ms);
                for (k, v) in s.phases {
                    phases.entry(k).or_default().push(v);
                }
            }
            rows_total.push(vec![
                format!("{} / {} MB", size_label(size), memory),
                ms(summarize(&e2e).p50),
                ms(summarize(&follower).p50),
                ms(summarize(&leader).p50),
            ]);
            let p = |k: &str| phases.get(k).map(|v| summarize(v).p50).unwrap_or(0.0);
            rows_phases.push(vec![
                format!("{} / {} MB", size_label(size), memory),
                ms(p("lock_node")),
                ms(p("push_to_leader")),
                ms(p("commit")),
                ms(p("update_user_storage")),
                ms(p("pop_updates")),
            ]);
        }
    }
    print_table(
        "Fig 12 (GCP): set_data p50 [ms]",
        &["config", "e2e", "follower", "leader"],
        &rows_total,
    );
    print_table(
        "Fig 12 (GCP): phase p50 [ms]",
        &["config", "lock", "push", "commit", "update user", "pop"],
        &rows_phases,
    );
    println!(
        "-> paper: worse than AWS due to significantly more expensive \
         synchronization with transactions on key-value storage, plus the \
         ordered Pub/Sub overhead"
    );

    // ---- CPU allocation knob (§5.3.2): 0.33 vs 1 vCPU at 512 MB.
    let mut rows = Vec::new();
    for (label, cpu, seed) in [("1.00 vCPU", 1.0f64, 1400u64), ("0.33 vCPU", 0.33, 1401)] {
        let mut config = DeploymentConfig::gcp()
            .with_mode(LatencyMode::Virtual, seed)
            .with_function_memory(512);
        config.follower_fn.cpu_alloc = Some(cpu);
        config.leader_fn.cpu_alloc = Some(cpu);
        let mut pipe = WritePipeline::new(config);
        pipe.seed_node("/cpu", 1024);
        let mut e2e = Vec::new();
        for rep in 0..REPS {
            e2e.push(
                pipe.run_write(8000 + rep as u64, "/cpu", &[1u8; 1024])
                    .e2e_ms,
            );
        }
        // GCP prices vCPU-seconds and GB-seconds separately; relative
        // compute cost scales with the allocation.
        let relative_cost = 0.40 + 0.60 * cpu; // memory share + cpu share
        rows.push(vec![
            label.to_owned(),
            ms(summarize(&e2e).p50),
            format!("{:.0}%", relative_cost * 100.0),
        ]);
    }
    print_table(
        "§5.3.2: GCP CPU allocation at 512 MB (1 kB writes)",
        &["allocation", "e2e p50 [ms]", "relative compute cost"],
        &rows,
    );
    println!(
        "-> paper: 2-10% performance change, 54-62% cost decrease — \
         I/O-bound functions benefit from flexible CPU allocation"
    );
}
