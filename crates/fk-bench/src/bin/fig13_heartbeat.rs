//! Figure 13: heartbeat function performance and cost.
//!
//! The scheduled heartbeat scans the session table and pings every client
//! in parallel. Execution time falls as the memory allocation grows
//! (serverless I/O scales with memory), and running it every minute for
//! 24 hours costs a fraction of a cent — versus a persistently allocated
//! VM doing the same monitoring.

use fk_bench::stats::{ms, print_table, summarize};
use fk_cloud::trace::{Ctx, LatencyMode};
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_cost::AwsPricing;
use std::sync::Arc;

const REPS: usize = 100;
const CLIENTS: [usize; 6] = [1, 4, 8, 16, 32, 64];
const MEMORIES: [u32; 6] = [128, 256, 512, 1024, 1536, 2048];

fn main() {
    let mut time_rows = Vec::new();
    let mut cost_rows = Vec::new();
    let pricing = AwsPricing::default();

    for &clients in &CLIENTS {
        let mut config = DeploymentConfig::aws().with_mode(LatencyMode::Virtual, 77);
        config.heartbeat_fn = config.heartbeat_fn.with_memory(2048);
        let deployment = Deployment::direct(config);
        // Register sessions + live endpoints.
        let setup = Ctx::disabled();
        let mut endpoints = Vec::new();
        for c in 0..clients {
            let id = format!("client-{c}");
            deployment
                .system()
                .register_session(&setup, &id, 0)
                .expect("register");
            endpoints.push(deployment.bus().register(&id));
        }
        let heartbeat = deployment.make_heartbeat();

        let mut time_row = vec![clients.to_string()];
        let mut cost_row = vec![clients.to_string()];
        for &memory in &MEMORIES {
            let env = fk_cloud::faas::FunctionConfig::default_2048()
                .with_memory(memory)
                .env();
            let mut samples = Vec::with_capacity(REPS);
            for rep in 0..REPS {
                let ctx = Ctx::new(
                    Arc::clone(deployment.model()),
                    LatencyMode::Virtual,
                    9_000 + rep as u64,
                );
                ctx.set_env(env);
                let report = heartbeat.run(&ctx).expect("heartbeat");
                assert_eq!(report.pinged, clients);
                samples.push(ctx.now().as_secs_f64() * 1e3);
            }
            let p50_ms = summarize(&samples).p50;
            time_row.push(ms(p50_ms));
            // Cost over 24 h at one invocation per minute: GB-seconds +
            // invocations + the DynamoDB session-table scan.
            let invocations_per_day = 24.0 * 60.0;
            let gb_s = memory as f64 / 1024.0 * (p50_ms / 1e3);
            let scan_units = (clients as f64 * 100.0 / 4096.0).ceil();
            let daily = invocations_per_day
                * (gb_s * pricing.lambda_gb_second
                    + pricing.lambda_invocation
                    + scan_units * pricing.ddb_read_unit);
            cost_row.push(format!("{:.3}¢", daily * 100.0));
        }
        time_rows.push(time_row);
        cost_rows.push(cost_row);
    }

    let headers: Vec<String> = std::iter::once("clients".to_owned())
        .chain(MEMORIES.iter().map(|m| format!("{m} MB")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Fig 13: heartbeat execution p50 [ms] by memory allocation",
        &header_refs,
        &time_rows,
    );
    print_table(
        "Fig 13: heartbeat cost over 24 h at 1/min [cents]",
        &header_refs,
        &cost_rows,
    );
    println!(
        "\n-> execution time decreases with allocation; the daily allocation \
         time is <0.2% of the day, monitoring costs a fraction of a VM \
         (paper: 0.10-0.25 cents/day)"
    );
}
