//! Figure 14 + Table 4: cost ratio of ZooKeeper and FaaSKeeper.
//!
//! The headline result: for a 1 kB read/write mix, FaaSKeeper costs up to
//! 719x less than a provisioned ZooKeeper ensemble at 100 K requests/day,
//! with break-even between 1 and 3.75 M requests/day (standard storage)
//! or 5.99 M (hybrid, read-only).

use fk_bench::stats::print_table;
use fk_cost::{
    break_even_requests_per_day, cost_ratio, CostModel, StorageMode, VmClass, ZkDeployment,
};

const RATES: [f64; 5] = [100_000.0, 500_000.0, 1_000_000.0, 2_000_000.0, 5_000_000.0];

fn grid(model: &CostModel, read_fraction: f64) {
    let mut rows = Vec::new();
    for (mode, label) in [
        (StorageMode::Standard, "standard"),
        (StorageMode::Hybrid, "hybrid"),
    ] {
        for deployment in ZkDeployment::fig14_rows() {
            let mut row = vec![format!("{} ({label})", deployment.label())];
            for &rate in &RATES {
                let cell = cost_ratio(model, deployment, mode, rate, read_fraction, 1024);
                row.push(format!("{:.2}", cell.ratio));
            }
            rows.push(row);
        }
    }
    let headers: Vec<String> = std::iter::once("ZK deployment".to_owned())
        .chain(RATES.iter().map(|r| format!("{:.0}K/day", r / 1000.0)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Fig 14: cost ratio ZooKeeper / FaaSKeeper, {:.0}% reads (1 kB)",
            read_fraction * 100.0
        ),
        &header_refs,
        &rows,
    );
}

fn main() {
    let model = CostModel::paper_default();

    // ---- Table 4 parameters.
    print_table(
        "Table 4: cost model parameters (1 kB reference)",
        &["parameter", "description", "value"],
        &[
            vec![
                "W_S3(s)".into(),
                "writing data to S3".into(),
                format!("{:.0e}", model.w_s3(1024)),
            ],
            vec![
                "R_S3(s)".into(),
                "reading data from S3".into(),
                format!("{:.0e}", model.r_s3(1024)),
            ],
            vec![
                "W_DD(s)".into(),
                "writing to DynamoDB (per kB)".into(),
                format!("{:.2e}", model.w_dd(1024)),
            ],
            vec![
                "R_DD(s)".into(),
                "reading from DynamoDB (per 4 kB)".into(),
                format!("{:.2e}", model.r_dd(1024)),
            ],
            vec![
                "Q(s)".into(),
                "push to queue (per 64 kB)".into(),
                format!("{:.0e}", model.q(1024)),
            ],
            vec![
                "F_W + F_D".into(),
                "follower + leader execution".into(),
                format!("{:.2e}", model.f_functions()),
            ],
        ],
    );
    println!(
        "\nanchors: 100k reads = ${:.2}; 100k writes = ${:.2} standard, ${:.2} hybrid",
        100_000.0 * model.cost_read(StorageMode::Standard, 1024),
        100_000.0 * model.cost_write(StorageMode::Standard, 1024),
        100_000.0 * model.cost_write(StorageMode::Hybrid, 1024),
    );

    // ---- the three grids.
    for read_fraction in [1.0, 0.9, 0.8] {
        grid(&model, read_fraction);
    }

    // ---- break-even points.
    let mut rows = Vec::new();
    for (mode, label) in [
        (StorageMode::Standard, "standard"),
        (StorageMode::Hybrid, "hybrid"),
    ] {
        for read_fraction in [1.0, 0.9, 0.8] {
            for vm in [VmClass::T3Small, VmClass::T3Large] {
                let deployment = ZkDeployment::minimal(vm);
                let be = break_even_requests_per_day(&model, deployment, mode, read_fraction, 1024);
                rows.push(vec![
                    format!("{} ({label})", deployment.label()),
                    format!("{:.0}%", read_fraction * 100.0),
                    format!("{:.2}M/day", be / 1e6),
                ]);
            }
        }
    }
    print_table(
        "Break-even request rates (ratio = 1)",
        &["ZK deployment", "reads", "break-even"],
        &rows,
    );
    println!(
        "\n-> paper: 1-3.75M requests/day before FaaSKeeper costs match the \
         smallest ZooKeeper deployment; 5.99M with hybrid storage; maximum \
         ratio 718.85x (9 x t3.large, hybrid, 100K/day, 100% reads)"
    );
}
