//! Table 3: variability of function performance (2048 MB).
//!
//! Tail percentiles of the important operations at 4 B and 250 kB
//! payloads: follower total / lock / push / commit, leader total /
//! get-node / update-node / watch-query. The paper observes significant
//! degradation at tail percentiles when pushing to the queue (follower)
//! and updating object storage (leader).

use fk_bench::pipeline::WritePipeline;
use fk_bench::stats::{ms, print_table, size_label, Summary};
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::DeploymentConfig;
use std::collections::BTreeMap;

const REPS: usize = 1000;
const SIZES: [usize; 2] = [4, 250 * 1024];

fn row(name: &str, size: usize, s: Summary) -> Vec<String> {
    vec![
        name.to_owned(),
        size_label(size),
        ms(s.min),
        ms(s.p50),
        ms(s.p90),
        ms(s.p95),
        ms(s.p99),
    ]
}

fn main() {
    let config = DeploymentConfig::aws()
        .with_mode(LatencyMode::Virtual, 333)
        .with_function_memory(2048);
    let mut pipe = WritePipeline::new(config);

    let mut rows = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let path = format!("/node-{i}");
        pipe.seed_node(&path, size);
        let data = vec![0x11; size];

        let mut totals_f = Vec::with_capacity(REPS);
        let mut totals_l = Vec::with_capacity(REPS);
        let mut phases: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        for rep in 0..REPS {
            let sample = pipe.run_write(70_000 + rep as u64, &path, &data);
            totals_f.push(sample.follower_ms);
            totals_l.push(sample.leader_ms);
            for key in [
                "lock_node",
                "push_to_leader",
                "commit",
                "get_node",
                "update_user_storage",
                "query_watches",
            ] {
                phases
                    .entry(key)
                    .or_default()
                    .push(sample.phases.get(key).copied().unwrap_or(0.0));
            }
        }
        let s = |key: &str| fk_bench::stats::summarize(&phases[key]);
        rows.push(row(
            "Follower total",
            size,
            fk_bench::stats::summarize(&totals_f),
        ));
        rows.push(row("  Lock", size, s("lock_node")));
        rows.push(row("  Push", size, s("push_to_leader")));
        rows.push(row("  Commit", size, s("commit")));
        rows.push(row(
            "Leader total",
            size,
            fk_bench::stats::summarize(&totals_l),
        ));
        rows.push(row("  Get node", size, s("get_node")));
        rows.push(row("  Update node", size, s("update_user_storage")));
        rows.push(row("  Watch query", size, s("query_watches")));
    }
    print_table(
        "Table 3: variability of function performance, 2048 MB [ms]",
        &["operation", "size", "min", "p50", "p90", "p95", "p99"],
        &rows,
    );
    println!(
        "\n-> paper anchors (p50, 4 B / 250 kB): follower total 31.81/102.53, \
         lock 8.02/8.36, push 13.35/72.18, commit 7.93/8.59; leader total \
         62.16/132.62, get node 5.09/4.97, update node 42.73/102.07, watch \
         query 4.48/5.13. Tails blow up on queue pushes and S3 updates."
    );
}
