//! Chaos soak: a 64-session zipf write mix driven through a live
//! deployment while a seeded [`FaultPlan`] fires at
//! every service boundary, versus a fault-free twin of the same
//! workload.
//!
//! The workload is issued in a single deterministic global order (writes
//! round-robin across the fleet, each acknowledged before the next is
//! submitted), so the acknowledged final tree — data, versions,
//! children, ephemeral owners — is a pure function of the workload seed.
//! A chaotic run must therefore reproduce the twin's tree *exactly*: any
//! lost acknowledged write, double-applied redelivery or stranded commit
//! shows up as a fingerprint mismatch. Transaction ids are excluded (a
//! crash redelivery legitimately re-allocates them, invisible to the
//! ZooKeeper API surface).
//!
//! The interesting numbers besides convergence are **retry
//! amplification** (every retry must be accounted to an injected fault),
//! **dead-letter depth** (the soak must drain clean) and the **write
//! latency distribution** under faults versus the fault-free baseline
//! (the price of the retry/backoff layer when the cloud misbehaves).

use crate::stats::{self, Summary};
use fk_cloud::FaultPlan;
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::{CreateMode, DistributorConfig};
use fk_workloads::SeededZipf;
use std::collections::BTreeMap;
use std::time::Instant;

/// One chaos-soak measurement configuration. The deployment geometry is
/// fixed (it is part of what the fault schedule replays against); only
/// the chaos seed varies between gate runs, so a single fault-free twin
/// serves as the convergence baseline for every schedule.
#[derive(Debug, Clone)]
pub struct ChaosSoakConfig {
    /// Number of concurrently connected writer sessions.
    pub sessions: usize,
    /// Acknowledged writes issued per session.
    pub writes_per_session: usize,
    /// Number of distinct target nodes (zipf-skewed selection).
    pub nodes: u64,
    /// Zipf skew of the node choice (YCSB default 0.99).
    pub theta: f64,
    /// Payload size of the seeded nodes.
    pub node_size: usize,
    /// Seed for the zipf workload stream (not the fault schedule).
    pub workload_seed: u64,
    /// Leader-tier shard groups.
    pub groups: usize,
    /// Distributor shards.
    pub shards: usize,
}

impl ChaosSoakConfig {
    /// The gate shape: 64 sessions, 3 acknowledged zipf writes each over
    /// 24 nodes, on a two-group leader tier with a three-shard
    /// distributor.
    pub fn standard() -> Self {
        ChaosSoakConfig {
            sessions: 64,
            writes_per_session: 3,
            nodes: 24,
            theta: 0.99,
            node_size: 128,
            workload_seed: 0x50AC,
            groups: 2,
            shards: 3,
        }
    }

    fn deployment(&self) -> DeploymentConfig {
        DeploymentConfig::aws()
            .with_distributor(DistributorConfig::new(self.shards, 16))
            .with_shard_groups(self.groups)
    }
}

/// The ZooKeeper-visible state of one surviving node: data, version,
/// sorted children and ephemeral owner. Transaction ids are deliberately
/// absent — see the module docs.
pub type NodeFingerprint = (Vec<u8>, i64, Vec<String>, Option<String>);

/// Result of one soak run (chaotic or fault-free).
#[derive(Debug, Clone)]
pub struct ChaosSoakResult {
    /// Total acknowledged writes across the fleet.
    pub writes: usize,
    /// What the workload was *acknowledged*: path → (final data, version).
    pub acked: BTreeMap<String, (Vec<u8>, i64)>,
    /// The surviving tree over the acknowledged paths.
    pub tree: BTreeMap<String, NodeFingerprint>,
    /// Retries the unified retry layer performed.
    pub retries: u64,
    /// Faults the chaos engine injected (0 on a fault-free run).
    pub faults_injected: u64,
    /// Messages found on the write- and leader-queue DLQs at drain time.
    pub dead_letters: usize,
    /// Z1 structural violations found by the integrity checker.
    pub integrity_violations: usize,
    /// Wall-clock latency distribution of the acknowledged writes (ms).
    pub latency: Summary,
}

impl ChaosSoakResult {
    /// Paths of every acknowledged write that is missing from the final
    /// tree or present with different data or version — empty on a
    /// healthy run.
    pub fn lost_acks(&self) -> Vec<String> {
        self.acked
            .iter()
            .filter(|(path, (data, version))| match self.tree.get(*path) {
                Some((d, v, _, _)) => d != data || v != version,
                None => true,
            })
            .map(|(path, _)| path.clone())
            .collect()
    }
}

/// Reads one node through the deployment's user store, absorbing any
/// still-armed chaos on the read path.
fn read_node_retry(fk: &Deployment, path: &str) -> Option<fk_core::NodeRecord> {
    let ctx = fk.client_ctx();
    for _ in 0..50 {
        match fk.user_store().read_node(&ctx, path) {
            Ok(record) => return record,
            Err(_) => continue,
        }
    }
    panic!("read of {path} failed 50 times");
}

/// Runs the soak: seeds the tree, connects the fleet, plays the
/// deterministic zipf write mix (round-robin across sessions, each write
/// acknowledged before the next is issued), closes every session, then
/// drains the DLQs, runs the integrity checker and fingerprints the
/// surviving tree. `chaos_seed` installs [`FaultPlan::standard`] with
/// that seed; `None` runs the fault-free twin.
pub fn run_chaos_soak(config: &ChaosSoakConfig, chaos_seed: Option<u64>) -> ChaosSoakResult {
    let mut deployment_config = config.deployment();
    if let Some(seed) = chaos_seed {
        deployment_config = deployment_config.with_chaos(FaultPlan::standard(seed));
    }
    let fk = Deployment::start(deployment_config);

    let seeder = fk.connect("soak-seeder").expect("connect seeder");
    seeder
        .create("/soak", b"", CreateMode::Persistent)
        .expect("create root");
    let mut acked = BTreeMap::new();
    acked.insert("/soak".to_owned(), (Vec::new(), 0));
    let paths: Vec<String> = (0..config.nodes).map(|i| format!("/soak/n{i}")).collect();
    for path in &paths {
        seeder
            .create(path, &vec![0x5A; config.node_size], CreateMode::Persistent)
            .expect("create node");
        acked.insert(path.clone(), (vec![0x5A; config.node_size], 0));
    }

    let clients: Vec<_> = (0..config.sessions)
        .map(|i| fk.connect(format!("soak-{i}")).expect("connect session"))
        .collect();

    // The mix: one shared zipf stream, writes issued round-robin across
    // the fleet. Serializing on each acknowledgement makes the final
    // per-node (data, version) deterministic — the property the twin
    // comparison is stated over — while still exercising every session's
    // own queue group, watermark and close path.
    let mut zipf = SeededZipf::with_theta(config.nodes, config.theta, config.workload_seed);
    let total = config.sessions * config.writes_per_session;
    let mut samples = Vec::with_capacity(total);
    for w in 0..total {
        let client = &clients[w % config.sessions];
        let node = zipf.next_key() as usize;
        let value = format!("w{w}-n{node}").into_bytes();
        let started = Instant::now();
        client
            .set_data(&paths[node], &value, -1)
            .expect("acknowledged write");
        samples.push(started.elapsed().as_secs_f64() * 1e3);
        let slot = acked.get_mut(&paths[node]).expect("seeded node");
        *slot = (value, slot.1 + 1);
    }
    for (i, client) in clients.into_iter().enumerate() {
        if let Err(e) = client.close() {
            let wdlq = fk.write_queue().drain_dead_letters();
            let ldlq = fk.leader_queues().drain_dead_letters();
            for m in &wdlq {
                eprintln!(
                    "write DLQ: attempt={} group={:?} req={:?}",
                    m.attempt,
                    m.group,
                    fk_core::messages::ClientRequest::decode(&m.body).map(|r| (
                        r.session_id,
                        r.request_id,
                        format!("{:?}", r.op)
                    ))
                );
            }
            for m in &ldlq {
                let r = fk_core::messages::LeaderRecord::decode(&m.body);
                eprintln!(
                    "leader DLQ: attempt={} group={:?} rec={:?}",
                    m.attempt,
                    m.group,
                    r.map(|r| (
                        r.session_id,
                        r.request_id,
                        r.txid,
                        r.prev_txid,
                        r.deregister_session,
                        r.path
                    ))
                );
            }
            panic!(
                "close session {i} failed: {e:?}; write DLQ {} msgs, leader DLQ {} msgs, meter {:?}",
                wdlq.len(),
                ldlq.len(),
                fk.meter().snapshot().per_op
            );
        }
    }
    seeder.close().expect("close seeder");

    let dead_letters =
        fk.write_queue().drain_dead_letters().len() + fk.leader_queues().drain_dead_letters().len();
    let integrity_violations = fk_core::consistency::check_tree_integrity(
        &fk.client_ctx(),
        fk.system(),
        fk.user_store().as_ref(),
    )
    .len();
    let tree = acked
        .keys()
        .map(|path| {
            let fingerprint = match read_node_retry(&fk, path) {
                None => (Vec::new(), -1, Vec::new(), None),
                Some(record) => {
                    let mut children = (*record.children).clone();
                    children.sort();
                    (
                        record.data.as_ref().to_vec(),
                        i64::from(record.version),
                        children,
                        record.ephemeral_owner.clone(),
                    )
                }
            };
            (path.clone(), fingerprint)
        })
        .collect();
    let snapshot = fk.meter().snapshot();
    fk.shutdown();

    ChaosSoakResult {
        writes: total,
        acked,
        tree,
        retries: snapshot.retries,
        faults_injected: snapshot.faults_injected,
        dead_letters,
        integrity_violations,
        latency: stats::summarize(&samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosSoakConfig {
        ChaosSoakConfig {
            sessions: 6,
            writes_per_session: 2,
            nodes: 6,
            ..ChaosSoakConfig::standard()
        }
    }

    #[test]
    fn fault_free_soak_is_deterministic_and_clean() {
        let config = small();
        let a = run_chaos_soak(&config, None);
        let b = run_chaos_soak(&config, None);
        assert_eq!(a.writes, 12);
        assert_eq!(a.acked, b.acked, "seeded workload reproduces");
        assert_eq!(a.tree, b.tree);
        assert!(a.lost_acks().is_empty(), "{:?}", a.lost_acks());
        assert_eq!(a.retries, 0);
        assert_eq!(a.faults_injected, 0);
        assert_eq!(a.dead_letters, 0);
        assert_eq!(a.integrity_violations, 0);
    }

    #[test]
    fn chaotic_soak_converges_to_fault_free_twin() {
        let config = small();
        let chaotic = run_chaos_soak(&config, Some(0x0DD5));
        let twin = run_chaos_soak(&config, None);
        assert!(chaotic.lost_acks().is_empty(), "{:?}", chaotic.lost_acks());
        assert_eq!(chaotic.tree, twin.tree, "chaos changed the tree");
        assert!(chaotic.retries <= chaotic.faults_injected);
        assert_eq!(chaotic.dead_letters, 0);
        assert_eq!(chaotic.integrity_violations, 0);
    }
}
