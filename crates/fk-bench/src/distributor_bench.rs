//! Direct-drive harness for the leader's distribution path: sequential
//! (one transaction per batch, one worker) versus the sharded,
//! epoch-batched distributor pipeline, under the calibrated virtual-time
//! latency model — for either provider profile (AWS SQS FIFO + S3 /
//! DynamoDB, or GCP ordered Pub/Sub + Cloud Storage / Datastore).
//!
//! Setup (node creation, follower processing) runs on an uncharged
//! context; only the leader's drain of its FIFO queue is measured, so the
//! comparison isolates exactly the cost the paper's Table 3 attributes to
//! "Update Node".

use fk_cloud::trace::{Ctx, LatencyMode};
use fk_core::deploy::{Deployment, DeploymentConfig, Provider};
use fk_core::distributor::DistributorConfig;
use fk_core::messages::{ClientRequest, Payload, WriteOp};
use fk_core::{CreateMode, UserStoreKind};
use fk_workloads::SkewedWriteMix;
use std::sync::Arc;
use std::time::Duration;

/// One distribution-path measurement configuration.
#[derive(Debug, Clone)]
pub struct DistRunConfig {
    /// Leader pipeline under test.
    pub pipeline: DistributorConfig,
    /// Number of measured `set_data` transactions.
    pub writes: usize,
    /// Number of distinct target nodes (zipf-skewed selection).
    pub nodes: u64,
    /// Payload size per write.
    pub node_size: usize,
    /// User-store backend.
    pub store: UserStoreKind,
    /// Provider profile whose calibrated latency model drives the run.
    pub provider: Provider,
    /// Seed for both the workload stream and latency sampling.
    pub seed: u64,
}

impl DistRunConfig {
    /// The default measurement shape: 96 writes over 24 nodes of 1 kB on
    /// the object-store backend (the paper's standard configuration).
    pub fn standard(pipeline: DistributorConfig) -> Self {
        DistRunConfig {
            pipeline,
            writes: 96,
            nodes: 24,
            node_size: 1024,
            store: UserStoreKind::Object,
            provider: Provider::Aws,
            seed: 0xD157,
        }
    }

    /// The same shape on the GCP profile (ordered Pub/Sub + Datastore /
    /// Cloud Storage latencies).
    pub fn gcp(pipeline: DistributorConfig) -> Self {
        DistRunConfig {
            provider: Provider::Gcp,
            ..Self::standard(pipeline)
        }
    }
}

/// Result of one distribution run.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Transactions distributed.
    pub writes: usize,
    /// Virtual time the leader spent draining the queue.
    pub virtual_time: Duration,
    /// Distribution throughput in transactions per virtual second.
    pub throughput_per_s: f64,
}

/// Runs `config.writes` skewed `set_data` transactions through the real
/// follower → leader pipeline and measures the leader's distribution
/// drain in virtual time.
pub fn run_distribution(config: &DistRunConfig) -> DistRunResult {
    let base = match config.provider {
        Provider::Aws => DeploymentConfig::aws(),
        Provider::Gcp => DeploymentConfig::gcp(),
    };
    let deployment = Deployment::direct(
        base.with_user_store(config.store)
            .with_mode(LatencyMode::Virtual, config.seed)
            .with_distributor(config.pipeline),
    );
    let follower = deployment.make_follower();
    let leader = deployment.make_leader_inline();

    let setup = Ctx::disabled();
    deployment
        .system()
        .register_session(&setup, "bench", 0)
        .expect("register bench session");
    let _endpoint = deployment.bus().register("bench");

    let mut request_id = 0u64;
    let mut submit = |op: WriteOp| {
        request_id += 1;
        let request = ClientRequest {
            session_id: "bench".into(),
            request_id,
            op,
        };
        deployment
            .write_queue()
            .send(&setup, "bench", request.encode())
            .expect("enqueue request");
    };
    let drain_follower = |ctx: &Ctx| {
        while let Some(batch) = deployment
            .write_queue()
            .receive(10, Duration::from_secs(30))
        {
            follower
                .process_messages(ctx, &batch.messages)
                .expect("follower processes");
            deployment.write_queue().ack(batch.receipt);
        }
    };

    // Uncharged setup: the node tree plus the follower half of the
    // workload's write path.
    let mut mix = SkewedWriteMix::new(config.nodes, 1.0, config.node_size, config.seed);
    submit(WriteOp::Create {
        path: "/hot".into(),
        payload: Payload::inline(b""),
        mode: CreateMode::Persistent,
    });
    for path in mix.paths().to_vec() {
        submit(WriteOp::Create {
            path,
            payload: Payload::inline(&vec![0x11; config.node_size]),
            mode: CreateMode::Persistent,
        });
    }
    drain_follower(&setup);
    while leader
        .drain_queue(&setup, deployment.leader_queue())
        .expect("setup drain")
        > 0
    {}

    let payload = vec![0xAB; config.node_size];
    for _ in 0..config.writes {
        let (_, path) = mix.next_op();
        let path = path.to_owned();
        submit(WriteOp::SetData {
            path,
            payload: Payload::inline(&payload),
            expected_version: -1,
        });
    }
    drain_follower(&setup);

    // Measured: the leader drains its queue in epoch batches.
    let ctx = Ctx::new(
        Arc::clone(deployment.model()),
        deployment.config().mode,
        config.seed,
    );
    ctx.set_region(deployment.config().regions[0]);
    ctx.set_env(deployment.config().leader_fn.env());
    let mut processed = 0usize;
    loop {
        let n = leader
            .drain_queue(&ctx, deployment.leader_queue())
            .expect("leader drains");
        if n == 0 {
            break;
        }
        processed += n;
    }
    assert_eq!(processed, config.writes, "all writes distributed");

    let virtual_time = ctx.now();
    DistRunResult {
        writes: processed,
        throughput_per_s: processed as f64 / virtual_time.as_secs_f64().max(1e-12),
        virtual_time,
    }
}

/// Runs the sequential baseline and the batched+sharded pipeline on the
/// same seeded workload; returns `(sequential, pipelined, speedup)`.
pub fn compare(
    pipeline: DistributorConfig,
    base: &DistRunConfig,
) -> (DistRunResult, DistRunResult, f64) {
    let sequential = run_distribution(&DistRunConfig {
        pipeline: DistributorConfig::sequential(),
        ..base.clone()
    });
    let batched = run_distribution(&DistRunConfig {
        pipeline,
        ..base.clone()
    });
    let speedup = batched.throughput_per_s / sequential.throughput_per_s;
    (sequential, batched, speedup)
}

/// One multi-leader measurement configuration: a **uniform** write mix
/// (round-robin over the node set) with one session per node, so each
/// session's writes pin to one path — the N-independent-clients shape
/// the scale-out argument is about. Writes spread across the leader
/// tier's shard groups by path hash.
#[derive(Debug, Clone)]
pub struct MultiRunConfig {
    /// Path shards × epoch batch inside each leader instance.
    pub pipeline: DistributorConfig,
    /// Number of measured `set_data` transactions.
    pub writes: usize,
    /// Number of distinct target nodes (= sessions).
    pub nodes: u64,
    /// Payload size per write.
    pub node_size: usize,
    /// User-store backend.
    pub store: UserStoreKind,
    /// Provider profile whose calibrated latency model drives the run.
    pub provider: Provider,
    /// Seed for latency sampling.
    pub seed: u64,
}

impl MultiRunConfig {
    /// The standard multi-leader shape: 96 uniform writes over 24 nodes
    /// of 1 kB on the object-store backend.
    pub fn standard() -> Self {
        MultiRunConfig {
            pipeline: DistributorConfig::new(4, 16),
            writes: 96,
            nodes: 24,
            node_size: 1024,
            store: UserStoreKind::Object,
            provider: Provider::Aws,
            seed: 0x3107,
        }
    }
}

/// Runs the uniform write mix through the follower half (uncharged
/// setup), then measures the leader tier's drain: one leader instance
/// per shard group, each on its own virtual-time context, drained to
/// exhaustion in interleaved rounds. The tier's virtual time is the
/// *maximum* over the groups — the wall-clock of `groups` function
/// instances running concurrently — so throughput scales with the tier
/// width exactly as far as the queue sharding balances the load.
pub fn run_multi_leader(groups: usize, config: &MultiRunConfig) -> DistRunResult {
    let base = match config.provider {
        Provider::Aws => DeploymentConfig::aws(),
        Provider::Gcp => DeploymentConfig::gcp(),
    };
    let deployment = Deployment::direct(
        base.with_user_store(config.store)
            .with_mode(LatencyMode::Virtual, config.seed)
            .with_distributor(config.pipeline.with_groups(groups)),
    );
    let follower = deployment.make_follower();

    let setup = Ctx::disabled();
    let paths: Vec<String> = (0..config.nodes).map(|i| format!("/hot/n{i}")).collect();
    let sessions: Vec<String> = (0..config.nodes).map(|i| format!("bench-{i}")).collect();
    let mut endpoints = Vec::new();
    for session in &sessions {
        deployment
            .system()
            .register_session(&setup, session, 0)
            .expect("register bench session");
        endpoints.push(deployment.bus().register(session));
    }

    // Request ids are per-session monotonic (the follower's exactly-once
    // watermark drops repeats); a shared counter satisfies that for every
    // session at once.
    let next_request = std::cell::Cell::new(1u64);
    let submit = |session: &str, op: WriteOp| {
        let request = ClientRequest {
            session_id: session.to_owned(),
            request_id: next_request.replace(next_request.get() + 1),
            op,
        };
        deployment
            .write_queue()
            .send(&setup, session, request.encode())
            .expect("enqueue request");
    };
    let drain_follower = || {
        while let Some(batch) = deployment
            .write_queue()
            .receive(10, Duration::from_secs(30))
        {
            follower
                .process_messages(&setup, &batch.messages)
                .expect("follower processes");
            deployment.write_queue().ack(batch.receipt);
        }
    };
    let drain_all_uncharged = |leaders: &[fk_core::leader::Leader]| {
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (group, leader) in leaders.iter().enumerate() {
                while let Ok(n) =
                    leader.drain_queue(&setup, deployment.leader_queues().queue(group))
                {
                    if n == 0 {
                        break;
                    }
                    progressed = true;
                }
            }
        }
    };

    // Uncharged setup: the node tree plus the follower half of the
    // measured writes.
    let leaders: Vec<fk_core::leader::Leader> = (0..groups)
        .map(|_| deployment.make_leader_inline())
        .collect();
    submit(
        &sessions[0],
        WriteOp::Create {
            path: "/hot".into(),
            payload: Payload::inline(b""),
            mode: CreateMode::Persistent,
        },
    );
    drain_follower();
    drain_all_uncharged(&leaders);
    for (path, session) in paths.iter().zip(&sessions) {
        submit(
            session,
            WriteOp::Create {
                path: path.clone(),
                payload: Payload::inline(&vec![0x11; config.node_size]),
                mode: CreateMode::Persistent,
            },
        );
    }
    drain_follower();
    drain_all_uncharged(&leaders);

    // Interleaved rounds: every session submits one write, the follower
    // tier drains, then the next round — the arrival pattern of N
    // independent clients writing concurrently. Draining per round makes
    // the leader queues' push order round-robin across paths instead of
    // per-session runs.
    let payload = vec![0xAB; config.node_size];
    let mut submitted = 0usize;
    while submitted < config.writes {
        for n in 0..config.nodes as usize {
            if submitted >= config.writes {
                break;
            }
            submit(
                &sessions[n],
                WriteOp::SetData {
                    path: paths[n].clone(),
                    payload: Payload::inline(&payload),
                    expected_version: -1,
                },
            );
            submitted += 1;
        }
        drain_follower();
    }

    // Measured: each group's leader drains its own queue on its own
    // context — the virtual concurrency of a scaled-out tier.
    let contexts: Vec<Ctx> = (0..groups)
        .map(|group| {
            let ctx = Ctx::new(
                Arc::clone(deployment.model()),
                deployment.config().mode,
                config.seed ^ (group as u64).wrapping_mul(0x9E37_79B9),
            );
            ctx.set_region(deployment.config().regions[0]);
            ctx.set_env(deployment.config().leader_fn.env());
            ctx
        })
        .collect();
    // Progress is counted by queue-depth delta, not the drain's return
    // value: a held-back batch defers with an error *after* acking its
    // eligible prefix, and that prefix must still count. A round where
    // no group consumes anything (e.g. a persistently failing store)
    // trips the stall guard instead of spinning forever.
    let mut processed = 0usize;
    let mut stalled_rounds = 0;
    while processed < config.writes {
        let mut consumed_this_round = 0;
        for group in 0..groups {
            let queue = deployment.leader_queues().queue(group);
            let before = queue.pending();
            let _ = leaders[group].drain_queue(&contexts[group], queue);
            consumed_this_round += before.saturating_sub(queue.pending());
        }
        processed += consumed_this_round;
        if consumed_this_round > 0 {
            stalled_rounds = 0;
        } else {
            stalled_rounds += 1;
            assert!(
                stalled_rounds < 1_000,
                "leader tier stalled at {processed}/{} writes",
                config.writes
            );
        }
    }
    assert_eq!(processed, config.writes, "all writes distributed");

    let virtual_time = contexts
        .iter()
        .map(|ctx| ctx.now())
        .max()
        .unwrap_or_default();
    DistRunResult {
        writes: processed,
        throughput_per_s: processed as f64 / virtual_time.as_secs_f64().max(1e-12),
        virtual_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_run_is_deterministic() {
        let config = DistRunConfig {
            writes: 12,
            nodes: 6,
            ..DistRunConfig::standard(DistributorConfig::new(2, 4))
        };
        let a = run_distribution(&config);
        let b = run_distribution(&config);
        assert_eq!(a.virtual_time, b.virtual_time, "seeded runs reproduce");
        assert_eq!(a.writes, 12);
    }

    #[test]
    fn multi_leader_run_is_deterministic() {
        let config = MultiRunConfig {
            writes: 16,
            nodes: 8,
            ..MultiRunConfig::standard()
        };
        let a = run_multi_leader(2, &config);
        let b = run_multi_leader(2, &config);
        assert_eq!(a.virtual_time, b.virtual_time, "seeded runs reproduce");
        assert_eq!(a.writes, 16);
    }
}
