//! # fk-bench — the FaaSKeeper reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! `src/bin/`), plus criterion microbenchmarks (`benches/`). Shared
//! machinery:
//!
//! * [`stats`] — percentile summaries and table rendering;
//! * [`pipeline`] — the direct-drive write pipeline that measures the
//!   follower/leader path under the calibrated latency model;
//! * [`distributor_bench`] — sequential vs. sharded+batched distribution
//!   comparison behind the `distributor_path` bench;
//! * [`read_bench`] — uncached vs. cached client read path comparison
//!   behind the `read_path` bench and its round-trip gate;
//! * [`replica_bench`] — per-session caches alone vs. the shared
//!   regional read-replica tier behind the `replica_gate`;
//! * [`write_amp`] — system-store write requests per epoch and encoded
//!   node bytes behind the `write_amplification` bench and gate;
//! * [`chaos_soak`] — the 64-session zipf write mix under seeded fault
//!   schedules versus its fault-free twin, behind the `chaos_gate`;
//! * [`store_bench`] — LSM-engine vs in-memory store throughput and the
//!   node-control-item packing comparison behind the `store_gate`.

#![warn(missing_docs)]

pub mod chaos_soak;
pub mod distributor_bench;
pub mod pipeline;
pub mod pipelined_bench;
pub mod read_bench;
pub mod replica_bench;
pub mod stats;
pub mod store_bench;
pub mod write_amp;

pub use distributor_bench::{compare, run_distribution, DistRunConfig, DistRunResult};
pub use pipeline::{WritePipeline, WriteSample};
pub use read_bench::{compare_reads, run_reads, ReadRunConfig, ReadRunResult};
pub use replica_bench::{
    compare_replica_reads, run_replica_reads, ReplicaRunConfig, ReplicaRunResult,
};
pub use stats::{ms, print_table, size_label, summarize, usd, Summary};
pub use store_bench::{
    compare_item_packing, compare_stores, run_store_bench, PackingComparison, StoreBenchConfig,
    StoreComparison, StoreRunResult,
};
pub use write_amp::{compare_encoded_sizes, run_write_amp, WriteAmpConfig, WriteAmpResult};
