//! Direct-drive write pipeline for latency experiments.
//!
//! Runs one `set_data`/`create` request synchronously through the real
//! function bodies — client encode → session queue → follower (Alg. 1) →
//! leader queue → leader (Alg. 2, inline watch dispatch) — on a single
//! virtual-time context, so the end-to-end latency and the per-phase
//! breakdown (Figures 9–12, Table 3) emerge from the actual code path
//! under the calibrated latency model.

use fk_cloud::ops::Op;
use fk_cloud::trace::Ctx;
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::follower::{Follower, LEADER_GROUP};
use fk_core::leader::Leader;
use fk_core::messages::{ClientRequest, Payload, WriteOp};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Result of one measured write.
#[derive(Debug, Clone, Default)]
pub struct WriteSample {
    /// Client-observed end-to-end latency (request submit → success
    /// notification), ms.
    pub e2e_ms: f64,
    /// Total time inside the follower function, ms.
    pub follower_ms: f64,
    /// Total time inside the leader function, ms.
    pub leader_ms: f64,
    /// Charged time per phase label, ms.
    pub phases: BTreeMap<String, f64>,
}

/// A reusable direct-drive pipeline.
pub struct WritePipeline {
    deployment: Deployment,
    follower: Follower,
    leader: Leader,
    session: String,
    next_request: u64,
    stage_threshold: usize,
}

impl WritePipeline {
    /// Builds the pipeline on a direct (trigger-less) deployment.
    pub fn new(config: DeploymentConfig) -> Self {
        let deployment = Deployment::direct(config);
        let follower = deployment.make_follower();
        let leader = deployment.make_leader_inline();
        let session = "bench-session".to_owned();
        let ctx = Ctx::disabled();
        deployment
            .system()
            .register_session(&ctx, &session, 0)
            .expect("register bench session");
        // A bus endpoint so notifications have somewhere to go.
        let (rx, _alive) = deployment.bus().register(&session);
        std::mem::forget(rx); // keep the endpoint alive for the run
        WritePipeline {
            deployment,
            follower,
            leader,
            session,
            next_request: 1,
            stage_threshold: 192 * 1024,
        }
    }

    /// The underlying deployment (meter access etc.).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Creates a node without measuring (setup).
    pub fn seed_node(&mut self, path: &str, size: usize) {
        let data = vec![0x5A; size];
        let ctx = Ctx::disabled();
        self.drive(&ctx, path, &data, true);
    }

    fn fresh_ctx(&self, seed: u64) -> Ctx {
        let mode = self.deployment.config().mode;
        let ctx = Ctx::new(Arc::clone(self.deployment.model()), mode, seed);
        ctx.set_region(self.deployment.config().regions[0]);
        ctx
    }

    /// Drives one request through client → follower → leader on `ctx`.
    /// Returns `(t_client, t_follower_start, t_follower_end, t_leader_end)`
    /// in virtual time.
    fn drive(
        &mut self,
        ctx: &Ctx,
        path: &str,
        data: &[u8],
        create: bool,
    ) -> (Duration, Duration, Duration, Duration) {
        let request_id = self.next_request;
        self.next_request += 1;

        // --- client side: payload framing (+ optional staging, §4.4).
        ctx.push_phase("client");
        ctx.charge(Op::ClientWork, data.len());
        let payload = if data.len() > self.stage_threshold {
            let key = format!("staging/{}/{request_id}", self.session);
            self.deployment
                .staging()
                .put(ctx, &key, bytes::Bytes::from(data.to_vec()))
                .expect("staging put");
            Payload::Staged {
                key,
                len: data.len(),
            }
        } else {
            Payload::inline(data)
        };
        let op = if create {
            WriteOp::Create {
                path: path.to_owned(),
                payload,
                mode: fk_core::api::CreateMode::Persistent,
            }
        } else {
            WriteOp::SetData {
                path: path.to_owned(),
                payload,
                expected_version: -1,
            }
        };
        let request = ClientRequest {
            session_id: self.session.clone(),
            request_id,
            op,
        };
        self.deployment
            .write_queue()
            .send(ctx, &self.session, request.encode())
            .expect("send to write queue");
        ctx.pop_phase();
        let t_client = ctx.now();

        // --- follower invocation (warm).
        let batch = self
            .deployment
            .write_queue()
            .receive(10, Duration::from_secs(30))
            .expect("follower batch");
        let bytes: usize = batch.messages.iter().map(|m| m.body.len()).sum();
        ctx.charge(
            Op::QueueDispatch(self.deployment.config().queue_kind()),
            bytes,
        );
        ctx.charge(Op::FnWarmOverhead, 0);
        let t_follower_start = ctx.now();
        let follower_env = self.deployment.config().follower_fn.env();
        ctx.with_env(follower_env, || {
            self.follower
                .process_messages(ctx, &batch.messages)
                .expect("follower processes");
        });
        self.deployment.write_queue().ack(batch.receipt);
        let t_follower_end = ctx.now();
        self.deployment.meter().fn_invocation(
            self.deployment.config().follower_fn.memory_mb,
            t_follower_end.saturating_sub(t_follower_start),
        );

        // --- leader invocation (warm).
        let lbatch = self
            .deployment
            .leader_queue()
            .receive(10, Duration::from_secs(30))
            .expect("leader batch");
        debug_assert_eq!(&*lbatch.messages[0].group, LEADER_GROUP);
        let lbytes: usize = lbatch.messages.iter().map(|m| m.body.len()).sum();
        ctx.charge(
            Op::QueueDispatch(self.deployment.config().queue_kind()),
            lbytes,
        );
        ctx.charge(Op::FnWarmOverhead, 0);
        let leader_env = self.deployment.config().leader_fn.env();
        let t_leader_start = ctx.now();
        ctx.with_env(leader_env, || {
            self.leader
                .process_messages(ctx, &lbatch.messages)
                .expect("leader processes");
        });
        self.deployment.leader_queue().ack(lbatch.receipt);
        let t_leader_end = ctx.now();
        self.deployment.meter().fn_invocation(
            self.deployment.config().leader_fn.memory_mb,
            t_leader_end.saturating_sub(t_leader_start),
        );

        (t_client, t_follower_start, t_follower_end, t_leader_end)
    }

    /// Runs one measured `set_data` write; the node must exist.
    pub fn run_write(&mut self, seed: u64, path: &str, data: &[u8]) -> WriteSample {
        let ctx = self.fresh_ctx(seed);
        let (_, t_fs, t_fe, t_le) = self.drive(&ctx, path, data, false);

        let spans = ctx.take_spans();
        let mut phases: BTreeMap<String, f64> = BTreeMap::new();
        let mut notify_end = None;
        for span in &spans {
            let label = span.phase.split('/').next().unwrap_or("other").to_owned();
            *phases.entry(label).or_insert(0.0) += span.duration.as_secs_f64() * 1e3;
            if span.phase.starts_with("notify_client") {
                notify_end = Some(span.start + span.duration);
            }
        }
        WriteSample {
            // The client learns the outcome at the success notification;
            // remaining leader work (pop, watch waits) runs on.
            e2e_ms: notify_end.unwrap_or(t_le).as_secs_f64() * 1e3,
            follower_ms: (t_fe - t_fs).as_secs_f64() * 1e3,
            leader_ms: (t_le - t_fe).as_secs_f64() * 1e3,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fk_cloud::trace::LatencyMode;

    #[test]
    fn pipeline_produces_plausible_breakdown() {
        let config = DeploymentConfig::aws().with_mode(LatencyMode::Virtual, 42);
        let mut pipe = WritePipeline::new(config);
        pipe.seed_node("/bench", 1024);
        let sample = pipe.run_write(7, "/bench", &[0u8; 1024]);
        // Calibration sanity: e2e in the paper's ballpark (~60–150 ms for
        // 1 kB at 2048 MB), follower ≈ 25–60 ms, leader ≈ 40–120 ms.
        assert!(
            sample.e2e_ms > 40.0 && sample.e2e_ms < 250.0,
            "e2e {}",
            sample.e2e_ms
        );
        assert!(sample.follower_ms > 10.0, "follower {}", sample.follower_ms);
        assert!(sample.leader_ms > 20.0, "leader {}", sample.leader_ms);
        assert!(sample.phases.contains_key("lock_node"));
        assert!(sample.phases.contains_key("push_to_leader"));
        assert!(sample.phases.contains_key("commit"));
        assert!(sample.phases.contains_key("update_user_storage"));
    }

    #[test]
    fn disabled_mode_still_functions() {
        let mut pipe = WritePipeline::new(DeploymentConfig::aws());
        pipe.seed_node("/n", 16);
        let sample = pipe.run_write(1, "/n", b"new-data");
        assert_eq!(sample.e2e_ms, 0.0);
        // The write actually happened.
        let ctx = Ctx::disabled();
        let rec = pipe
            .deployment()
            .user_store()
            .read_node(&ctx, "/n")
            .unwrap()
            .unwrap();
        assert_eq!(rec.data.as_ref(), b"new-data");
        assert_eq!(rec.version, 1);
    }

    #[test]
    fn large_payloads_take_staging_path() {
        let config = DeploymentConfig::aws().with_mode(LatencyMode::Virtual, 3);
        let mut pipe = WritePipeline::new(config);
        pipe.seed_node("/big", 16);
        let data = vec![1u8; 250 * 1024];
        let sample = pipe.run_write(5, "/big", &data);
        assert!(sample.e2e_ms > 50.0);
        // Staged object cleaned up by the leader.
        let ctx = Ctx::disabled();
        assert!(pipe
            .deployment()
            .staging()
            .list(&ctx, "staging/")
            .is_empty());
    }
}
