//! Pipelined-depth harness: per-session write throughput as a function
//! of the client's pipeline depth.
//!
//! The paper's Z1 guarantee is defined over a pipeline of in-flight
//! requests per session, but a blocking client (depth 1) serializes the
//! whole distributed pipeline behind every single round trip: the
//! follower idles while the client waits for the leader's notification,
//! the leader idles while the follower validates the next request. The
//! handle-based client keeps `depth` writes in flight, which lets the
//! three stages — client submission, follower (lock → push → commit),
//! leader (verify → distribute → notify) — run **concurrently on their
//! own clocks** and lets each stage batch: the follower processes
//! conflict-free waves with fanned-out storage I/O, the leader drains
//! epoch batches, and per-batch overheads (queue dispatch, warm starts,
//! epoch-mark reads, chunked pops) amortize across the window.
//!
//! The harness drives one session's writes through the real function
//! bodies on **three virtual-time contexts** (client / follower /
//! leader), propagating causality exactly the way the runtime does:
//! a queue message carries its sender's timestamp and the consumer
//! merges it (`Ctx::merge_time_ns`, the same rule
//! `FaasRuntime::trigger_loop` applies), and the client merges a write's
//! completion timestamp before it may submit the write `depth` positions
//! later. Depth 1 therefore reproduces the blocking client exactly —
//! every stage clock chains through every round trip — while larger
//! depths overlap the stages and let the batch machinery engage. The
//! measured quantity is wall-clock-equivalent virtual time from first
//! submission to last completion.

use fk_cloud::ops::Op;
use fk_cloud::trace::{Ctx, LatencyMode};
use fk_core::deploy::{Deployment, DeploymentConfig, Provider};
use fk_core::distributor::DistributorConfig;
use fk_core::messages::{ClientRequest, Payload, WriteOp};
use fk_core::{CreateMode, UserStoreKind};
use fk_workloads::SeededZipf;
use std::sync::Arc;
use std::time::Duration;

/// One pipelined-depth measurement configuration.
#[derive(Debug, Clone)]
pub struct PipelinedRunConfig {
    /// Writes kept in flight by the session (1 = the blocking client).
    pub depth: usize,
    /// Total measured `set_data` transactions.
    pub writes: usize,
    /// Distinct target nodes, selected by a zipf rank stream (the
    /// interleaved zipf mix: hot nodes repeat — conflicting, same-wave —
    /// while the tail spreads across paths).
    pub nodes: u64,
    /// Payload size per write.
    pub node_size: usize,
    /// Intra-leader pipeline (shards × epoch batch).
    pub pipeline: DistributorConfig,
    /// Provider profile.
    pub provider: Provider,
    /// Seed for the zipf stream and latency sampling.
    pub seed: u64,
}

impl PipelinedRunConfig {
    /// The gate's standard shape: 64 writes over 16 nodes of 256 B at
    /// the given depth.
    pub fn standard(depth: usize) -> Self {
        PipelinedRunConfig {
            depth,
            writes: 64,
            nodes: 16,
            node_size: 256,
            pipeline: DistributorConfig::new(4, 16).with_adaptive_batch(1),
            provider: Provider::Aws,
            seed: 0xDEE9,
        }
    }

    /// The same shape on the GCP profile.
    pub fn gcp(depth: usize) -> Self {
        PipelinedRunConfig {
            provider: Provider::Gcp,
            ..Self::standard(depth)
        }
    }
}

/// Result of one pipelined run.
#[derive(Debug, Clone)]
pub struct PipelinedRunResult {
    /// Writes completed.
    pub writes: usize,
    /// Virtual time from first submission to last completion.
    pub virtual_time: Duration,
    /// Per-session write throughput in transactions per virtual second.
    pub throughput_per_s: f64,
}

/// Runs one session's zipf write mix at the given pipeline depth (see
/// module docs for the three-clock model).
pub fn run_pipelined(config: &PipelinedRunConfig) -> PipelinedRunResult {
    let base = match config.provider {
        Provider::Aws => DeploymentConfig::aws(),
        Provider::Gcp => DeploymentConfig::gcp(),
    };
    let deployment = Deployment::direct(
        base.with_user_store(UserStoreKind::Object)
            .with_mode(LatencyMode::Virtual, config.seed)
            .with_distributor(config.pipeline),
    );
    let follower = deployment.make_follower();
    let leader = deployment.make_leader_inline();

    // Uncharged setup: session, bus endpoint, node population.
    let setup = Ctx::disabled();
    deployment
        .system()
        .register_session(&setup, "pipe", 0)
        .expect("register session");
    let _endpoint = deployment.bus().register("pipe");
    let paths: Vec<String> = (0..config.nodes).map(|i| format!("/pipe/n{i}")).collect();
    {
        let mut rid = 0u64;
        let mut seed_write = |op: WriteOp| {
            rid += 1;
            let request = ClientRequest {
                session_id: "pipe".into(),
                request_id: rid,
                op,
            };
            deployment
                .write_queue()
                .send(&setup, "pipe", request.encode())
                .expect("enqueue");
        };
        seed_write(WriteOp::Create {
            path: "/pipe".into(),
            payload: Payload::inline(b""),
            mode: CreateMode::Persistent,
        });
        for path in &paths {
            seed_write(WriteOp::Create {
                path: path.clone(),
                payload: Payload::inline(&vec![0x11; config.node_size]),
                mode: CreateMode::Persistent,
            });
        }
        while let Some(batch) = deployment
            .write_queue()
            .receive(10, Duration::from_secs(30))
        {
            follower
                .process_messages(&setup, &batch.messages)
                .expect("setup follower");
            deployment.write_queue().ack(batch.receipt);
        }
        while leader
            .drain_queue(&setup, deployment.leader_queue())
            .expect("setup leader")
            > 0
        {}
    }

    // The three stage clocks.
    let make_ctx = |salt: u64| {
        let ctx = Ctx::new(
            Arc::clone(deployment.model()),
            deployment.config().mode,
            config.seed ^ salt,
        );
        ctx.set_region(deployment.config().regions[0]);
        ctx
    };
    let ctx_client = make_ctx(0);
    let ctx_follower = make_ctx(0x0F);
    ctx_follower.set_env(deployment.config().follower_fn.env());
    let ctx_leader = make_ctx(0x1E);
    ctx_leader.set_env(deployment.config().leader_fn.env());

    let mut zipf = SeededZipf::new(config.nodes, config.seed ^ 0x21F);
    let payload = vec![0xAB; config.node_size];
    let mut submitted = 0usize;
    // Completion virtual timestamps, in submission order (one session →
    // the leader queue is FIFO → batch order is submission order).
    let mut completions: Vec<u64> = Vec::new();
    let mut request_id = 100u64;

    while completions.len() < config.writes {
        // Client: submit while fewer than `depth` writes are in flight.
        // Submitting write i requires write i-depth's completion to have
        // been observed (the client merges its timestamp — the blocking
        // wait at depth 1, the pipeline window otherwise).
        while submitted < config.writes && submitted - completions.len() < config.depth {
            if submitted >= config.depth {
                ctx_client.merge_time_ns(completions[submitted - config.depth]);
            }
            let path = paths[zipf.next_key() as usize].clone();
            request_id += 1;
            let request = ClientRequest {
                session_id: "pipe".into(),
                request_id,
                op: WriteOp::SetData {
                    path,
                    payload: Payload::inline(&payload),
                    expected_version: -1,
                },
            };
            ctx_client.charge(Op::ClientWork, config.node_size);
            deployment
                .write_queue()
                .send(&ctx_client, "pipe", request.encode())
                .expect("submit");
            submitted += 1;
        }

        // Follower: one trigger firing — receive the accumulated batch
        // (adaptive window, up to the FIFO provider cap), merge the
        // senders' clocks, process in waves.
        if let Some(batch) = deployment
            .write_queue()
            .receive_up_to(10, Duration::from_secs(30))
        {
            let max_vt = batch
                .messages
                .iter()
                .map(|m| m.sent_vt_ns)
                .max()
                .unwrap_or(0);
            ctx_follower.merge_time_ns(max_vt);
            let bytes: usize = batch.messages.iter().map(|m| m.body.len()).sum();
            ctx_follower.charge(Op::QueueDispatch(deployment.config().queue_kind()), bytes);
            ctx_follower.charge(Op::FnWarmOverhead, 0);
            follower
                .process_messages(&ctx_follower, &batch.messages)
                .expect("follower processes");
            deployment.write_queue().ack(batch.receipt);
        }

        // Leader: drain whatever epochs are ready, merging push clocks.
        while let Some(batch) = deployment
            .leader_queue()
            .receive_up_to(config.pipeline.max_batch, Duration::from_secs(30))
        {
            let max_vt = batch
                .messages
                .iter()
                .map(|m| m.sent_vt_ns)
                .max()
                .unwrap_or(0);
            ctx_leader.merge_time_ns(max_vt);
            let bytes: usize = batch.messages.iter().map(|m| m.body.len()).sum();
            ctx_leader.charge(Op::QueueDispatch(deployment.config().queue_kind()), bytes);
            ctx_leader.charge(Op::FnWarmOverhead, 0);
            leader
                .process_messages(&ctx_leader, &batch.messages)
                .expect("leader processes");
            deployment.leader_queue().ack(batch.receipt);
            // The success notifications went out at the end of the
            // epoch batch; the client observes them at this timestamp.
            for _ in 0..batch.messages.len() {
                completions.push(ctx_leader.now_ns());
            }
        }
    }

    let virtual_time = Duration::from_nanos(*completions.last().expect("writes completed"));
    PipelinedRunResult {
        writes: completions.len(),
        throughput_per_s: completions.len() as f64 / virtual_time.as_secs_f64().max(1e-12),
        virtual_time,
    }
}

/// Runs the blocking baseline (depth 1) and the pipelined client at
/// `depth` on the same seeded mix; returns `(depth1, pipelined,
/// speedup)`.
pub fn compare_depths(
    depth: usize,
    base: &PipelinedRunConfig,
) -> (PipelinedRunResult, PipelinedRunResult, f64) {
    let blocking = run_pipelined(&PipelinedRunConfig {
        depth: 1,
        ..base.clone()
    });
    let pipelined = run_pipelined(&PipelinedRunConfig {
        depth,
        ..base.clone()
    });
    let speedup = pipelined.throughput_per_s / blocking.throughput_per_s;
    (blocking, pipelined, speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_run_is_deterministic_and_complete() {
        let config = PipelinedRunConfig {
            writes: 24,
            nodes: 8,
            ..PipelinedRunConfig::standard(8)
        };
        let a = run_pipelined(&config);
        let b = run_pipelined(&config);
        assert_eq!(a.writes, 24);
        assert_eq!(a.virtual_time, b.virtual_time, "seeded runs reproduce");
    }

    #[test]
    fn depth_one_is_strictly_slower_than_depth_eight() {
        let base = PipelinedRunConfig {
            writes: 24,
            nodes: 8,
            ..PipelinedRunConfig::standard(8)
        };
        let (blocking, pipelined, speedup) = compare_depths(8, &base);
        assert_eq!(blocking.writes, pipelined.writes);
        assert!(speedup > 1.0, "pipelining must help (got {speedup:.2}x)");
    }
}
