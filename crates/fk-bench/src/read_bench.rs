//! Direct-drive harness for the client read path: uncached (every read
//! pays a storage round trip, the paper's §5.3.1 baseline) versus the
//! watermark-validated client read cache, on a zipf-skewed read-heavy
//! workload under the calibrated virtual-time latency model.
//!
//! The interesting numbers are **storage round trips** (billable
//! requests the user store actually served — the cost side) and the
//! client's **virtual time** over the read loop (the latency side).
//! A cache hit contributes zero round trips and only the client-work
//! bookkeeping charge, so both collapse together as the hit ratio rises.

use fk_cloud::trace::LatencyMode;
use fk_core::deploy::{Deployment, DeploymentConfig, Provider};
use fk_core::read_cache::ReadCacheConfig;
use fk_core::{CreateMode, UserStoreKind};
use fk_workloads::SeededZipf;
use std::time::Duration;

/// One read-path measurement configuration.
#[derive(Debug, Clone)]
pub struct ReadRunConfig {
    /// Read-cache bounds for the measuring client (disabled = baseline).
    pub cache: ReadCacheConfig,
    /// Number of measured `get_data` reads.
    pub reads: usize,
    /// Number of distinct target nodes (zipf-skewed selection).
    pub nodes: u64,
    /// Zipf skew of the key choice (YCSB default 0.99).
    pub theta: f64,
    /// Payload size per node.
    pub node_size: usize,
    /// User-store backend.
    pub store: UserStoreKind,
    /// Provider profile whose calibrated latency model drives the run.
    pub provider: Provider,
    /// Seed for both the workload stream and latency sampling.
    pub seed: u64,
}

impl ReadRunConfig {
    /// The default measurement shape: 400 zipf reads over 24 nodes of
    /// 1 kB on the object-store backend (the paper's standard read
    /// configuration).
    pub fn standard(cache: ReadCacheConfig) -> Self {
        ReadRunConfig {
            cache,
            reads: 400,
            nodes: 24,
            theta: 0.99,
            node_size: 1024,
            store: UserStoreKind::Object,
            provider: Provider::Aws,
            seed: 0x5EED,
        }
    }
}

/// Result of one read run.
#[derive(Debug, Clone)]
pub struct ReadRunResult {
    /// Reads performed.
    pub reads: usize,
    /// Billable storage requests the user store served for them.
    pub storage_round_trips: u64,
    /// Virtual time the client spent in the read loop.
    pub virtual_time: Duration,
    /// Cache hit ratio over the measured reads (0.0 when disabled).
    pub hit_ratio: f64,
}

/// Runs `config.reads` zipf-skewed `get_data` calls through a live
/// deployment and measures storage round trips and client virtual time
/// over the read loop only (setup writes are excluded by snapshotting).
pub fn run_reads(config: &ReadRunConfig) -> ReadRunResult {
    let base = match config.provider {
        Provider::Aws => DeploymentConfig::aws(),
        Provider::Gcp => DeploymentConfig::gcp(),
    };
    let deployment = Deployment::start(
        base.with_user_store(config.store)
            .with_mode(LatencyMode::Virtual, config.seed)
            .with_read_cache(config.cache),
    );
    let client = deployment.connect("read-bench").expect("connect");
    let paths: Vec<String> = (0..config.nodes).map(|i| format!("/rb-n{i}")).collect();
    for path in &paths {
        client
            .create(path, &vec![0x5A; config.node_size], CreateMode::Persistent)
            .expect("create node");
    }

    let mut zipf = SeededZipf::with_theta(config.nodes, config.theta, config.seed);
    let meter_before = deployment.meter().snapshot();
    let time_before = client.elapsed();
    for _ in 0..config.reads {
        let path = &paths[zipf.next_key() as usize];
        client.get_data(path, false).expect("read node");
    }
    let virtual_time = client.elapsed() - time_before;
    let usage = deployment.meter().snapshot().since(&meter_before);
    // Every user-store backend serves a read with KV gets, object gets,
    // or cache ops; sum what actually happened during the loop.
    let storage_round_trips =
        usage.obj_gets + usage.mem_ops + usage.per_op.get("kv_read").copied().unwrap_or(0);
    let stats = client.cache_stats();
    let result = ReadRunResult {
        reads: config.reads,
        storage_round_trips,
        virtual_time,
        hit_ratio: stats.hit_ratio(),
    };
    drop(client);
    deployment.shutdown();
    result
}

/// Runs the uncached baseline and the cached client on the same seeded
/// workload; returns `(uncached, cached, round-trip factor, speedup)` —
/// factor = baseline round trips / cached round trips, speedup =
/// baseline virtual time / cached virtual time.
pub fn compare_reads(base: &ReadRunConfig) -> (ReadRunResult, ReadRunResult, f64, f64) {
    let uncached = run_reads(&ReadRunConfig {
        cache: ReadCacheConfig::disabled(),
        ..base.clone()
    });
    let cached = run_reads(base);
    let trips = uncached.storage_round_trips as f64 / cached.storage_round_trips.max(1) as f64;
    let speedup =
        uncached.virtual_time.as_secs_f64() / cached.virtual_time.as_secs_f64().max(1e-12);
    (uncached, cached, trips, speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_run_is_deterministic() {
        let config = ReadRunConfig {
            reads: 40,
            nodes: 8,
            ..ReadRunConfig::standard(ReadCacheConfig::with_capacity(16))
        };
        let a = run_reads(&config);
        let b = run_reads(&config);
        assert_eq!(a.virtual_time, b.virtual_time, "seeded runs reproduce");
        assert_eq!(a.storage_round_trips, b.storage_round_trips);
        assert_eq!(a.reads, 40);
    }

    #[test]
    fn uncached_baseline_pays_one_round_trip_per_read() {
        let config = ReadRunConfig {
            reads: 30,
            nodes: 6,
            ..ReadRunConfig::standard(ReadCacheConfig::disabled())
        };
        let result = run_reads(&config);
        assert_eq!(result.storage_round_trips, 30);
        assert_eq!(result.hit_ratio, 0.0);
    }
}
