//! Direct-drive harness for the shared regional read-replica tier:
//! many sessions with private read caches alone (every session pays its
//! own cold misses, O(sessions × paths) storage round trips) versus the
//! same sessions reading through the epoch-fed replica (the tier absorbs
//! the cold misses once per unique path, O(unique paths)).
//!
//! The interesting numbers are **storage round trips** (billable
//! requests the user store actually served — replica hits are metered
//! but never billed, like cache hits) and the fleet's summed **virtual
//! time** over the read loops. The replica serves from memory at the
//! in-memory-store latency class, so both collapse together as the
//! replica absorbs the fleet's cold misses.

use fk_cloud::trace::LatencyMode;
use fk_core::deploy::{Deployment, DeploymentConfig, Provider};
use fk_core::read_cache::ReadCacheConfig;
use fk_core::replica::ReplicaConfig;
use fk_core::{ClientConfig, CreateMode, UserStoreKind};
use fk_workloads::SeededZipf;
use std::time::Duration;

/// One replica-tier measurement configuration.
#[derive(Debug, Clone)]
pub struct ReplicaRunConfig {
    /// Replica-tier geometry (disabled = per-session caches alone).
    pub replicas: ReplicaConfig,
    /// Private read-cache bounds for every session.
    pub cache: ReadCacheConfig,
    /// Number of concurrently connected reader sessions.
    pub sessions: usize,
    /// Measured `get_data` reads per session.
    pub reads_per_session: usize,
    /// Number of distinct target nodes (zipf-skewed selection).
    pub nodes: u64,
    /// Zipf skew of the key choice (YCSB default 0.99).
    pub theta: f64,
    /// Payload size per node.
    pub node_size: usize,
    /// User-store backend.
    pub store: UserStoreKind,
    /// Provider profile whose calibrated latency model drives the run.
    pub provider: Provider,
    /// Seed for the workload streams and latency sampling.
    pub seed: u64,
}

impl ReplicaRunConfig {
    /// The default measurement shape: 64 sessions, 25 zipf reads each
    /// over 24 nodes of 1 kB on the object-store backend, every session
    /// with a private 64-entry cache.
    pub fn standard(replicas: ReplicaConfig) -> Self {
        ReplicaRunConfig {
            replicas,
            cache: ReadCacheConfig::with_capacity(64),
            sessions: 64,
            reads_per_session: 25,
            nodes: 24,
            theta: 0.99,
            node_size: 1024,
            store: UserStoreKind::Object,
            provider: Provider::Aws,
            seed: 0x5EED,
        }
    }
}

/// Result of one replica-tier run.
#[derive(Debug, Clone)]
pub struct ReplicaRunResult {
    /// Total reads performed across all sessions.
    pub reads: usize,
    /// Billable storage requests the user store served for them.
    pub storage_round_trips: u64,
    /// Replica hits over the measured reads (metered, never billed).
    pub replica_hits: u64,
    /// Virtual time summed over every session's read loop.
    pub virtual_time: Duration,
}

/// Runs `sessions × reads_per_session` zipf-skewed `get_data` calls
/// through a live deployment — one independently seeded zipf stream per
/// session, reads interleaved round-robin across the fleet — and
/// measures storage round trips, replica hits and summed client virtual
/// time over the read loops only (setup writes are excluded by
/// snapshotting).
pub fn run_replica_reads(config: &ReplicaRunConfig) -> ReplicaRunResult {
    let base = match config.provider {
        Provider::Aws => DeploymentConfig::aws(),
        Provider::Gcp => DeploymentConfig::gcp(),
    };
    let deployment = Deployment::start(
        base.with_user_store(config.store)
            .with_mode(LatencyMode::Virtual, config.seed)
            .with_read_cache(config.cache)
            .with_replicas(config.replicas),
    );

    // Seed the tree through an ordinary session: the leader's epoch
    // stream populates the replicas as a side effect of distribution,
    // exactly as it would in production.
    let seeder = deployment.connect("replica-bench-seeder").expect("connect");
    let paths: Vec<String> = (0..config.nodes).map(|i| format!("/rp-n{i}")).collect();
    for path in &paths {
        seeder
            .create(path, &vec![0x5A; config.node_size], CreateMode::Persistent)
            .expect("create node");
    }

    let clients: Vec<_> = (0..config.sessions)
        .map(|i| {
            deployment
                .connect_with(ClientConfig::new(format!("replica-bench-{i}")).with_read_workers(1))
                .expect("connect session")
        })
        .collect();
    let mut streams: Vec<SeededZipf> = (0..config.sessions)
        .map(|i| SeededZipf::with_theta(config.nodes, config.theta, config.seed ^ (i as u64 + 1)))
        .collect();

    let meter_before = deployment.meter().snapshot();
    let time_before: Vec<Duration> = clients.iter().map(|c| c.elapsed()).collect();
    for _ in 0..config.reads_per_session {
        for (client, zipf) in clients.iter().zip(streams.iter_mut()) {
            let path = &paths[zipf.next_key() as usize];
            client.get_data(path, false).expect("read node");
        }
    }
    let virtual_time = clients
        .iter()
        .zip(&time_before)
        .map(|(c, before)| c.elapsed() - *before)
        .sum();
    let usage = deployment.meter().snapshot().since(&meter_before);
    let storage_round_trips =
        usage.obj_gets + usage.mem_ops + usage.per_op.get("kv_read").copied().unwrap_or(0);
    let result = ReplicaRunResult {
        reads: config.sessions * config.reads_per_session,
        storage_round_trips,
        replica_hits: usage.replica_hits,
        virtual_time,
    };
    drop(clients);
    drop(seeder);
    deployment.shutdown();
    result
}

/// Runs the caches-alone baseline and the replica-tier fleet on the same
/// seeded workloads; returns `(baseline, replicated, round-trip factor,
/// speedup)` — factor = baseline round trips / replicated round trips,
/// speedup = baseline summed virtual time / replicated summed virtual
/// time.
pub fn compare_replica_reads(
    base: &ReplicaRunConfig,
) -> (ReplicaRunResult, ReplicaRunResult, f64, f64) {
    let caches_only = run_replica_reads(&ReplicaRunConfig {
        replicas: ReplicaConfig::disabled(),
        ..base.clone()
    });
    let replicated = run_replica_reads(base);
    let trips =
        caches_only.storage_round_trips as f64 / replicated.storage_round_trips.max(1) as f64;
    let speedup =
        caches_only.virtual_time.as_secs_f64() / replicated.virtual_time.as_secs_f64().max(1e-12);
    (caches_only, replicated, trips, speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(replicas: ReplicaConfig) -> ReplicaRunConfig {
        ReplicaRunConfig {
            sessions: 8,
            reads_per_session: 6,
            nodes: 8,
            ..ReplicaRunConfig::standard(replicas)
        }
    }

    #[test]
    fn replica_run_is_deterministic() {
        let config = small(ReplicaConfig::with_count(1));
        let a = run_replica_reads(&config);
        let b = run_replica_reads(&config);
        assert_eq!(a.virtual_time, b.virtual_time, "seeded runs reproduce");
        assert_eq!(a.storage_round_trips, b.storage_round_trips);
        assert_eq!(a.replica_hits, b.replica_hits);
        assert_eq!(a.reads, 48);
    }

    #[test]
    fn disabled_tier_records_no_replica_hits() {
        let result = run_replica_reads(&small(ReplicaConfig::disabled()));
        assert_eq!(result.replica_hits, 0);
        assert!(result.storage_round_trips > 0, "cold misses hit storage");
    }

    #[test]
    fn lagging_replica_falls_through_to_storage() {
        // A feed lag longer than the whole run keeps every delta
        // buffered: the replica never has anything servable resident,
        // so the fleet reads exactly like the caches-alone baseline.
        let lagged = run_replica_reads(&small(ReplicaConfig::with_count(1).with_feed_lag(10_000)));
        let baseline = run_replica_reads(&small(ReplicaConfig::disabled()));
        assert_eq!(lagged.replica_hits, 0, "nothing applied, nothing served");
        assert_eq!(lagged.storage_round_trips, baseline.storage_round_trips);
    }
}
