//! Percentile statistics and table formatting for the harness binaries.

/// Summary statistics of a latency sample set, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes summary statistics over samples (ms).
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let pct = |p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    Summary {
        min: sorted[0],
        p50: pct(0.50),
        p90: pct(0.90),
        p95: pct(0.95),
        p99: pct(0.99),
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        n: sorted.len(),
    }
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!(" {:>width$} |", cell, width = widths[i]));
        }
        out
    };
    println!(
        "{}",
        line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats milliseconds with two decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a dollar amount with automatic precision.
pub fn usd(v: f64) -> String {
    if v >= 100.0 {
        format!("${v:.0}")
    } else if v >= 1.0 {
        format!("${v:.2}")
    } else {
        format!("${v:.4}")
    }
}

/// Human-readable byte size (e.g. "4 B", "64 kB").
pub fn size_label(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes.is_multiple_of(1024) {
        format!("{} kB", bytes / 1024)
    } else {
        format!("{:.1} kB", bytes as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&samples);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.n, 100);
    }

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(summarize(&[]), Summary::default());
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(4), "4 B");
        assert_eq!(size_label(65536), "64 kB");
        assert_eq!(size_label(1536), "1.5 kB");
    }

    #[test]
    fn usd_formats() {
        assert_eq!(usd(0.04), "$0.0400");
        assert_eq!(usd(1.12), "$1.12");
        assert_eq!(usd(719.0), "$719");
    }
}
