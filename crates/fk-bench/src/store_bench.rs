//! Storage-engine harness behind the `store_gate`: sustained write/read
//! throughput of the embedded LSM engine ([`DurableUserStore`]) against
//! the in-memory baseline ([`MemUserStore`]), plus the binary item
//! packing measurement for system-store node control items.
//!
//! Both stores run the identical seeded workload over the same simulated
//! device class (the LSM sits on [`fk_store::SimStorage`], so the
//! comparison isolates *engine* cost — WAL framing, CRC, memtable,
//! flush, compaction, SST reads — from physical disk latency). The gate
//! pins the durable engine within a small constant factor of the
//! baseline rather than at an absolute ops/s, so it holds on slow CI
//! hardware.

use fk_cloud::metering::Meter;
use fk_cloud::trace::Ctx;
use fk_cloud::value::{Item, Value};
use fk_cloud::{MemStore, Region};
use fk_core::durable::DurableUserStore;
use fk_core::user_store::{MemUserStore, NodeRecord, UserStore};
use fk_store::{varint, FsyncPolicy, LsmConfig, SimStorage};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One store-throughput measurement configuration.
#[derive(Debug, Clone)]
pub struct StoreBenchConfig {
    /// Distinct node paths in the working set.
    pub paths: usize,
    /// Single-record writes issued (round-robin over the paths).
    pub writes: usize,
    /// Shard-batch writes issued after the singles.
    pub batches: usize,
    /// Records per shard batch.
    pub batch_size: usize,
    /// Point reads issued over the written paths.
    pub reads: usize,
    /// Payload bytes per record.
    pub value_bytes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl StoreBenchConfig {
    /// The gate's standard shape: a 512-path working set, 4096 single
    /// writes + 512 × 8 batched writes (so every path is overwritten
    /// several times and the engine must flush and compact), then 8192
    /// point reads.
    pub fn standard() -> Self {
        StoreBenchConfig {
            paths: 512,
            writes: 4096,
            batches: 512,
            batch_size: 8,
            reads: 8192,
            value_bytes: 256,
            seed: 0x0005_704E,
        }
    }
}

/// Throughput of one store under the seeded workload.
#[derive(Debug, Clone)]
pub struct StoreRunResult {
    /// Records written (singles + batched).
    pub records_written: usize,
    /// Point reads served.
    pub reads: usize,
    /// Wall time of the write phase.
    pub write_elapsed: Duration,
    /// Wall time of the read phase.
    pub read_elapsed: Duration,
}

impl StoreRunResult {
    /// Records written per second.
    pub fn write_ops_per_sec(&self) -> f64 {
        self.records_written as f64 / self.write_elapsed.as_secs_f64().max(1e-9)
    }

    /// Point reads per second.
    pub fn read_ops_per_sec(&self) -> f64 {
        self.reads as f64 / self.read_elapsed.as_secs_f64().max(1e-9)
    }
}

fn bench_record(rng: &mut SmallRng, path: String, value_bytes: usize) -> NodeRecord {
    let mut data = vec![0u8; value_bytes];
    rng.fill_bytes(&mut data);
    NodeRecord {
        path,
        data: bytes::Bytes::from(data),
        created_txid: rng.gen_range(1u64..1_000_000),
        modified_txid: rng.gen_range(1u64..1_000_000),
        version: rng.gen_range(0i32..128),
        children: Arc::new(Vec::new()),
        children_txid: 0,
        ephemeral_owner: None,
        epoch_marks: Arc::new(Vec::new()),
    }
}

/// Drives the seeded write + read workload through `store` and times
/// the two phases.
pub fn run_store_bench(store: &dyn UserStore, config: &StoreBenchConfig) -> StoreRunResult {
    let ctx = Ctx::disabled();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let paths: Vec<String> = (0..config.paths)
        .map(|i| format!("/bench/{:03}/{:03}", i % 32, i))
        .collect();

    let write_start = Instant::now();
    for i in 0..config.writes {
        let rec = bench_record(&mut rng, paths[i % paths.len()].clone(), config.value_bytes);
        store.write_node(&ctx, &rec).expect("bench write");
    }
    let mut records_written = config.writes;
    for b in 0..config.batches {
        let recs: Vec<NodeRecord> = (0..config.batch_size)
            .map(|j| {
                let path = paths[(b * config.batch_size + j) % paths.len()].clone();
                bench_record(&mut rng, path, config.value_bytes)
            })
            .collect();
        store.write_batch(&ctx, &recs).expect("bench batch");
        records_written += recs.len();
    }
    let write_elapsed = write_start.elapsed();

    let read_start = Instant::now();
    let mut read_bytes = 0usize;
    for i in 0..config.reads {
        let path = &paths[(i * 7) % paths.len()];
        let rec = store
            .read_node(&ctx, path)
            .expect("bench read")
            .expect("bench path present");
        read_bytes += rec.data.len();
    }
    let read_elapsed = read_start.elapsed();
    assert!(read_bytes > 0, "reads returned payloads");

    StoreRunResult {
        records_written,
        reads: config.reads,
        write_elapsed,
        read_elapsed,
    }
}

/// The baseline/durable pair measured under the same workload.
#[derive(Debug, Clone)]
pub struct StoreComparison {
    /// In-memory baseline.
    pub mem: StoreRunResult,
    /// LSM engine on a simulated device.
    pub durable: StoreRunResult,
}

impl StoreComparison {
    /// `mem write ops/s ÷ durable write ops/s` — the engine's write cost
    /// as a constant factor over the hashmap baseline.
    pub fn write_slowdown(&self) -> f64 {
        self.mem.write_ops_per_sec() / self.durable.write_ops_per_sec().max(1e-9)
    }

    /// `mem read ops/s ÷ durable read ops/s`.
    pub fn read_slowdown(&self) -> f64 {
        self.mem.read_ops_per_sec() / self.durable.read_ops_per_sec().max(1e-9)
    }
}

/// The LSM geometry the gate measures: 4 kiB blocks as in production,
/// but a 64 kiB memtable — the standard workload's 512-path working set
/// holds ~160 kiB of live record frames, so the memtable overflows
/// repeatedly and the measured write path includes flushes, SST builds
/// and L0→L1 compactions, not just memtable inserts. Flush/compaction
/// run synchronously so the run is deterministic; fsync stays
/// [`FsyncPolicy::Always`] (group commit), the deployment default — the
/// gate prices durability honestly.
pub fn gate_lsm_config() -> LsmConfig {
    LsmConfig {
        memtable_bytes: 64 << 10,
        sst_target_bytes: 64 << 10,
        background_compaction: false,
        fsync: FsyncPolicy::Always,
        ..LsmConfig::default()
    }
}

/// Runs the workload against [`MemUserStore`] and [`DurableUserStore`]
/// (fresh [`SimStorage`] device, [`gate_lsm_config`] geometry). Returns
/// the comparison plus the engine's post-run counters so callers can
/// check the workload actually exercised flush/compaction.
pub fn compare_stores(config: &StoreBenchConfig) -> (StoreComparison, fk_store::LsmStats) {
    let region = Region::US_EAST_1;
    let mem = MemUserStore::new(MemStore::new(region, Meter::new()));
    let mem_result = run_store_bench(&mem, config);

    let durable = DurableUserStore::open(
        Arc::new(SimStorage::new()),
        gate_lsm_config(),
        region,
        Meter::new(),
    )
    .expect("fresh simulated device opens");
    let durable_result = run_store_bench(&durable, config);
    let stats = durable.stats();

    (
        StoreComparison {
            mem: mem_result,
            durable: durable_result,
        },
        stats,
    )
}

/// Encoded sizes of the system-store node control item under the
/// per-attribute layout (one named attribute per field, as the system
/// store writes it) versus a packed single-attribute layout (all scalar
/// control fields varint-packed into one binary attribute).
#[derive(Debug, Clone)]
pub struct PackingComparison {
    /// Items measured.
    pub items: usize,
    /// Total encoded bytes, one attribute per control field.
    pub per_attribute_bytes: usize,
    /// Total encoded bytes, one packed binary attribute.
    pub packed_bytes: usize,
}

impl PackingComparison {
    /// `per_attribute_bytes ÷ packed_bytes`.
    pub fn ratio(&self) -> f64 {
        self.per_attribute_bytes as f64 / (self.packed_bytes.max(1)) as f64
    }

    /// Attribute-name + tag overhead per item under the per-attribute
    /// layout, in bytes.
    pub fn overhead_per_item(&self) -> f64 {
        (self.per_attribute_bytes.saturating_sub(self.packed_bytes)) as f64
            / (self.items.max(1)) as f64
    }
}

fn pack_control_fields(
    created: u64,
    version: u64,
    vcount: u64,
    children_txid: u64,
    children: &[String],
) -> Vec<u8> {
    let mut packed = Vec::new();
    varint::write(&mut packed, created);
    varint::write(&mut packed, version);
    varint::write(&mut packed, vcount);
    varint::write(&mut packed, children_txid);
    varint::write(&mut packed, children.len() as u64);
    for child in children {
        varint::write(&mut packed, child.len() as u64);
        packed.extend_from_slice(child.as_bytes());
    }
    packed
}

fn unpack_control_fields(buf: &[u8]) -> Option<(u64, u64, u64, u64, Vec<String>)> {
    let mut pos = 0usize;
    let created = varint::read(buf, &mut pos)?;
    let version = varint::read(buf, &mut pos)?;
    let vcount = varint::read(buf, &mut pos)?;
    let children_txid = varint::read(buf, &mut pos)?;
    let n = varint::read(buf, &mut pos)? as usize;
    let mut children = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let len = varint::read(buf, &mut pos)? as usize;
        let end = pos.checked_add(len)?;
        children.push(String::from_utf8(buf.get(pos..end)?.to_vec()).ok()?);
        pos = end;
    }
    (pos == buf.len()).then_some((created, version, vcount, children_txid, children))
}

/// Encodes `items` seeded node control items through both layouts. Every
/// packed item is also unpacked and checked field-for-field against its
/// per-attribute twin, so the size claim can never outrun correctness.
pub fn compare_item_packing(seed: u64, items: usize) -> PackingComparison {
    use fk_core::system_store::node_attr;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut per_attribute_bytes = 0usize;
    let mut packed_bytes = 0usize;
    for i in 0..items {
        let created = rng.gen_range(1u64..1_000_000);
        let version = created + rng.gen_range(0u64..10_000);
        let vcount = rng.gen_range(0u64..512);
        let children_txid = version + rng.gen_range(0u64..100);
        let children: Vec<String> = (0..rng.gen_range(0usize..6))
            .map(|c| format!("node-{i}-{c}"))
            .collect();

        // The layout the system store writes today: one named attribute
        // per control field (attr names + per-value tags on the wire).
        let per_attr = Item::new()
            .with(node_attr::CREATED, created as i64)
            .with(node_attr::VERSION, version as i64)
            .with(node_attr::VCOUNT, vcount as i64)
            .with(node_attr::CHILDREN_TXID, children_txid as i64)
            .with(
                node_attr::CHILDREN,
                Value::List(children.iter().cloned().map(Value::Str).collect()),
            );
        per_attribute_bytes += per_attr.encode().len();

        // The packed alternative: one binary attribute, varint fields.
        let blob = pack_control_fields(created, version, vcount, children_txid, &children);
        let (c2, v2, vc2, ct2, kids2) =
            unpack_control_fields(&blob).expect("packed layout round-trips");
        assert_eq!(
            (c2, v2, vc2, ct2, &kids2),
            (created, version, vcount, children_txid, &children),
            "packing seed {seed:#x} item {i}: packed fields diverged"
        );
        let packed = Item::new().with("ctl", Value::Bin(bytes::Bytes::from(blob)));
        packed_bytes += packed.encode().len();
    }
    PackingComparison {
        items,
        per_attribute_bytes,
        packed_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bench_runs_identical_work_on_both_backends() {
        let config = StoreBenchConfig {
            paths: 32,
            writes: 128,
            batches: 16,
            batch_size: 4,
            reads: 128,
            value_bytes: 64,
            ..StoreBenchConfig::standard()
        };
        let (cmp, _stats) = compare_stores(&config);
        assert_eq!(cmp.mem.records_written, cmp.durable.records_written);
        assert_eq!(cmp.mem.reads, cmp.durable.reads);
        assert!(cmp.write_slowdown() > 0.0);
    }

    #[test]
    fn item_packing_comparison_is_deterministic_and_packed_is_smaller() {
        let a = compare_item_packing(0xBEEF, 64);
        let b = compare_item_packing(0xBEEF, 64);
        assert_eq!(a.per_attribute_bytes, b.per_attribute_bytes);
        assert_eq!(a.packed_bytes, b.packed_bytes);
        assert!(
            a.ratio() > 1.0,
            "per-attribute {} B vs packed {} B",
            a.per_attribute_bytes,
            a.packed_bytes
        );
    }
}
