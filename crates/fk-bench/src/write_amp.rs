//! Write-amplification harness: system-store write requests per epoch and
//! encoded node bytes, before and after the hot-path I/O diet.
//!
//! Two measurements back the `write_amplification` gate:
//!
//! * **Session-mark coalescing** — a 64-session interleaved write mix
//!   drains through a multi-group leader tier twice: once with the
//!   historical per-session high-water-mark epilogue (one conditional
//!   update per session per epoch) and once with the epoch-coalesced
//!   transactional path (⌈N/25⌉ requests). The harness counts the actual
//!   system-store **write requests** the leader tier issues per epoch —
//!   billing-visible round trips, not bytes — on a deployment whose user
//!   store is object storage, so every counted KV write is system
//!   storage by construction.
//! * **Encoded node bytes** — a zipf-sized record population (most nodes
//!   small, a heavy tail of large ones, mirroring the paper's workload
//!   shapes) encoded through the binary codec and through the legacy
//!   JSON encoding; the ratio is the per-write payload-unit saving every
//!   user-store backend and queue message pays for.

use fk_cloud::trace::Ctx;
use fk_core::codec;
use fk_core::deploy::{Deployment, DeploymentConfig, Provider};
use fk_core::distributor::DistributorConfig;
use fk_core::messages::{ClientRequest, Payload, WriteOp};
use fk_core::user_store::NodeRecord;
use fk_core::{CreateMode, UserStoreKind};
use fk_workloads::SeededZipf;
use std::sync::Arc;
use std::time::Duration;

/// One write-amplification measurement configuration.
#[derive(Debug, Clone)]
pub struct WriteAmpConfig {
    /// Concurrently writing sessions (each owns one node).
    pub sessions: usize,
    /// Total measured `set_data` transactions, interleaved round-robin
    /// across the sessions.
    pub writes: usize,
    /// Payload size per write.
    pub node_size: usize,
    /// Leader-tier width (shard groups).
    pub groups: usize,
    /// Intra-leader pipeline (shards × epoch batch).
    pub pipeline: DistributorConfig,
    /// Provider profile.
    pub provider: Provider,
    /// Seed for queue routing/latency.
    pub seed: u64,
}

impl WriteAmpConfig {
    /// The gate's standard shape: 64 sessions, 128 interleaved writes,
    /// 4 shard groups, object-store user data (so every KV write request
    /// the measured drain issues belongs to *system* storage).
    pub fn standard() -> Self {
        WriteAmpConfig {
            sessions: 64,
            writes: 128,
            node_size: 256,
            groups: 4,
            pipeline: DistributorConfig::new(4, 64),
            provider: Provider::Aws,
            seed: 0x11D1E7,
        }
    }
}

/// Result of one measured leader-tier drain.
#[derive(Debug, Clone)]
pub struct WriteAmpResult {
    /// Transactions distributed.
    pub writes: usize,
    /// Leader epochs the drain took (one per non-empty queue batch; the
    /// mix fires no watches, so batches never split).
    pub epochs: usize,
    /// System-store write *requests* issued during the measured drain
    /// (conditional updates + multi-item transactions, each counted as
    /// one round trip).
    pub write_requests: u64,
    /// `write_requests / epochs`.
    pub requests_per_epoch: f64,
}

/// Runs the interleaved multi-session mix through the real follower →
/// leader-tier pipeline (setup uncharged) and measures the system-store
/// write requests of the leader drain, with the session-mark epilogue
/// and the epoch-finalization `txq` pops each batched or not (the two
/// halves of the per-epoch write-request diet).
pub fn run_write_amp(
    config: &WriteAmpConfig,
    batched_marks: bool,
    batched_pops: bool,
) -> WriteAmpResult {
    let base = match config.provider {
        Provider::Aws => DeploymentConfig::aws(),
        Provider::Gcp => DeploymentConfig::gcp(),
    };
    let deployment = Deployment::direct(
        base.with_user_store(UserStoreKind::Object)
            .with_distributor(
                config
                    .pipeline
                    .with_groups(config.groups)
                    .with_batched_marks(batched_marks)
                    .with_batched_pops(batched_pops),
            ),
    );
    let follower = deployment.make_follower();
    let leaders: Vec<fk_core::leader::Leader> = (0..config.groups)
        .map(|_| deployment.make_leader_inline())
        .collect();

    let ctx = Ctx::disabled();
    let sessions: Vec<String> = (0..config.sessions).map(|i| format!("amp-{i}")).collect();
    let paths: Vec<String> = (0..config.sessions).map(|i| format!("/amp/n{i}")).collect();
    let mut endpoints = Vec::new();
    for session in &sessions {
        deployment
            .system()
            .register_session(&ctx, session, 0)
            .expect("register session");
        endpoints.push(deployment.bus().register(session));
    }
    let submit = |session: &str, request_id: u64, op: WriteOp| {
        let request = ClientRequest {
            session_id: session.to_owned(),
            request_id,
            op,
        };
        deployment
            .write_queue()
            .send(&ctx, session, request.encode())
            .expect("enqueue");
    };
    let drain_follower = || {
        while let Some(batch) = deployment
            .write_queue()
            .receive(10, Duration::from_secs(30))
        {
            follower
                .process_messages(&ctx, &batch.messages)
                .expect("follower processes");
            deployment.write_queue().ack(batch.receipt);
        }
    };
    let drain_leaders = |count_epochs: &mut usize| {
        let mut progressed = true;
        let mut drained = 0usize;
        while progressed {
            progressed = false;
            for (group, leader) in leaders.iter().enumerate() {
                loop {
                    let n = leader
                        .drain_queue(&ctx, deployment.leader_queues().queue(group))
                        .expect("leader drains");
                    if n == 0 {
                        break;
                    }
                    *count_epochs += 1;
                    drained += n;
                    progressed = true;
                }
            }
        }
        drained
    };

    // Uncharged setup: the node tree plus the follower half of the
    // measured writes.
    submit(
        &sessions[0],
        1,
        WriteOp::Create {
            path: "/amp".into(),
            payload: Payload::inline(b""),
            mode: CreateMode::Persistent,
        },
    );
    drain_follower();
    let mut sink = 0;
    drain_leaders(&mut sink);
    for (session, path) in sessions.iter().zip(&paths) {
        submit(
            session,
            2,
            WriteOp::Create {
                path: path.clone(),
                payload: Payload::inline(&vec![0x11; config.node_size]),
                mode: CreateMode::Persistent,
            },
        );
    }
    drain_follower();
    drain_leaders(&mut sink);

    // Interleaved rounds: every session writes once per round — the
    // arrival pattern of N independent clients — so each leader batch
    // spans many distinct sessions, which is exactly what makes the
    // per-session mark epilogue expensive.
    let payload = vec![0xAB; config.node_size];
    let mut submitted = 0usize;
    let mut request_id = 3u64;
    while submitted < config.writes {
        for (session, path) in sessions.iter().zip(&paths) {
            if submitted >= config.writes {
                break;
            }
            submit(
                session,
                request_id,
                WriteOp::SetData {
                    path: path.clone(),
                    payload: Payload::inline(&payload),
                    expected_version: -1,
                },
            );
            submitted += 1;
        }
        request_id += 1;
        drain_follower();
    }

    // Measured: the leader tier drains its queues; count the
    // system-store write requests it issues.
    let before = deployment.meter().snapshot();
    let mut epochs = 0usize;
    let drained = drain_leaders(&mut epochs);
    assert_eq!(drained, config.writes, "all writes distributed");
    let diff = deployment.meter().snapshot().since(&before);
    let write_requests = diff.per_op.get("kv_write").copied().unwrap_or(0)
        + diff.per_op.get("kv_transact").copied().unwrap_or(0);

    WriteAmpResult {
        writes: drained,
        epochs,
        write_requests,
        requests_per_epoch: write_requests as f64 / (epochs.max(1)) as f64,
    }
}

/// Encoded-size comparison over a zipf payload mix.
#[derive(Debug, Clone)]
pub struct EncodingComparison {
    /// Records sampled.
    pub records: usize,
    /// Total bytes under the legacy JSON encoding.
    pub json_bytes: usize,
    /// Total bytes under the binary codec.
    pub binary_bytes: usize,
}

impl EncodingComparison {
    /// `json_bytes / binary_bytes`.
    pub fn ratio(&self) -> f64 {
        self.json_bytes as f64 / (self.binary_bytes.max(1)) as f64
    }
}

/// Encodes `records` zipf-sized node records (rank-0-hot sizes from 16 B
/// up to the 4 kB hybrid threshold, zipf-deep children lists) through
/// both encodings. The size cap matches what the KV-resident record
/// population looks like under the paper's hybrid split (§4.2): payloads
/// past 4 kB live in the object store, so the records whose encoding is
/// paid per storage write are the small, metadata-heavy majority — where
/// JSON's field names and base64 hurt most. Every record is also
/// asserted to round-trip identically through both decode paths, so the
/// size claim can never outrun correctness.
pub fn compare_encoded_sizes(seed: u64, records: usize) -> EncodingComparison {
    let mut size_rank = SeededZipf::new(256, seed);
    let mut children_rank = SeededZipf::new(32, seed ^ 0xC41D);
    let mut json_bytes = 0usize;
    let mut binary_bytes = 0usize;
    for i in 0..records {
        // Rank 0 is the hottest: most nodes are small (16 B class), the
        // tail reaches the 4 kB hybrid threshold.
        let size = 16usize << (size_rank.next_key() as usize * 9 / 256);
        let children: Vec<String> = (0..children_rank.next_key())
            .map(|c| format!("child-{c}"))
            .collect();
        let record = NodeRecord {
            path: format!("/amp/zipf/n{i}"),
            data: bytes::Bytes::from(vec![(i % 251) as u8; size]),
            created_txid: i as u64 + 1,
            modified_txid: (i as u64 + 1) << 16,
            version: (i % 7) as i32,
            children: Arc::new(children),
            children_txid: i as u64,
            ephemeral_owner: (i % 5 == 0).then(|| format!("amp-{}", i % 64)),
            epoch_marks: Arc::new(if i % 9 == 0 { vec![i as u64] } else { vec![] }),
        };
        let bin = codec::encode_node(&record);
        let json = codec::encode_node_json(&record);
        assert_eq!(
            codec::decode_node(&bin),
            Some(record.clone()),
            "binary round-trip"
        );
        assert_eq!(codec::decode_node(&json), Some(record), "json fallback");
        binary_bytes += bin.len();
        json_bytes += json.len();
    }
    EncodingComparison {
        records,
        json_bytes,
        binary_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amp_run_is_deterministic_and_complete() {
        let config = WriteAmpConfig {
            sessions: 8,
            writes: 16,
            ..WriteAmpConfig::standard()
        };
        let a = run_write_amp(&config, true, true);
        let b = run_write_amp(&config, true, true);
        assert_eq!(a.writes, 16);
        assert_eq!(a.write_requests, b.write_requests, "seeded runs reproduce");
        assert!(a.epochs > 0);
    }

    #[test]
    fn encoding_comparison_is_deterministic() {
        let a = compare_encoded_sizes(7, 64);
        let b = compare_encoded_sizes(7, 64);
        assert_eq!(a.json_bytes, b.json_bytes);
        assert_eq!(a.binary_bytes, b.binary_bytes);
        assert!(a.ratio() > 1.0);
    }
}
