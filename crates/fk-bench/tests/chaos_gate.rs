//! Acceptance gate for the chaos soak: eight distinct seeded fault
//! schedules played against the 64-session zipf write mix, each judged
//! against one fault-free twin of the same deterministic workload.
//!
//! Per schedule the gate demands **zero acknowledged-write loss** (every
//! `Ok` the client API returned is in the final tree with the promised
//! data and version), **convergence** (the surviving tree — data,
//! versions, children, ephemeral owners — is identical to the twin's),
//! **bounded retry amplification** (`retries ≤ faults_injected`: every
//! retry is accounted to an injected fault), **drained dead-letter
//! queues** and a **clean Z1 integrity sweep**. A failing schedule
//! prints its `chaos soak seed 0x…`; the same seed replays the same
//! fault decisions (see `docs/fault_tolerance.md`).

use fk_bench::chaos_soak::{run_chaos_soak, ChaosSoakConfig};

/// The eight fixed fault schedules the gate replays, all against the
/// same geometry and workload seed so one twin baselines every run.
const SEEDS: [u64; 8] = [
    0x0A11, 0x0B22, 0x0C33, 0x0D44, 0x0E55, 0x0F66, 0x1077, 0x1188,
];

#[test]
fn soak_survives_eight_seeded_fault_schedules() {
    let config = ChaosSoakConfig::standard();
    let twin = run_chaos_soak(&config, None);
    println!(
        "fault-free twin: {} writes, p50 {:.2} ms, p99 {:.2} ms",
        twin.writes, twin.latency.p50, twin.latency.p99
    );
    assert!(
        twin.lost_acks().is_empty(),
        "twin lost {:?}",
        twin.lost_acks()
    );
    assert_eq!(twin.retries, 0, "fault-free run must not retry");
    assert_eq!(twin.faults_injected, 0);
    assert_eq!(twin.dead_letters, 0);
    assert_eq!(twin.integrity_violations, 0);

    for seed in SEEDS {
        let chaotic = run_chaos_soak(&config, Some(seed));
        println!(
            "chaos soak seed {seed:#x}: {} retries / {} faults, \
             p50 {:.2} ms, p99 {:.2} ms (twin p99 {:.2} ms)",
            chaotic.retries,
            chaotic.faults_injected,
            chaotic.latency.p50,
            chaotic.latency.p99,
            twin.latency.p99,
        );
        assert!(
            chaotic.faults_injected > 0,
            "chaos soak seed {seed:#x}: schedule never fired — the run proved nothing"
        );
        let lost = chaotic.lost_acks();
        assert!(
            lost.is_empty(),
            "chaos soak seed {seed:#x}: acknowledged writes lost on {lost:?}"
        );
        assert_eq!(
            chaotic.acked, twin.acked,
            "chaos soak seed {seed:#x}: acknowledged workload diverged from the twin"
        );
        assert_eq!(
            chaotic.tree, twin.tree,
            "chaos soak seed {seed:#x}: surviving tree diverged from the fault-free twin"
        );
        assert!(
            chaotic.retries <= chaotic.faults_injected,
            "chaos soak seed {seed:#x}: retry amplification {} exceeds injected faults {}",
            chaotic.retries,
            chaotic.faults_injected
        );
        assert_eq!(
            chaotic.dead_letters, 0,
            "chaos soak seed {seed:#x}: dead letters left behind"
        );
        assert_eq!(
            chaotic.integrity_violations, 0,
            "chaos soak seed {seed:#x}: Z1 integrity violations"
        );
    }
}
