//! Acceptance gate for the distributor refactor: the batched+sharded
//! pipeline must sustain at least 2× the write-distribution throughput of
//! the sequential path at batch size ≥ 8 and ≥ 4 shards, on the same
//! seeded zipf-skewed workload under the calibrated latency model.

use fk_bench::distributor_bench::{compare, DistRunConfig};
use fk_core::distributor::DistributorConfig;
use fk_core::UserStoreKind;

#[test]
fn batched_sharded_distribution_is_at_least_2x_sequential() {
    let pipeline = DistributorConfig::new(4, 8);
    let base = DistRunConfig::standard(pipeline);
    let (seq, pipe, speedup) = compare(pipeline, &base);
    assert!(
        speedup >= 2.0,
        "expected ≥2x at batch=8/shards=4: sequential {:.1} tx/s vs pipeline {:.1} tx/s ({speedup:.2}x)",
        seq.throughput_per_s,
        pipe.throughput_per_s,
    );
}

#[test]
fn speedup_grows_with_batch_and_shards() {
    let base = DistRunConfig::standard(DistributorConfig::default());
    let (_, _, small) = compare(DistributorConfig::new(4, 8), &base);
    let (_, _, large) = compare(DistributorConfig::new(8, 32), &base);
    assert!(
        large > small,
        "wider pipeline should win: 4x8 → {small:.2}x, 8x32 → {large:.2}x"
    );
}

/// The GCP profile (ordered Pub/Sub + Datastore + Cloud Storage) must
/// clear the same bar. Batching pays off even harder there: ordered
/// Pub/Sub dispatch is ~110 ms per delivery (Table 7c), so draining one
/// epoch per dispatch instead of one transaction per dispatch removes
/// the dominant per-message cost.
#[test]
fn gcp_profile_also_clears_2x() {
    let pipeline = DistributorConfig::new(4, 8);
    let base = DistRunConfig::gcp(pipeline);
    let (seq, pipe, speedup) = compare(pipeline, &base);
    assert!(
        speedup >= 2.0,
        "gcp: sequential {:.1} tx/s vs pipeline {:.1} tx/s ({speedup:.2}x)",
        seq.throughput_per_s,
        pipe.throughput_per_s,
    );
}

/// GCP's per-dispatch cost dwarfs AWS's, so the pipeline's relative win
/// must be at least as large there — this pins the calibration ordering
/// (Table 7a vs 7c) into the gate.
#[test]
fn gcp_speedup_at_least_matches_aws() {
    let pipeline = DistributorConfig::new(4, 16);
    let (_, _, aws) = compare(pipeline, &DistRunConfig::standard(pipeline));
    let (_, _, gcp) = compare(pipeline, &DistRunConfig::gcp(pipeline));
    assert!(
        gcp >= aws,
        "ordered Pub/Sub batching should win harder: aws {aws:.2}x vs gcp {gcp:.2}x"
    );
}

#[test]
fn hybrid_backend_also_clears_2x() {
    let pipeline = DistributorConfig::new(4, 16);
    let base = DistRunConfig {
        store: UserStoreKind::hybrid_default(),
        ..DistRunConfig::standard(pipeline)
    };
    let (seq, pipe, speedup) = compare(pipeline, &base);
    assert!(
        speedup >= 2.0,
        "hybrid: sequential {:.1} tx/s vs pipeline {:.1} tx/s ({speedup:.2}x)",
        seq.throughput_per_s,
        pipe.throughput_per_s,
    );
}
