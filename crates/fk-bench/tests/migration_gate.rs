//! Acceptance gate for checkpoint/state-transfer and live membership
//! changes (`BENCH_migration.json` records the numbers):
//!
//! * A read replica bootstrapped **mid-run** — snapshot install plus
//!   retained feed-log suffix replay, while writers keep committing —
//!   must converge **byte-identical** (via [`fk_core::codec::encode_node`])
//!   to the replica that streamed the same epochs from genesis.
//! * A live 4 → 8 scale-out followed by a hot-group drain, all under a
//!   seeded standard fault plan, must lose zero acknowledged writes,
//!   keep the tree integral, and leave every dead-letter queue empty.

use fk_cloud::FaultPlan;
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::{codec, CreateMode, DistributorConfig, ReplicaConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Polls until every replica in region 0 sits at the same feed
/// position (the writers have stopped, so the positions are final).
fn await_feed_quiesce(fk: &Deployment, stamp: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let replicas = fk.replicas().region(0);
        let positions: Vec<u64> = replicas.iter().map(|r| r.feed_position()).collect();
        if positions.windows(2).all(|w| w[0] == w[1]) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{stamp}: replica feed positions never converged: {positions:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A replica joined mid-run from a checkpoint must end byte-identical
/// to the genesis-streamed replica: same codec frame for every node the
/// genesis replica holds, despite writes landing before the checkpoint,
/// between checkpoint and join, and after the join — all under the
/// standard fault plan (dropped/duplicated/delayed feed frames armed).
#[test]
fn mid_run_bootstrap_converges_byte_identical_to_genesis_replica() {
    let seed = 0xB007u64;
    let stamp = format!("migration gate seed {seed:#x}: bootstrap groups=2 shards=2 replicas=1");
    println!("{stamp}");
    let fk = Deployment::start(
        DeploymentConfig::aws()
            .with_distributor(DistributorConfig::new(2, 16))
            .with_shard_groups(2)
            .with_replicas(ReplicaConfig::with_count(1).with_byte_budget(64 << 20))
            .with_chaos(FaultPlan::standard(seed)),
    );
    let ctx = fk.client_ctx();
    let client = fk.connect("boot").expect("connect");

    // Phase 1: state that will be carried by the snapshot.
    client
        .create("/boot", b"", CreateMode::Persistent)
        .expect("create root");
    for n in 0..12 {
        client
            .create(
                &format!("/boot/n{n}"),
                &vec![0x5A; 512],
                CreateMode::Persistent,
            )
            .expect("create");
    }
    for n in 0..6 {
        client
            .set_data(&format!("/boot/n{n}"), &vec![0x5B; 256], -1)
            .expect("set");
    }

    let manifest = fk.cut_checkpoint(&ctx).expect("cut checkpoint");
    assert!(
        manifest.nodes >= 13,
        "{stamp}: checkpoint missed the phase-1 tree ({} nodes)",
        manifest.nodes
    );

    // Phase 2: commits the joiner must pick up from the feed-log
    // suffix, not the snapshot.
    for n in 0..6 {
        client
            .set_data(&format!("/boot/n{n}"), format!("suffix-{n}").as_bytes(), -1)
            .expect("post-checkpoint set");
    }
    for l in 0..4 {
        client
            .create(&format!("/boot/late{l}"), b"late", CreateMode::Persistent)
            .expect("post-checkpoint create");
    }

    let joiner = fk
        .bootstrap_replica(&ctx, 0, manifest.id)
        .expect("bootstrap")
        .expect("feed log retains the suffix right after the checkpoint");

    // Phase 3: commits both replicas see live.
    client
        .set_data("/boot/late0", b"late-v2", -1)
        .expect("post-join set");
    client
        .create("/boot/tail", b"tail", CreateMode::Persistent)
        .expect("post-join create");
    client.close().expect("close");

    await_feed_quiesce(&fk, &stamp);
    // Close any chaos-dropped trailing feed gap before comparing.
    fk.replicas().reconcile(&ctx);

    let genesis = fk
        .replicas()
        .region(0)
        .into_iter()
        .find(|r| !Arc::ptr_eq(r, &joiner))
        .expect("genesis replica still registered");
    let resident = genesis.resident_paths();
    assert!(
        resident.iter().any(|p| p.starts_with("/boot")),
        "{stamp}: genesis replica holds no workload state — comparison would be vacuous"
    );
    for path in resident {
        let expected = genesis.peek(&path).expect("resident on genesis");
        let actual = joiner
            .peek(&path)
            .unwrap_or_else(|| panic!("{stamp}: joiner missing {path}"));
        assert_eq!(
            codec::encode_node(&expected),
            codec::encode_node(&actual),
            "{stamp}: joiner diverged from genesis on {path}"
        );
    }
    fk.shutdown();
}

/// Live resharding end to end under the standard fault plan: scale out
/// 4 → 8 groups mid-workload, then drain a hot group into a successor,
/// with every acknowledged write verified afterwards. Prints the gate
/// numbers recorded in `BENCH_migration.json`.
#[test]
fn live_resharding_loses_nothing_and_records_gate_numbers() {
    let seed = 0x4D16u64;
    let stamp = format!("migration gate seed {seed:#x}: reshard groups=4/8 shards=2 replicas=1");
    println!("{stamp}");
    let fk = Deployment::start(
        DeploymentConfig::aws()
            .with_distributor(DistributorConfig::new(2, 16))
            .with_shard_groups(8)
            .with_active_groups(4)
            .with_replicas(ReplicaConfig::with_count(1).with_byte_budget(64 << 20))
            .with_chaos(FaultPlan::standard(seed)),
    );
    let ctx = fk.client_ctx();
    let client = fk.connect("reshard").expect("connect");
    let mut expect = Vec::new();

    client
        .create("/live", b"", CreateMode::Persistent)
        .expect("create root");
    for n in 0..24 {
        let path = format!("/live/a{n}");
        client
            .create(&path, b"a0", CreateMode::Persistent)
            .expect("create");
        client.set_data(&path, b"a1", -1).expect("set");
        expect.push((path, b"a1".to_vec(), 1i64));
    }

    // Scale out while the next write round is about to land: keys
    // re-hash across the doubled width from the followers' next batch.
    let t0 = Instant::now();
    let manifest = fk.scale_out(&ctx, 8).expect("scale out");
    let scale_out_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(manifest.chunks >= 1, "{stamp}: empty checkpoint");

    for n in 0..24 {
        let path = format!("/live/b{n}");
        client
            .create(&path, b"b0", CreateMode::Persistent)
            .expect("create post-scale-out");
        client
            .set_data(&path, b"b1", -1)
            .expect("set post-scale-out");
        expect.push((path, b"b1".to_vec(), 1));
    }

    // Drain group 2 into group 3, finish the in-flight suffix, retire
    // the floor, and keep writing through the permanent redirect.
    fk.begin_drain(&ctx, 2, 3).expect("begin drain");
    for n in 0..12 {
        let path = format!("/live/c{n}");
        client
            .create(&path, b"c0", CreateMode::Persistent)
            .expect("create while draining");
        expect.push((path, b"c0".to_vec(), 0));
    }
    client.close().expect("close");
    let t1 = Instant::now();
    let deadline = t1 + Duration::from_secs(20);
    loop {
        match fk.complete_drain(&ctx, 2) {
            Ok(()) => break,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "{stamp}: drain never completed: {e:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let drain_ms = t1.elapsed().as_secs_f64() * 1e3;

    for (path, data, version) in &expect {
        let record = (0..50)
            .find_map(|_| fk.user_store().read_node(&ctx, path).ok().flatten())
            .unwrap_or_else(|| panic!("{stamp}: acknowledged node {path} lost"));
        assert_eq!(
            record.data.as_ref(),
            &data[..],
            "{stamp}: data lost on {path}"
        );
        assert_eq!(
            i64::from(record.version),
            *version,
            "{stamp}: version lost on {path}"
        );
    }
    let violations =
        fk_core::consistency::check_tree_integrity(&ctx, fk.system(), fk.user_store().as_ref());
    assert!(violations.is_empty(), "{stamp}: {violations:#?}");
    assert!(
        fk.write_queue().drain_dead_letters().is_empty()
            && fk.leader_queues().drain_dead_letters().is_empty(),
        "{stamp}: dead letters after migration"
    );

    let snapshot = fk.meter().snapshot();
    assert!(
        snapshot.retries <= snapshot.faults_injected,
        "{stamp}: retry amplification {} exceeds injected faults {}",
        snapshot.retries,
        snapshot.faults_injected
    );
    println!(
        "migration gate numbers: acked_writes={} checkpoint_nodes={} checkpoint_chunks={} \
         scale_out_ms={scale_out_ms:.1} drain_ms={drain_ms:.1} retries={} faults_injected={} \
         obj_puts={} dead_letters=0",
        expect.len(),
        manifest.nodes,
        manifest.chunks,
        snapshot.retries,
        snapshot.faults_injected,
        snapshot.obj_puts,
    );
    fk.shutdown();
}
