//! Acceptance gate for the multi-leader tier: scaling the leader from
//! one function instance to one instance per shard group must buy real
//! write-distribution throughput on a uniform mix, and the single-group
//! path must not regress — it is still the default deployment shape.

use fk_bench::distributor_bench::{run_multi_leader, MultiRunConfig};
use fk_core::distributor::DistributorConfig;

/// Replay stamp for failure messages, in the `chaos soak seed 0x…`
/// idiom: the printed seed + geometry reproduce the exact run.
fn stamp(config: &MultiRunConfig) -> String {
    format!(
        "multi-leader gate seed {:#x} shards {} batch {} writes {} provider {:?}",
        config.seed,
        config.pipeline.shards,
        config.pipeline.max_batch,
        config.writes,
        config.provider
    )
}

/// Four shard groups must sustain at least twice the distribution
/// throughput of one group on the same uniform write mix (one session
/// per node — N independent clients, the shape the paper's elasticity
/// argument is about). Perfect sharding would give 4×; the 2× bar
/// leaves room for queue-hash imbalance and the cross-group-safe apply
/// path's extra read-merge-write round trips.
#[test]
fn four_shard_groups_at_least_2x_one_group() {
    let config = MultiRunConfig::standard();
    let one = run_multi_leader(1, &config);
    let four = run_multi_leader(4, &config);
    let speedup = four.throughput_per_s / one.throughput_per_s;
    assert!(
        speedup >= 2.0,
        "{}: expected >=2x from 4 shard groups: 1 group {:.1} tx/s vs 4 groups {:.1} tx/s ({speedup:.2}x)",
        stamp(&config),
        one.throughput_per_s,
        four.throughput_per_s,
    );
}

/// More groups should keep helping (monotone through the tier widths the
/// bench profile prints).
#[test]
fn eight_groups_beat_two() {
    let config = MultiRunConfig::standard();
    let two = run_multi_leader(2, &config);
    let eight = run_multi_leader(8, &config);
    assert!(
        eight.throughput_per_s > two.throughput_per_s,
        "{}: wider tier should win: 2 groups {:.1} tx/s vs 8 groups {:.1} tx/s",
        stamp(&config),
        two.throughput_per_s,
        eight.throughput_per_s,
    );
}

/// The single-group path is unregressed: with `groups = 1` the leader
/// takes the exact pre-multi-leader apply path (no merge reads, no
/// high-water-mark traffic), so the PR-1 pipeline win over the
/// sequential baseline must still clear its 2x bar on this uniform mix
/// too. (The zipf-skewed original gate runs alongside in
/// `distributor_throughput.rs`.)
#[test]
fn single_group_path_unregressed() {
    let sequential = run_multi_leader(
        1,
        &MultiRunConfig {
            pipeline: DistributorConfig::sequential(),
            ..MultiRunConfig::standard()
        },
    );
    let pipelined = run_multi_leader(1, &MultiRunConfig::standard());
    let speedup = pipelined.throughput_per_s / sequential.throughput_per_s;
    assert!(
        speedup >= 2.0,
        "{}: single-group pipeline regressed: sequential {:.1} tx/s vs pipeline {:.1} tx/s ({speedup:.2}x)",
        stamp(&MultiRunConfig::standard()),
        sequential.throughput_per_s,
        pipelined.throughput_per_s,
    );
}
