//! Acceptance gate for the pipelined client API: with pipeline depth 16,
//! one session's write throughput on the interleaved zipf mix must be
//! ≥ 3× the depth-1 (blocking) baseline, on both provider profiles. The
//! Z1 FIFO property suite (`tests/pipelined_properties.rs`) and the
//! multi atomicity suite (`tests/multi_properties.rs`) pin the
//! correctness half of the same redesign; this gate pins the reason the
//! redesign exists.

use fk_bench::pipelined_bench::{compare_depths, PipelinedRunConfig};

/// Replay stamp for failure messages, in the `chaos soak seed 0x…`
/// idiom: the printed seed + geometry reproduce the exact run.
fn stamp(config: &PipelinedRunConfig) -> String {
    format!(
        "pipelined gate seed {:#x} depth {} writes {} shards {} batch {} provider {:?}",
        config.seed,
        config.depth,
        config.writes,
        config.pipeline.shards,
        config.pipeline.max_batch,
        config.provider
    )
}

fn assert_depth16_clears_3x(base: PipelinedRunConfig) {
    let provider = base.provider;
    let (blocking, pipelined, speedup) = compare_depths(16, &base);
    assert_eq!(blocking.writes, pipelined.writes, "same work completed");
    println!(
        "{provider:?}: depth 1 {:.1} writes/s ({:?}) vs depth 16 {:.1} writes/s ({:?}) — {speedup:.2}x",
        blocking.throughput_per_s,
        blocking.virtual_time,
        pipelined.throughput_per_s,
        pipelined.virtual_time,
    );
    assert!(
        speedup >= 3.0,
        "{}: expected >=3x per-session write throughput at depth 16, got {speedup:.2}x \
         ({:.1} -> {:.1} writes/s)",
        stamp(&base),
        blocking.throughput_per_s,
        pipelined.throughput_per_s,
    );
}

#[test]
fn aws_depth16_triples_per_session_write_throughput() {
    assert_depth16_clears_3x(PipelinedRunConfig::standard(16));
}

#[test]
fn gcp_depth16_triples_per_session_write_throughput() {
    assert_depth16_clears_3x(PipelinedRunConfig::gcp(16));
}

/// Depth scaling is monotone up to the gate point: more in-flight writes
/// never reduce per-session throughput on this mix.
#[test]
fn depth_scaling_is_monotone() {
    let mut last = 0.0f64;
    for depth in [1usize, 4, 16] {
        let result = fk_bench::pipelined_bench::run_pipelined(&PipelinedRunConfig::standard(depth));
        assert!(
            result.throughput_per_s >= last,
            "depth {depth} regressed: {:.1} < {last:.1}",
            result.throughput_per_s
        );
        last = result.throughput_per_s;
    }
}
