//! Acceptance gate for the client read cache: on a zipf-skewed
//! read-heavy workload the cached client must do at least 5× fewer
//! storage round trips than the uncached baseline, with a matching drop
//! in modeled read latency, and Z1–Z4 stay intact (checked separately by
//! `tests/consistency_properties.rs` with the cache enabled).

use fk_bench::read_bench::{compare_reads, ReadRunConfig};
use fk_core::deploy::Provider;
use fk_core::read_cache::ReadCacheConfig;
use fk_core::UserStoreKind;

/// Replay stamp for failure messages, in the `chaos soak seed 0x…`
/// idiom: the printed seed + geometry reproduce the exact run.
fn stamp(config: &ReadRunConfig) -> String {
    format!(
        "read gate seed {:#x} nodes {} theta {} store {:?} provider {:?}",
        config.seed, config.nodes, config.theta, config.store, config.provider
    )
}

#[test]
fn cached_reads_cut_storage_round_trips_5x_on_zipf_workload() {
    let base = ReadRunConfig::standard(ReadCacheConfig::with_capacity(64));
    let (uncached, cached, trips, speedup) = compare_reads(&base);
    assert_eq!(
        uncached.storage_round_trips,
        uncached.reads as u64,
        "{}: baseline pays one round trip per read",
        stamp(&base)
    );
    assert!(
        trips >= 5.0,
        "{}: expected ≥5x fewer round trips: uncached {} vs cached {} ({trips:.1}x)",
        stamp(&base),
        uncached.storage_round_trips,
        cached.storage_round_trips,
    );
    assert!(
        speedup >= 5.0,
        "{}: modeled latency should drop with the round trips: {:?} vs {:?} ({speedup:.1}x)",
        stamp(&base),
        uncached.virtual_time,
        cached.virtual_time,
    );
    assert!(
        cached.hit_ratio >= 0.8,
        "{}: read-heavy zipf workload should mostly hit ({:.2})",
        stamp(&base),
        cached.hit_ratio
    );
}

/// A cache smaller than the key space still wins on zipf skew: the hot
/// head stays resident while the cold tail churns through the LRU.
#[test]
fn small_cache_still_wins_under_skew() {
    let base = ReadRunConfig {
        nodes: 48,
        ..ReadRunConfig::standard(ReadCacheConfig::with_capacity(12))
    };
    let (uncached, cached, trips, _) = compare_reads(&base);
    assert!(
        cached.storage_round_trips < uncached.storage_round_trips / 2,
        "{}: hot-head residency should halve round trips: {} vs {}",
        stamp(&base),
        uncached.storage_round_trips,
        cached.storage_round_trips,
    );
    assert!(
        trips > 2.0,
        "{}: round-trip factor {trips:.1}",
        stamp(&base)
    );
}

/// The KV backend gains the same way (the gate is backend-agnostic).
#[test]
fn kv_backend_also_clears_5x() {
    let base = ReadRunConfig {
        store: UserStoreKind::KeyValue,
        ..ReadRunConfig::standard(ReadCacheConfig::with_capacity(64))
    };
    let (uncached, cached, trips, _) = compare_reads(&base);
    assert!(
        trips >= 5.0,
        "{}: uncached {} vs cached {} round trips",
        stamp(&base),
        uncached.storage_round_trips,
        cached.storage_round_trips,
    );
}

/// GCP's slower storage makes the cache matter more, not less.
#[test]
fn gcp_profile_also_clears_5x() {
    let base = ReadRunConfig {
        provider: Provider::Gcp,
        ..ReadRunConfig::standard(ReadCacheConfig::with_capacity(64))
    };
    let (_, cached, trips, speedup) = compare_reads(&base);
    assert!(
        trips >= 5.0,
        "{}: round-trip factor {trips:.1}",
        stamp(&base)
    );
    assert!(
        speedup >= 5.0,
        "{}: latency factor {speedup:.1}",
        stamp(&base)
    );
    assert!(
        cached.hit_ratio >= 0.8,
        "{}: hit ratio {:.2}",
        stamp(&base),
        cached.hit_ratio
    );
}

/// Negative caching: polling `exists` on an absent path pays one round
/// trip total instead of one per poll.
#[test]
fn negative_cache_absorbs_exists_polling() {
    use fk_cloud::trace::LatencyMode;
    use fk_core::deploy::{Deployment, DeploymentConfig};

    let deployment = Deployment::start(
        DeploymentConfig::aws()
            .with_mode(LatencyMode::Virtual, 0xAB5)
            .with_read_cache(ReadCacheConfig::with_capacity(16)),
    );
    let client = deployment.connect("poller").expect("connect");
    let before = deployment.meter().snapshot();
    for _ in 0..20 {
        assert!(client.exists("/not-there", false).expect("poll").is_none());
    }
    let usage = deployment.meter().snapshot().since(&before);
    assert_eq!(
        usage.obj_gets + usage.per_op.get("kv_read").copied().unwrap_or(0),
        1,
        "one confirming round trip, nineteen negative hits"
    );
    assert_eq!(client.cache_stats().hits, 19);
    drop(client);
    deployment.shutdown();
}
