//! Acceptance gate for the shared regional read-replica tier: a
//! 64-session fleet on a zipf read mix must hit backing storage at
//! least 5× less often reading through the replica than with
//! per-session caches alone (the tier absorbs the fleet's cold misses
//! once per unique path instead of once per session × path), replica
//! hits are metered but never billed, and a deployment whose tier is
//! *disabled* behaves byte-identically to one that never had the knob.

use fk_bench::replica_bench::{compare_replica_reads, run_replica_reads, ReplicaRunConfig};
use fk_cloud::trace::LatencyMode;
use fk_core::deploy::{Deployment, DeploymentConfig, Provider};
use fk_core::read_cache::ReadCacheConfig;
use fk_core::replica::ReplicaConfig;
use fk_core::CreateMode;

/// Replay stamp for failure messages, in the `chaos soak seed 0x…`
/// idiom: the printed seed + geometry reproduce the exact run.
fn stamp(config: &ReplicaRunConfig) -> String {
    format!(
        "replica gate seed {:#x} sessions {} reads {} nodes {} theta {} store {:?} provider {:?}",
        config.seed,
        config.sessions,
        config.reads_per_session,
        config.nodes,
        config.theta,
        config.store,
        config.provider
    )
}

#[test]
fn replica_tier_cuts_fleet_storage_round_trips_5x_on_zipf_workload() {
    let base = ReplicaRunConfig::standard(ReplicaConfig::with_count(1));
    let (caches_only, replicated, trips, speedup) = compare_replica_reads(&base);
    println!(
        "aws: caches-alone {} trips / replicated {} trips = {trips:.1}x; \
         {} replica hits; {:?} vs {:?} = {speedup:.1}x",
        caches_only.storage_round_trips,
        replicated.storage_round_trips,
        replicated.replica_hits,
        caches_only.virtual_time,
        replicated.virtual_time,
    );
    assert!(
        trips >= 5.0,
        "{}: expected ≥5x fewer round trips: caches-alone {} vs replicated {} ({trips:.1}x)",
        stamp(&base),
        caches_only.storage_round_trips,
        replicated.storage_round_trips,
    );
    assert!(
        replicated.replica_hits > 0,
        "{}: the tier should have absorbed the fleet's cold misses",
        stamp(&base),
    );
    assert!(
        speedup >= 2.0,
        "{}: in-memory replica serves should drop the fleet's modeled read time: {:?} vs {:?} ({speedup:.1}x)",
        stamp(&base),
        caches_only.virtual_time,
        replicated.virtual_time,
    );
}

/// GCP's slower storage makes the shared tier matter more, not less.
#[test]
fn gcp_profile_also_clears_5x() {
    let base = ReplicaRunConfig {
        provider: Provider::Gcp,
        ..ReplicaRunConfig::standard(ReplicaConfig::with_count(1))
    };
    let (caches_only, replicated, trips, speedup) = compare_replica_reads(&base);
    println!(
        "gcp: caches-alone {} trips / replicated {} trips = {trips:.1}x; speedup {speedup:.1}x",
        caches_only.storage_round_trips, replicated.storage_round_trips,
    );
    assert!(
        trips >= 5.0,
        "{}: caches-alone {} vs replicated {} round trips ({trips:.1}x)",
        stamp(&base),
        caches_only.storage_round_trips,
        replicated.storage_round_trips,
    );
}

/// More replicas per region spread sessions without losing the win:
/// every replica sees the full epoch stream, so each serves its pinned
/// sessions' hot set independently.
#[test]
fn multiple_replicas_per_region_also_clear_5x() {
    let base = ReplicaRunConfig {
        sessions: 32,
        ..ReplicaRunConfig::standard(ReplicaConfig::with_count(3))
    };
    let (_, replicated, trips, _) = compare_replica_reads(&base);
    assert!(
        trips >= 5.0,
        "{}: 3-replica tier factor {trips:.1}",
        stamp(&base),
    );
    assert!(replicated.replica_hits > 0, "{}", stamp(&base));
}

/// A replica whose feed lags behind never serves stale data — it serves
/// nothing, and the fleet pays exactly the caches-alone storage bill.
#[test]
fn lagging_tier_never_beats_nor_corrupts_the_baseline() {
    let small = ReplicaRunConfig {
        sessions: 8,
        reads_per_session: 6,
        nodes: 8,
        ..ReplicaRunConfig::standard(ReplicaConfig::with_count(1).with_feed_lag(10_000))
    };
    let lagged = run_replica_reads(&small);
    let baseline = run_replica_reads(&ReplicaRunConfig {
        replicas: ReplicaConfig::disabled(),
        ..small
    });
    assert_eq!(lagged.replica_hits, 0, "{}", stamp(&small));
    assert_eq!(
        lagged.storage_round_trips,
        baseline.storage_round_trips,
        "{}",
        stamp(&small)
    );
}

/// Read-path fingerprint of one fixed workload: writes first, then a
/// metered read section (cache hits, cold misses, a post-overwrite
/// refetch). Only read-path counters and the read loop's virtual time
/// go into the fingerprint — write-side batching under live triggers is
/// timing-dependent (epoch splits vary run to run), but the read path
/// is deterministic and is the only thing the replica knob can touch.
fn read_fingerprint(
    config: DeploymentConfig,
) -> (u64, u64, u64, u64, u64, u64, std::time::Duration) {
    let deployment = Deployment::start(config);
    let client = deployment.connect("gate-fixed").expect("connect");
    for i in 0..6 {
        client
            .create(
                &format!("/fx-{i}"),
                &vec![0x11; 256],
                CreateMode::Persistent,
            )
            .expect("create");
    }
    client
        .set_data("/fx-0", &vec![0x22; 256], -1)
        .expect("overwrite");
    // Let straggling post-notify work (epoch-mark coalescing, watch
    // forks) drain before fencing off the read section.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let before = deployment.meter().snapshot();
    let time_before = client.elapsed();
    for _ in 0..3 {
        for i in 0..6 {
            client.get_data(&format!("/fx-{i}"), false).expect("read");
        }
    }
    let usage = deployment.meter().snapshot().since(&before);
    let elapsed = client.elapsed() - time_before;
    drop(client);
    deployment.shutdown();
    (
        usage.obj_gets,
        usage.mem_ops,
        usage.per_op.get("kv_read").copied().unwrap_or(0),
        usage.cache_hits,
        usage.cache_misses,
        usage.replica_hits,
        elapsed,
    )
}

/// The disabled tier is not "a tier with zero hits" — it is *absent*:
/// the read path's storage traffic, cache counters and modeled time are
/// identical to a deployment built without touching the replica knob.
#[test]
fn disabled_tier_is_byte_identical_to_an_untouched_deployment() {
    let untouched = read_fingerprint(
        DeploymentConfig::aws()
            .with_mode(LatencyMode::Virtual, 0xD15A)
            .with_read_cache(ReadCacheConfig::with_capacity(16)),
    );
    let disabled = read_fingerprint(
        DeploymentConfig::aws()
            .with_mode(LatencyMode::Virtual, 0xD15A)
            .with_read_cache(ReadCacheConfig::with_capacity(16))
            .with_replicas(ReplicaConfig::disabled()),
    );
    assert_eq!(untouched, disabled, "identical read-path fingerprints");
    assert_eq!(untouched.5, 0, "no replica hits anywhere");
}
