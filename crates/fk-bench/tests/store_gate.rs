//! Acceptance gate for the embedded LSM engine: on the identical seeded
//! workload (4096 single writes + 512 × 8 batched writes over a
//! 512-path working set, then 8192 point reads), the durable engine
//! must stay within a small constant factor of the in-memory baseline —
//! write throughput within 40×, read throughput within 100× — while the
//! workload demonstrably exercises flush, SST build and compaction (the
//! counters are asserted, so the gate can't pass on a memtable-only
//! run). The node-control-item packing comparison rides along: the
//! per-attribute layout must cost ≥ 1.5× the packed single-attribute
//! bytes, which is the margin recorded in `docs/benchmarks.md` §10.
//!
//! Factors are deliberately generous: the baseline is a lock-guarded
//! hashmap clone, the engine CRC-frames every record into a WAL, group
//! commits, flushes sorted runs and merges levels. The gate exists to
//! catch order-of-magnitude regressions (accidental O(n) scans, lost
//! batching, per-key fsync), not to benchmark the hardware. Measured
//! numbers live in `BENCH_store.json`.

use fk_bench::store_bench::{compare_item_packing, compare_stores, StoreBenchConfig};

#[test]
fn durable_engine_throughput_is_within_constant_factor_of_mem() {
    let config = StoreBenchConfig::standard();
    let stamp = format!(
        "store gate seed {:#x} paths {} writes {} batches {}x{} reads {}",
        config.seed, config.paths, config.writes, config.batches, config.batch_size, config.reads
    );
    let (cmp, stats) = compare_stores(&config);
    println!(
        "mem: {:.0} writes/s, {:.0} reads/s | durable: {:.0} writes/s, {:.0} reads/s | \
         slowdown {:.1}x write, {:.1}x read | {} flushes, {} compactions, L0 {} L1 {}",
        cmp.mem.write_ops_per_sec(),
        cmp.mem.read_ops_per_sec(),
        cmp.durable.write_ops_per_sec(),
        cmp.durable.read_ops_per_sec(),
        cmp.write_slowdown(),
        cmp.read_slowdown(),
        stats.flushes,
        stats.compactions,
        stats.l0_files,
        stats.l1_files,
    );
    assert!(
        stats.flushes > 0 && stats.compactions > 0,
        "{stamp}: workload must overflow the memtable and trigger compaction \
         so the measured write path includes flush/SST/merge cost (saw {stats:?})"
    );
    assert!(
        cmp.write_slowdown() <= 40.0,
        "{stamp}: durable write throughput fell past 40x of MemUserStore \
         ({:.0} vs {:.0} writes/s, {:.1}x)",
        cmp.durable.write_ops_per_sec(),
        cmp.mem.write_ops_per_sec(),
        cmp.write_slowdown(),
    );
    assert!(
        cmp.read_slowdown() <= 100.0,
        "{stamp}: durable read throughput fell past 100x of MemUserStore \
         ({:.0} vs {:.0} reads/s, {:.1}x)",
        cmp.durable.read_ops_per_sec(),
        cmp.mem.read_ops_per_sec(),
        cmp.read_slowdown(),
    );
}

#[test]
fn packed_control_item_is_at_least_1_5x_smaller() {
    let cmp = compare_item_packing(0x17E4, 512);
    println!(
        "packing: {} items, per-attribute {} B vs packed {} B — {:.2}x, {:.1} B overhead/item",
        cmp.items,
        cmp.per_attribute_bytes,
        cmp.packed_bytes,
        cmp.ratio(),
        cmp.overhead_per_item(),
    );
    assert!(
        cmp.ratio() >= 1.5,
        "packing gate seed 0x17e4: expected per-attribute layout >=1.5x of packed \
         bytes: {} B vs {} B ({:.2}x)",
        cmp.per_attribute_bytes,
        cmp.packed_bytes,
        cmp.ratio(),
    );
}
