//! Acceptance gate for the hot-path storage I/O diet: the epoch-coalesced
//! session marks and the chunked `txq` pops must each cut the leader
//! tier's system-store write requests per epoch by ≥ 30 % on a
//! 64-session interleaved mix (measured against the same run with only
//! that batching disabled), and the binary node codec must encode the
//! zipf payload mix into ≤ 1/1.5 of the JSON bytes — on both provider
//! profiles. (The pre-existing gates — `distributor_path` ≥ 2×,
//! `multi_leader_gate` ≥ 2×, `read_path_gate` ≥ 5× — run unchanged in
//! the same CI workflow, pinning no-regression.)

use fk_bench::write_amp::{compare_encoded_sizes, run_write_amp, WriteAmpConfig};
use fk_core::deploy::Provider;

/// Replay stamp for failure messages, in the `chaos soak seed 0x…`
/// idiom: the printed seed + geometry reproduce the exact run.
fn stamp(config: &WriteAmpConfig) -> String {
    format!(
        "write-amp gate seed {:#x} sessions {} writes {} groups {} shards {} provider {:?}",
        config.seed,
        config.sessions,
        config.writes,
        config.groups,
        config.pipeline.shards,
        config.provider
    )
}

fn assert_marks_batching_cuts_30pct(provider: Provider) {
    let config = WriteAmpConfig {
        provider,
        ..WriteAmpConfig::standard()
    };
    let baseline = run_write_amp(&config, false, true);
    let batched = run_write_amp(&config, true, true);
    assert_eq!(baseline.writes, batched.writes, "same work distributed");
    let cut = 1.0 - batched.requests_per_epoch / baseline.requests_per_epoch;
    println!(
        "{provider:?}: per-session marks {:.1} req/epoch ({} epochs) vs batched {:.1} req/epoch ({} epochs) — {:.0}% fewer",
        baseline.requests_per_epoch,
        baseline.epochs,
        batched.requests_per_epoch,
        batched.epochs,
        cut * 100.0,
    );
    assert!(
        cut >= 0.30,
        "{}: expected >=30% fewer system-store write requests per epoch, \
         got {:.1}% ({:.1} -> {:.1})",
        stamp(&config),
        cut * 100.0,
        baseline.requests_per_epoch,
        batched.requests_per_epoch,
    );
}

fn assert_pop_batching_cuts_30pct(provider: Provider) {
    let config = WriteAmpConfig {
        provider,
        ..WriteAmpConfig::standard()
    };
    let baseline = run_write_amp(&config, true, false);
    let batched = run_write_amp(&config, true, true);
    assert_eq!(baseline.writes, batched.writes, "same work distributed");
    let cut = 1.0 - batched.requests_per_epoch / baseline.requests_per_epoch;
    println!(
        "{provider:?}: per-path pops {:.1} req/epoch ({} epochs) vs chunked {:.1} req/epoch ({} epochs) — {:.0}% fewer",
        baseline.requests_per_epoch,
        baseline.epochs,
        batched.requests_per_epoch,
        batched.epochs,
        cut * 100.0,
    );
    assert!(
        cut >= 0.30,
        "{}: expected >=30% fewer system-store write requests per epoch from \
         chunked txq pops, got {:.1}% ({:.1} -> {:.1})",
        stamp(&config),
        cut * 100.0,
        baseline.requests_per_epoch,
        batched.requests_per_epoch,
    );
}

#[test]
fn aws_session_mark_batching_cuts_write_requests_by_30pct() {
    assert_marks_batching_cuts_30pct(Provider::Aws);
}

#[test]
fn gcp_session_mark_batching_cuts_write_requests_by_30pct() {
    assert_marks_batching_cuts_30pct(Provider::Gcp);
}

#[test]
fn aws_pop_batching_cuts_write_requests_by_30pct() {
    assert_pop_batching_cuts_30pct(Provider::Aws);
}

#[test]
fn gcp_pop_batching_cuts_write_requests_by_30pct() {
    assert_pop_batching_cuts_30pct(Provider::Gcp);
}

#[test]
fn binary_codec_is_at_least_1_5x_smaller_on_zipf_mix() {
    let cmp = compare_encoded_sizes(0x512E, 512);
    println!(
        "codec: {} records, json {} B vs binary {} B — {:.2}x smaller",
        cmp.records,
        cmp.json_bytes,
        cmp.binary_bytes,
        cmp.ratio(),
    );
    assert!(
        cmp.ratio() >= 1.5,
        "codec gate seed 0x512e: expected >=1.5x smaller encoded records: \
         json {} B vs binary {} B ({:.2}x)",
        cmp.json_bytes,
        cmp.binary_bytes,
        cmp.ratio(),
    );
}
