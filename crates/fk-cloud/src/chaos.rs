//! Seeded, deterministic fault injection for the simulated cloud.
//!
//! The paper's core robustness claim (§2.1, §3.6) is that FaaSKeeper
//! stays correct on infrastructure that is *allowed* to misbehave:
//! functions crash and are retried, queues deliver at least once, KV
//! transactions get cancelled, every service throttles. This module is
//! how the reproduction actually exercises those failure classes instead
//! of merely declaring them in [`crate::error::CloudError`].
//!
//! A [`FaultPlan`] describes, per fault point, a firing probability and
//! a total budget. A [`Chaos`] engine built from the plan is installed
//! on each service ([`crate::kvstore::KvStore`],
//! [`crate::objectstore::ObjectStore`], [`crate::queue::Queue`],
//! [`crate::faas::FaasRuntime`]) after construction; services consult it
//! at their operation boundaries. Decisions are drawn from the
//! requesting [`Ctx`]'s auxiliary RNG stream ([`Ctx::aux_roll`]), which
//! forks alongside the latency RNG but never mixes with it, so:
//!
//! * a failing schedule **replays from its seed** — same plan + same
//!   root seed + same request structure ⇒ the same per-request fault
//!   decisions, regardless of thread interleaving;
//! * enabling chaos never perturbs latency sampling, so a chaotic run
//!   and its fault-free twin draw identical latency streams;
//! * a **disabled plan draws nothing**: no engine is installed, no RNG
//!   is consumed, and the deployment is byte-identical to one built
//!   before this module existed.
//!
//! Budgets are shared atomics decremented *after* the probability roll,
//! so exhausting a budget never shifts any context's decision stream —
//! only whether a successful roll is converted into a fault, which near
//! exhaustion may depend on thread timing. That marginal nondeterminism
//! is confined to the final few faults of a bounded schedule and is the
//! price of keeping the hot path lock-free.
//!
//! [`CloudError::InjectedFault`] is constructed *only* here — a test
//! that sees one knows the chaos engine produced it.

use crate::error::CloudError;
use crate::trace::Ctx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The service-boundary fault points the engine can fire at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// KV conditional write / update / delete fails transiently.
    KvError,
    /// KV operation rejected with [`CloudError::Throttled`].
    KvThrottle,
    /// Multi-item KV transaction cancelled before applying anything.
    KvCancel,
    /// Object store PUT/GET/DELETE fails transiently.
    ObjError,
    /// Queue send / send-batch fails transiently (nothing enqueued).
    QueueError,
    /// A sent message is enqueued twice (at-least-once duplication).
    QueueDuplicate,
    /// A sent message's delivery is held back for a few receive polls.
    QueueDelay,
    /// Function sandbox crashes before the handler runs.
    FnCrashBefore,
    /// Function sandbox crashes *after* the handler ran: side effects
    /// are applied but the triggering batch is redelivered anyway.
    FnCrashAfter,
    /// A replica-feed `EpochDelta` frame is dropped before delivery to
    /// one replica (the feed log retains it for gap repair).
    FeedDrop,
    /// A replica-feed frame is delivered twice to one replica.
    FeedDuplicate,
    /// A replica-feed frame is held back and delivered *after* the next
    /// frame (out-of-order arrival at one replica).
    FeedDelay,
    /// Durable store: the fsync after a WAL append fails — the batch is
    /// not acknowledged and the engine repairs the log before retrying.
    DiskFsyncFail,
    /// Durable store: a WAL append tears mid-record, leaving a partial
    /// frame the CRC framing detects and truncates away.
    DiskWalTear,
    /// Durable store: an SST flush/compaction write stops partway; the
    /// garbage file is never referenced by the manifest.
    DiskSstPartial,
}

impl FaultKind {
    /// Stable label used in meters and error details.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::KvError => "kv_error",
            FaultKind::KvThrottle => "kv_throttle",
            FaultKind::KvCancel => "kv_cancel",
            FaultKind::ObjError => "obj_error",
            FaultKind::QueueError => "queue_error",
            FaultKind::QueueDuplicate => "queue_duplicate",
            FaultKind::QueueDelay => "queue_delay",
            FaultKind::FnCrashBefore => "fn_crash_before",
            FaultKind::FnCrashAfter => "fn_crash_after",
            FaultKind::FeedDrop => "feed_drop",
            FaultKind::FeedDuplicate => "feed_duplicate",
            FaultKind::FeedDelay => "feed_delay",
            FaultKind::DiskFsyncFail => "disk_fsync_fail",
            FaultKind::DiskWalTear => "disk_wal_tear",
            FaultKind::DiskSstPartial => "disk_sst_partial",
        }
    }

    /// All fault points, in a stable order.
    pub const ALL: [FaultKind; 15] = [
        FaultKind::KvError,
        FaultKind::KvThrottle,
        FaultKind::KvCancel,
        FaultKind::ObjError,
        FaultKind::QueueError,
        FaultKind::QueueDuplicate,
        FaultKind::QueueDelay,
        FaultKind::FnCrashBefore,
        FaultKind::FnCrashAfter,
        FaultKind::FeedDrop,
        FaultKind::FeedDuplicate,
        FaultKind::FeedDelay,
        FaultKind::DiskFsyncFail,
        FaultKind::DiskWalTear,
        FaultKind::DiskSstPartial,
    ];
}

/// One fault point's firing rate and total allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a passing operation trips this fault.
    pub prob: f64,
    /// Total times this fault may fire over the plan's lifetime
    /// (bounds retry amplification so hostile schedules still converge).
    pub budget: u64,
}

impl FaultSpec {
    /// A fault point that never fires (and never draws the RNG).
    pub const OFF: FaultSpec = FaultSpec {
        prob: 0.0,
        budget: 0,
    };

    /// A fault point firing with `prob` up to `budget` times.
    pub fn new(prob: f64, budget: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        FaultSpec { prob, budget }
    }

    /// True if this point can ever fire.
    pub fn enabled(&self) -> bool {
        self.prob > 0.0 && self.budget > 0
    }
}

/// A complete fault schedule: per-point specs plus the seed that names
/// it. The seed is *descriptive* — decisions are drawn from each
/// request's [`Ctx`] stream — but recording it on the plan is what makes
/// a failure report replayable ("seed 0x2A, plan standard").
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed identifying this schedule in logs and failure reports.
    pub seed: u64,
    /// Transient KV write/update/delete failure.
    pub kv_error: FaultSpec,
    /// KV throttling.
    pub kv_throttle: FaultSpec,
    /// KV transaction cancellation.
    pub kv_cancel: FaultSpec,
    /// Transient object store failure.
    pub obj_error: FaultSpec,
    /// Transient queue send failure.
    pub queue_error: FaultSpec,
    /// Duplicate enqueue of a sent message.
    pub queue_duplicate: FaultSpec,
    /// Delayed delivery of a sent message.
    pub queue_delay: FaultSpec,
    /// Sandbox crash before the handler.
    pub fn_crash_before: FaultSpec,
    /// Sandbox crash after the handler's side effects landed.
    pub fn_crash_after: FaultSpec,
    /// Dropped replica-feed frame.
    pub feed_drop: FaultSpec,
    /// Duplicated replica-feed frame.
    pub feed_duplicate: FaultSpec,
    /// Reordered (delayed) replica-feed frame.
    pub feed_delay: FaultSpec,
    /// Durable-store WAL fsync failure.
    pub disk_fsync_fail: FaultSpec,
    /// Durable-store torn WAL append.
    pub disk_wal_tear: FaultSpec,
    /// Durable-store partial SST write.
    pub disk_sst_partial: FaultSpec,
}

impl FaultPlan {
    /// The no-op plan: nothing fires, nothing is installed, nothing is
    /// drawn. A deployment configured with it is byte-identical to an
    /// untouched one.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            kv_error: FaultSpec::OFF,
            kv_throttle: FaultSpec::OFF,
            kv_cancel: FaultSpec::OFF,
            obj_error: FaultSpec::OFF,
            queue_error: FaultSpec::OFF,
            queue_duplicate: FaultSpec::OFF,
            queue_delay: FaultSpec::OFF,
            fn_crash_before: FaultSpec::OFF,
            fn_crash_after: FaultSpec::OFF,
            feed_drop: FaultSpec::OFF,
            feed_duplicate: FaultSpec::OFF,
            feed_delay: FaultSpec::OFF,
            disk_fsync_fail: FaultSpec::OFF,
            disk_wal_tear: FaultSpec::OFF,
            disk_sst_partial: FaultSpec::OFF,
        }
    }

    /// The standard hostile-cloud schedule used by the chaos gates:
    /// every fault class armed at a few percent with budgets that keep
    /// total retry amplification bounded.
    pub fn standard(seed: u64) -> Self {
        FaultPlan {
            seed,
            kv_error: FaultSpec::new(0.03, 40),
            kv_throttle: FaultSpec::new(0.02, 30),
            kv_cancel: FaultSpec::new(0.02, 12),
            obj_error: FaultSpec::new(0.03, 40),
            queue_error: FaultSpec::new(0.02, 25),
            queue_duplicate: FaultSpec::new(0.02, 20),
            queue_delay: FaultSpec::new(0.02, 20),
            fn_crash_before: FaultSpec::new(0.01, 10),
            fn_crash_after: FaultSpec::new(0.01, 10),
            feed_drop: FaultSpec::new(0.03, 20),
            feed_duplicate: FaultSpec::new(0.02, 15),
            feed_delay: FaultSpec::new(0.02, 15),
            disk_fsync_fail: FaultSpec::new(0.01, 8),
            disk_wal_tear: FaultSpec::new(0.01, 8),
            disk_sst_partial: FaultSpec::new(0.02, 8),
        }
    }

    /// True if any fault point can fire.
    pub fn enabled(&self) -> bool {
        FaultKind::ALL.iter().any(|k| self.spec(*k).enabled())
    }

    /// The spec for one fault point.
    pub fn spec(&self, kind: FaultKind) -> FaultSpec {
        match kind {
            FaultKind::KvError => self.kv_error,
            FaultKind::KvThrottle => self.kv_throttle,
            FaultKind::KvCancel => self.kv_cancel,
            FaultKind::ObjError => self.obj_error,
            FaultKind::QueueError => self.queue_error,
            FaultKind::QueueDuplicate => self.queue_duplicate,
            FaultKind::QueueDelay => self.queue_delay,
            FaultKind::FnCrashBefore => self.fn_crash_before,
            FaultKind::FnCrashAfter => self.fn_crash_after,
            FaultKind::FeedDrop => self.feed_drop,
            FaultKind::FeedDuplicate => self.feed_duplicate,
            FaultKind::FeedDelay => self.feed_delay,
            FaultKind::DiskFsyncFail => self.disk_fsync_fail,
            FaultKind::DiskWalTear => self.disk_wal_tear,
            FaultKind::DiskSstPartial => self.disk_sst_partial,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

/// The live engine: a plan plus remaining budgets and fired counts.
/// Cloning the `Arc` shares the budgets, so every service boundary
/// draws down the same allowance.
#[derive(Debug)]
pub struct Chaos {
    plan: FaultPlan,
    remaining: [AtomicU64; 15],
    fired: [AtomicU64; 15],
}

impl Chaos {
    /// Builds an engine from a plan. Returns `None` for a plan that can
    /// never fire — callers install nothing, keeping the disabled
    /// configuration byte-identical to an untouched deployment.
    pub fn from_plan(plan: FaultPlan) -> Option<Arc<Chaos>> {
        if !plan.enabled() {
            return None;
        }
        let remaining = FaultKind::ALL.map(|k| AtomicU64::new(plan.spec(k).budget));
        let fired = FaultKind::ALL.map(|_| AtomicU64::new(0));
        Some(Arc::new(Chaos {
            plan,
            remaining,
            fired,
        }))
    }

    /// The plan this engine runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn index(kind: FaultKind) -> usize {
        FaultKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL")
    }

    /// Decides whether `kind` fires for the operation running on `ctx`.
    ///
    /// The probability roll consumes the context's auxiliary stream
    /// *before* the budget check, so budget exhaustion never shifts any
    /// later decision in the same stream.
    pub fn fire(&self, ctx: &Ctx, kind: FaultKind) -> bool {
        let spec = self.plan.spec(kind);
        if !spec.enabled() {
            return false;
        }
        if ctx.aux_roll() >= spec.prob {
            return false;
        }
        let idx = Self::index(kind);
        let took = self.remaining[idx]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if took {
            self.fired[idx].fetch_add(1, Ordering::Relaxed);
        }
        took
    }

    /// How many times `kind` has fired.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.fired[Self::index(kind)].load(Ordering::Relaxed)
    }

    /// Total faults fired across all points.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The transient error surfaced when `kind` fires at an error-shaped
    /// fault point. This is the **only** constructor of
    /// [`CloudError::InjectedFault`] in the codebase.
    pub fn error(&self, kind: FaultKind) -> CloudError {
        CloudError::InjectedFault {
            detail: format!("chaos {} (plan seed {:#x})", kind.label(), self.plan.seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Ctx;

    #[test]
    fn disabled_plan_builds_no_engine() {
        assert!(Chaos::from_plan(FaultPlan::disabled()).is_none());
        assert!(!FaultPlan::disabled().enabled());
        assert!(FaultPlan::standard(1).enabled());
    }

    #[test]
    fn off_spec_never_draws_the_stream() {
        let mut plan = FaultPlan::disabled();
        plan.kv_error = FaultSpec::new(1.0, 5);
        let chaos = Chaos::from_plan(plan).unwrap();
        let ctx = Ctx::disabled();
        // An OFF point returns early without consuming the aux stream…
        assert!(!chaos.fire(&ctx, FaultKind::ObjError));
        // …so the armed point's first decision matches a fresh context's.
        let fresh = Ctx::disabled();
        assert_eq!(
            chaos.fire(&ctx, FaultKind::KvError),
            chaos.fire(&fresh, FaultKind::KvError)
        );
    }

    #[test]
    fn decisions_replay_from_the_seed() {
        let plan = FaultPlan::standard(42);
        let a = Chaos::from_plan(plan.clone()).unwrap();
        let b = Chaos::from_plan(plan).unwrap();
        let ctx_a = Ctx::disabled();
        let ctx_b = Ctx::disabled();
        for _ in 0..200 {
            assert_eq!(
                a.fire(&ctx_a, FaultKind::KvError),
                b.fire(&ctx_b, FaultKind::KvError)
            );
        }
    }

    #[test]
    fn budget_caps_total_fires() {
        let mut plan = FaultPlan::disabled();
        plan.queue_error = FaultSpec::new(1.0, 3);
        let chaos = Chaos::from_plan(plan).unwrap();
        let ctx = Ctx::disabled();
        let fired = (0..10)
            .filter(|_| chaos.fire(&ctx, FaultKind::QueueError))
            .count();
        assert_eq!(fired, 3);
        assert_eq!(chaos.fired(FaultKind::QueueError), 3);
        assert_eq!(chaos.total_fired(), 3);
    }

    /// The replica-feed fault points are armed in the standard plan and
    /// wired through the spec lookup like every other kind.
    #[test]
    fn feed_fault_points_are_armed_and_budgeted() {
        let plan = FaultPlan::standard(7);
        for kind in [
            FaultKind::FeedDrop,
            FaultKind::FeedDuplicate,
            FaultKind::FeedDelay,
        ] {
            assert!(plan.spec(kind).enabled(), "{} armed", kind.label());
        }
        assert!(!FaultPlan::disabled().feed_drop.enabled());
        let mut only_feed = FaultPlan::disabled();
        only_feed.feed_drop = FaultSpec::new(1.0, 2);
        let chaos = Chaos::from_plan(only_feed).unwrap();
        let ctx = Ctx::disabled();
        let fired = (0..5)
            .filter(|_| chaos.fire(&ctx, FaultKind::FeedDrop))
            .count();
        assert_eq!(fired, 2, "feed budgets cap like the rest");
    }

    /// The durable-store disk fault points are armed in the standard
    /// plan so the crash-recovery suite and chaos gates exercise them.
    #[test]
    fn disk_fault_points_are_armed_and_budgeted() {
        let plan = FaultPlan::standard(9);
        for kind in [
            FaultKind::DiskFsyncFail,
            FaultKind::DiskWalTear,
            FaultKind::DiskSstPartial,
        ] {
            assert!(plan.spec(kind).enabled(), "{} armed", kind.label());
        }
        assert!(!FaultPlan::disabled().disk_wal_tear.enabled());
        let mut only_disk = FaultPlan::disabled();
        only_disk.disk_fsync_fail = FaultSpec::new(1.0, 3);
        let chaos = Chaos::from_plan(only_disk).unwrap();
        let ctx = Ctx::disabled();
        let fired = (0..6)
            .filter(|_| chaos.fire(&ctx, FaultKind::DiskFsyncFail))
            .count();
        assert_eq!(fired, 3, "disk budgets cap like the rest");
    }

    #[test]
    fn injected_fault_is_retryable_and_names_the_seed() {
        let chaos = Chaos::from_plan(FaultPlan::standard(0xBEEF)).unwrap();
        let err = chaos.error(FaultKind::ObjError);
        assert!(err.is_retryable());
        assert!(err.to_string().contains("0xbeef"));
    }
}
