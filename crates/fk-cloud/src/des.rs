//! Minimal discrete-event simulator.
//!
//! The throughput experiments (Fig 6b: standard vs locked DynamoDB
//! updates; Fig 7b: queue-triggered invocation throughput) need
//! closed/open-loop load against capacity-limited service stations —
//! behaviour that per-request virtual time cannot express. This module
//! provides a small event loop plus a [`Station`] primitive (a
//! multi-server queueing station with sampled service times) on which the
//! benchmark harness builds those experiments.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// An event callback. Receives the user state and the scheduler.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

struct ScheduledEvent<S> {
    time: SimTime,
    action: EventFn<S>,
}

/// The scheduler half of the simulator: schedules future events.
pub struct Scheduler<S> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending: Vec<Option<ScheduledEvent<S>>>,
    free_slots: Vec<usize>,
    slot_of: std::collections::HashMap<(SimTime, u64), usize>,
    /// Deterministic RNG shared by all events.
    pub rng: SmallRng,
}

impl<S> Scheduler<S> {
    fn new(seed: u64) -> Self {
        Scheduler {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            pending: Vec::new(),
            free_slots: Vec::new(),
            slot_of: std::collections::HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `action` to run `delay` ns from now.
    pub fn schedule(
        &mut self,
        delay: SimTime,
        action: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    ) {
        let time = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        let ev = ScheduledEvent {
            time,
            action: Box::new(action),
        };
        let slot = if let Some(slot) = self.free_slots.pop() {
            self.pending[slot] = Some(ev);
            slot
        } else {
            self.pending.push(Some(ev));
            self.pending.len() - 1
        };
        self.slot_of.insert((time, seq), slot);
        self.heap.push(Reverse((time, seq)));
    }

    fn pop(&mut self) -> Option<ScheduledEvent<S>> {
        let Reverse(key) = self.heap.pop()?;
        let slot = self.slot_of.remove(&key).expect("scheduled event present");
        let ev = self.pending[slot].take().expect("event slot filled");
        self.free_slots.push(slot);
        self.now = ev.time;
        Some(ev)
    }
}

/// Runs the simulation until `until` (ns) or event exhaustion; returns the
/// final state.
pub fn run<S>(
    mut state: S,
    seed: u64,
    until: SimTime,
    init: impl FnOnce(&mut S, &mut Scheduler<S>),
) -> S {
    let mut sched = Scheduler::new(seed);
    init(&mut state, &mut sched);
    while let Some(ev) = sched.pop() {
        if ev.time > until {
            break;
        }
        (ev.action)(&mut state, &mut sched);
    }
    state
}

type ServiceFn = Box<dyn FnMut(&mut SmallRng) -> SimTime>;
type DoneFn<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

struct WaitingJob<S> {
    arrived: SimTime,
    service: ServiceFn,
    done: DoneFn<S>,
}

/// A multi-server FIFO queueing station: jobs wait for one of `servers`
/// slots, hold it for a sampled service time, then run a completion
/// callback. Models a storage/queue backend with bounded parallelism.
/// Waiting jobs are started directly when a server frees up — no polling.
pub struct Station<S> {
    servers: usize,
    busy: usize,
    waiting: VecDeque<WaitingJob<S>>,
    /// Completed job count.
    pub completed: u64,
    /// Sum of in-station sojourn times (ns) of completed jobs.
    pub total_sojourn_ns: u128,
}

impl<S: 'static> Station<S> {
    /// Creates a station with `servers` parallel servers.
    pub fn new(servers: usize) -> Self {
        Station {
            servers,
            busy: 0,
            waiting: VecDeque::new(),
            completed: 0,
            total_sojourn_ns: 0,
        }
    }

    /// Current queue length (waiting, not in service).
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Mean sojourn time of completed jobs, in ms.
    pub fn mean_sojourn_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_sojourn_ns as f64 / self.completed as f64 / 1e6
        }
    }
}

/// Submits a job to a station owned by the state.
///
/// `station` projects the station out of the state; `service_ns` samples a
/// service time; `done` runs when the job completes.
pub fn submit<S: 'static>(
    state: &mut S,
    sched: &mut Scheduler<S>,
    station: fn(&mut S) -> &mut Station<S>,
    service_ns: impl FnMut(&mut SmallRng) -> SimTime + 'static,
    done: impl FnOnce(&mut S, &mut Scheduler<S>) + 'static,
) {
    let now = sched.now();
    let st = station(state);
    if st.busy < st.servers {
        st.busy += 1;
        start_service(
            state,
            sched,
            station,
            now,
            Box::new(service_ns),
            Box::new(done),
        );
    } else {
        st.waiting.push_back(WaitingJob {
            arrived: now,
            service: Box::new(service_ns),
            done: Box::new(done),
        });
    }
}

fn start_service<S: 'static>(
    _state: &mut S,
    sched: &mut Scheduler<S>,
    station: fn(&mut S) -> &mut Station<S>,
    arrived: SimTime,
    mut service: ServiceFn,
    done: DoneFn<S>,
) {
    let dur = service(&mut sched.rng);
    sched.schedule(dur, move |state, sched| {
        let now = sched.now();
        let st = station(state);
        st.busy -= 1;
        st.completed += 1;
        st.total_sojourn_ns += (now - arrived) as u128;
        // Hand the freed server to the next waiting job, if any.
        if let Some(next) = st.waiting.pop_front() {
            st.busy += 1;
            start_service(state, sched, station, next.arrived, next.service, next.done);
        }
        done(state, sched);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    struct State {
        station: Station<State>,
        finished: u64,
    }

    fn station_of(s: &mut State) -> &mut Station<State> {
        &mut s.station
    }

    #[test]
    fn events_run_in_time_order() {
        let order = run(Vec::new(), 1, u64::MAX, |_state, sched| {
            sched.schedule(300, |s: &mut Vec<u32>, _| s.push(3));
            sched.schedule(100, |s: &mut Vec<u32>, _| s.push(1));
            sched.schedule(200, |s: &mut Vec<u32>, _| s.push(2));
        });
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_run_in_schedule_order() {
        let order = run(Vec::new(), 1, u64::MAX, |_state, sched| {
            sched.schedule(100, |s: &mut Vec<u32>, _| s.push(1));
            sched.schedule(100, |s: &mut Vec<u32>, _| s.push(2));
        });
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let times = run(Vec::new(), 1, u64::MAX, |_state, sched| {
            sched.schedule(50, |s: &mut Vec<u64>, sched| {
                s.push(sched.now());
                sched.schedule(25, |s: &mut Vec<u64>, sched| s.push(sched.now()));
            });
        });
        assert_eq!(times, vec![50, 75]);
    }

    #[test]
    fn run_until_cuts_off_late_events() {
        let order = run(Vec::new(), 1, 150, |_state, sched| {
            sched.schedule(100, |s: &mut Vec<u32>, _| s.push(1));
            sched.schedule(200, |s: &mut Vec<u32>, _| s.push(2));
        });
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn station_limits_parallelism() {
        // 1 server, 1 ms service, 3 jobs at t=0 → completions at 1,2,3 ms.
        let state = run(
            State {
                station: Station::new(1),
                finished: 0,
            },
            7,
            u64::MAX,
            |state, sched| {
                for _ in 0..3 {
                    submit(
                        state,
                        sched,
                        station_of,
                        |_| 1_000_000,
                        |s, _| {
                            s.finished += 1;
                        },
                    );
                }
            },
        );
        assert_eq!(state.finished, 3);
        assert_eq!(state.station.completed, 3);
        // Mean sojourn = (1 + 2 + 3)/3 = 2 ms exactly.
        assert!((state.station.mean_sojourn_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_station_runs_jobs_concurrently() {
        let state = run(
            State {
                station: Station::new(3),
                finished: 0,
            },
            7,
            u64::MAX,
            |state, sched| {
                for _ in 0..3 {
                    submit(
                        state,
                        sched,
                        station_of,
                        |_| 1_000_000,
                        |s, _| {
                            s.finished += 1;
                        },
                    );
                }
            },
        );
        assert_eq!(state.finished, 3);
        assert!((state.station.mean_sojourn_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn waiting_jobs_start_in_fifo_order() {
        let state = run(
            State {
                station: Station::new(1),
                finished: 0,
            },
            7,
            u64::MAX,
            |state, sched| {
                for i in 0..5u64 {
                    submit(
                        state,
                        sched,
                        station_of,
                        move |_| 1_000_000 + i, // distinguishable services
                        move |s, _| {
                            assert_eq!(s.finished, i, "completion order");
                            s.finished += 1;
                        },
                    );
                }
            },
        );
        assert_eq!(state.finished, 5);
        assert_eq!(state.station.queue_len(), 0);
    }

    #[test]
    fn high_load_terminates_quickly() {
        // Saturated station must not blow up the event count (regression
        // test for the old polling-based wait loop).
        let state = run(
            State {
                station: Station::new(2),
                finished: 0,
            },
            9,
            2_000_000_000,
            |state, sched| {
                fn arrival(state: &mut State, sched: &mut Scheduler<State>) {
                    submit(
                        state,
                        sched,
                        station_of,
                        |_| 5_000_000,
                        |s, _| {
                            s.finished += 1;
                        },
                    );
                    sched.schedule(100_000, arrival); // 10k arrivals/s >> capacity
                }
                arrival(state, sched);
            },
        );
        // Capacity = 2 / 5 ms = 400/s over 2 s = ~800 completions.
        assert!(
            state.finished >= 780 && state.finished <= 820,
            "{}",
            state.finished
        );
    }
}
