//! Error types shared by all simulated cloud services.

use std::fmt;

/// Errors returned by cloud service operations.
///
/// The variants mirror the failure classes of the real services the paper
/// builds on (DynamoDB conditional-check failures, SQS/Lambda throttling,
/// missing keys, payload limits) so that FaaSKeeper's error handling paths
/// are exercised the same way they would be against a real cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// A conditional update/put/delete found its condition unsatisfied.
    ConditionFailed {
        /// Human-readable description of the failed condition.
        detail: String,
    },
    /// The requested item/object/queue does not exist.
    NotFound {
        /// What was looked up.
        key: String,
    },
    /// A table/bucket/queue/function with this name already exists.
    AlreadyExists {
        /// The conflicting name.
        name: String,
    },
    /// Payload exceeds the service's per-item/message size limit.
    PayloadTooLarge {
        /// Size that was attempted.
        size: usize,
        /// The service's limit.
        limit: usize,
    },
    /// The service rejected the request due to throttling / capacity.
    Throttled,
    /// A multi-item transaction was cancelled (one of its conditions failed).
    TransactionCancelled {
        /// Index of the first failing element and its reason.
        index: usize,
        /// Reason for cancellation.
        detail: String,
    },
    /// A function invocation failed (after exhausting retries, when retried).
    FunctionFailed {
        /// Function name.
        function: String,
        /// Failure detail.
        detail: String,
    },
    /// Injected fault. Constructed **only** by the chaos engine
    /// ([`crate::chaos::Chaos::error`]); always transient, so
    /// [`CloudError::is_retryable`] classifies it retryable and the
    /// unified retry layer absorbs it like real throttling.
    InjectedFault {
        /// Description of the injected fault (names the fault point and
        /// the plan seed for replay).
        detail: String,
    },
    /// The operation is invalid for the stored data (e.g. ADD on a string).
    InvalidOperation {
        /// Description of the violation.
        detail: String,
    },
    /// The durable storage engine under a table failed to persist or
    /// recover data (I/O error, torn write, corruption). The mutation
    /// was **not** applied; I/O-class failures are transient (the
    /// engine repairs its log before the next append), so the error is
    /// classified retryable.
    StorageFailed {
        /// Engine-level failure description.
        detail: String,
    },
    /// The service has been shut down.
    ServiceStopped,
}

impl CloudError {
    /// True if this error is a conditional-check failure.
    pub fn is_condition_failed(&self) -> bool {
        matches!(self, CloudError::ConditionFailed { .. })
    }

    /// True if this error indicates a missing item/object.
    pub fn is_not_found(&self) -> bool {
        matches!(self, CloudError::NotFound { .. })
    }

    /// True if the error is transient and the caller may retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            CloudError::Throttled
                | CloudError::InjectedFault { .. }
                | CloudError::StorageFailed { .. }
        )
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::ConditionFailed { detail } => {
                write!(f, "conditional check failed: {detail}")
            }
            CloudError::NotFound { key } => write!(f, "not found: {key}"),
            CloudError::AlreadyExists { name } => write!(f, "already exists: {name}"),
            CloudError::PayloadTooLarge { size, limit } => {
                write!(f, "payload too large: {size} bytes (limit {limit})")
            }
            CloudError::Throttled => write!(f, "request throttled"),
            CloudError::TransactionCancelled { index, detail } => {
                write!(f, "transaction cancelled at element {index}: {detail}")
            }
            CloudError::FunctionFailed { function, detail } => {
                write!(f, "function {function} failed: {detail}")
            }
            CloudError::InjectedFault { detail } => write!(f, "injected fault: {detail}"),
            CloudError::InvalidOperation { detail } => write!(f, "invalid operation: {detail}"),
            CloudError::StorageFailed { detail } => {
                write!(f, "durable storage failed: {detail}")
            }
            CloudError::ServiceStopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for CloudError {}

/// Convenience alias used across all cloud services.
pub type CloudResult<T> = Result<T, CloudError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = CloudError::ConditionFailed {
            detail: "timestamp mismatch".into(),
        };
        assert_eq!(
            e.to_string(),
            "conditional check failed: timestamp mismatch"
        );
        assert!(e.is_condition_failed());
        assert!(!e.is_not_found());
    }

    #[test]
    fn retryability_classification() {
        assert!(CloudError::Throttled.is_retryable());
        assert!(!CloudError::NotFound { key: "k".into() }.is_retryable());
        assert!(CloudError::InjectedFault {
            detail: "chaos".into()
        }
        .is_retryable());
    }

    #[test]
    fn not_found_predicate() {
        assert!(CloudError::NotFound { key: "x".into() }.is_not_found());
        assert!(!CloudError::Throttled.is_not_found());
    }
}
