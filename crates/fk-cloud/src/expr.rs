//! Condition and update expressions for the key-value store.
//!
//! This is the semantic core the paper's synchronization primitives rest
//! on (§2.1, §3.3): DynamoDB-style *conditional updates* that atomically
//! read-check-modify a single item. Timed locks are conditional timestamp
//! swaps, atomic counters are `ADD`, and atomic lists are
//! `list_append` / list-remove — each "requires a single write to a single
//! item" as the paper puts it.

use crate::error::{CloudError, CloudResult};
use crate::value::{Item, Value};

/// Right-hand side of a `SET` action.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A literal value.
    Value(Value),
    /// The current value of an attribute.
    Attr(String),
    /// Numeric sum of two operands (`a + 1` style arithmetic).
    Plus(Box<Operand>, Box<Operand>),
    /// `if_not_exists(attr, fallback)`.
    IfNotExists(String, Box<Operand>),
}

impl Operand {
    /// Literal convenience constructor.
    pub fn lit(v: impl Into<Value>) -> Self {
        Operand::Value(v.into())
    }

    /// Attribute reference convenience constructor.
    pub fn attr(name: impl Into<String>) -> Self {
        Operand::Attr(name.into())
    }

    fn eval(&self, item: &Item) -> CloudResult<Value> {
        match self {
            Operand::Value(v) => Ok(v.clone()),
            Operand::Attr(name) => {
                item.get(name)
                    .cloned()
                    .ok_or_else(|| CloudError::InvalidOperation {
                        detail: format!("attribute {name} does not exist"),
                    })
            }
            Operand::Plus(a, b) => {
                let (a, b) = (a.eval(item)?, b.eval(item)?);
                match (a.as_num(), b.as_num()) {
                    (Some(x), Some(y)) => Ok(Value::Num(x + y)),
                    _ => Err(CloudError::InvalidOperation {
                        detail: "plus requires numeric operands".into(),
                    }),
                }
            }
            Operand::IfNotExists(name, fallback) => match item.get(name) {
                Some(v) => Ok(v.clone()),
                None => fallback.eval(item),
            },
        }
    }
}

/// A single update action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `SET attr = operand`.
    Set(String, Operand),
    /// `ADD attr n` — atomic numeric increment, creating the attribute at
    /// `n` if absent (the paper's *atomic counter*).
    Add(String, i64),
    /// `REMOVE attr`.
    Remove(String),
    /// `SET attr = list_append(attr, values)` — the paper's *atomic list*
    /// expansion; creates the list if absent.
    ListAppend(String, Vec<Value>),
    /// Removes all occurrences of the given values from a list (*atomic
    /// list truncation*).
    ListRemove(String, Vec<Value>),
    /// Removes the first `n` elements of a list (popping the processed
    /// head of a per-node transaction queue, Algorithm 2 ➎).
    ListPopFront(String, usize),
}

/// An update expression: a sequence of actions applied atomically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Update {
    /// Actions applied in order.
    pub actions: Vec<Action>,
}

impl Update {
    /// Empty update.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `SET attr = value` action.
    pub fn set(mut self, attr: impl Into<String>, value: impl Into<Value>) -> Self {
        self.actions
            .push(Action::Set(attr.into(), Operand::Value(value.into())));
        self
    }

    /// Adds a `SET attr = operand` action with computed right-hand side.
    pub fn set_expr(mut self, attr: impl Into<String>, operand: Operand) -> Self {
        self.actions.push(Action::Set(attr.into(), operand));
        self
    }

    /// Adds an `ADD attr n` action.
    pub fn add(mut self, attr: impl Into<String>, n: i64) -> Self {
        self.actions.push(Action::Add(attr.into(), n));
        self
    }

    /// Adds a `REMOVE attr` action.
    pub fn remove(mut self, attr: impl Into<String>) -> Self {
        self.actions.push(Action::Remove(attr.into()));
        self
    }

    /// Adds a list-append action.
    pub fn list_append(mut self, attr: impl Into<String>, values: Vec<Value>) -> Self {
        self.actions.push(Action::ListAppend(attr.into(), values));
        self
    }

    /// Adds a list-remove-values action.
    pub fn list_remove(mut self, attr: impl Into<String>, values: Vec<Value>) -> Self {
        self.actions.push(Action::ListRemove(attr.into(), values));
        self
    }

    /// Adds a list-pop-front action.
    pub fn list_pop_front(mut self, attr: impl Into<String>, n: usize) -> Self {
        self.actions.push(Action::ListPopFront(attr.into(), n));
        self
    }

    /// Applies all actions to `item` in order. On error the item may be
    /// partially modified; the store applies updates to a scratch copy to
    /// preserve atomicity.
    pub fn apply(&self, item: &mut Item) -> CloudResult<()> {
        for action in &self.actions {
            match action {
                Action::Set(attr, operand) => {
                    let v = operand.eval(item)?;
                    item.set(attr.clone(), v);
                }
                Action::Add(attr, n) => match item.get(attr) {
                    None => {
                        item.set(attr.clone(), Value::Num(*n));
                    }
                    Some(Value::Num(cur)) => {
                        let next = cur + n;
                        item.set(attr.clone(), Value::Num(next));
                    }
                    Some(other) => {
                        return Err(CloudError::InvalidOperation {
                            detail: format!("ADD on non-numeric attribute ({})", other.type_name()),
                        })
                    }
                },
                Action::Remove(attr) => {
                    item.remove(attr);
                }
                Action::ListAppend(attr, values) => match item.get_mut(attr) {
                    None => {
                        item.set(attr.clone(), Value::List(values.clone()));
                    }
                    Some(Value::List(list)) => list.extend(values.iter().cloned()),
                    Some(other) => {
                        return Err(CloudError::InvalidOperation {
                            detail: format!(
                                "list_append on non-list attribute ({})",
                                other.type_name()
                            ),
                        })
                    }
                },
                Action::ListRemove(attr, values) => match item.get_mut(attr) {
                    None => {}
                    Some(Value::List(list)) => list.retain(|v| !values.contains(v)),
                    Some(other) => {
                        return Err(CloudError::InvalidOperation {
                            detail: format!(
                                "list remove on non-list attribute ({})",
                                other.type_name()
                            ),
                        })
                    }
                },
                Action::ListPopFront(attr, n) => match item.get_mut(attr) {
                    None => {}
                    Some(Value::List(list)) => {
                        list.drain(..(*n).min(list.len()));
                    }
                    Some(other) => {
                        return Err(CloudError::InvalidOperation {
                            detail: format!(
                                "list pop on non-list attribute ({})",
                                other.type_name()
                            ),
                        })
                    }
                },
            }
        }
        Ok(())
    }
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A condition expression evaluated against the *current* item state
/// before an update/put/delete is applied.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Unconditional.
    Always,
    /// The item itself exists.
    ItemExists,
    /// The item does not exist.
    ItemNotExists,
    /// `attribute_exists(attr)`.
    Exists(String),
    /// `attribute_not_exists(attr)`.
    NotExists(String),
    /// `attr <cmp> value`; false if the attribute is missing or of a
    /// different type.
    Compare(Cmp, String, Value),
    /// List attribute contains the value.
    Contains(String, Value),
    /// First element of a list attribute equals the value (per-node
    /// transaction-queue head check, Algorithm 2 ➊).
    ListHeadEq(String, Value),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
}

impl Condition {
    /// `attr = value` convenience constructor.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Compare(Cmp::Eq, attr.into(), value.into())
    }

    /// `attr < value` convenience constructor.
    pub fn lt(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Compare(Cmp::Lt, attr.into(), value.into())
    }

    /// `attr <= value` convenience constructor.
    pub fn le(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Compare(Cmp::Le, attr.into(), value.into())
    }

    /// `attr > value` convenience constructor.
    pub fn gt(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Compare(Cmp::Gt, attr.into(), value.into())
    }

    /// `a AND b` convenience constructor.
    pub fn and(self, other: Condition) -> Self {
        match self {
            Condition::And(mut v) => {
                v.push(other);
                Condition::And(v)
            }
            first => Condition::And(vec![first, other]),
        }
    }

    /// `a OR b` convenience constructor.
    pub fn or(self, other: Condition) -> Self {
        match self {
            Condition::Or(mut v) => {
                v.push(other);
                Condition::Or(v)
            }
            first => Condition::Or(vec![first, other]),
        }
    }

    /// Evaluates against an item state (`None` = item absent).
    pub fn eval(&self, item: Option<&Item>) -> bool {
        match self {
            Condition::Always => true,
            Condition::ItemExists => item.is_some(),
            Condition::ItemNotExists => item.is_none(),
            Condition::Exists(attr) => item.map(|i| i.contains(attr)).unwrap_or(false),
            Condition::NotExists(attr) => item.map(|i| !i.contains(attr)).unwrap_or(true),
            Condition::Compare(cmp, attr, value) => {
                let Some(cur) = item.and_then(|i| i.get(attr)) else {
                    return false;
                };
                if std::mem::discriminant(cur) != std::mem::discriminant(value) {
                    return false;
                }
                match cmp {
                    Cmp::Eq => cur == value,
                    Cmp::Ne => cur != value,
                    Cmp::Lt => cur < value,
                    Cmp::Le => cur <= value,
                    Cmp::Gt => cur > value,
                    Cmp::Ge => cur >= value,
                }
            }
            Condition::Contains(attr, value) => item
                .and_then(|i| i.list(attr))
                .map(|l| l.contains(value))
                .unwrap_or(false),
            Condition::ListHeadEq(attr, value) => item
                .and_then(|i| i.list(attr))
                .and_then(|l| l.first())
                .map(|head| head == value)
                .unwrap_or(false),
            Condition::Not(inner) => !inner.eval(item),
            Condition::And(conds) => conds.iter().all(|c| c.eval(item)),
            Condition::Or(conds) => conds.iter().any(|c| c.eval(item)),
        }
    }

    /// Human-readable description used in `ConditionFailed` errors.
    pub fn describe(&self) -> String {
        format!("{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_add_actions() {
        let mut item = Item::new().with("count", 5i64);
        Update::new()
            .set("name", "zk")
            .add("count", 3)
            .apply(&mut item)
            .unwrap();
        assert_eq!(item.str("name"), Some("zk"));
        assert_eq!(item.num("count"), Some(8));
    }

    #[test]
    fn add_creates_missing_attribute() {
        let mut item = Item::new();
        Update::new().add("ctr", 7).apply(&mut item).unwrap();
        assert_eq!(item.num("ctr"), Some(7));
    }

    #[test]
    fn add_rejects_non_numeric() {
        let mut item = Item::new().with("s", "text");
        let err = Update::new().add("s", 1).apply(&mut item).unwrap_err();
        assert!(matches!(err, CloudError::InvalidOperation { .. }));
    }

    #[test]
    fn list_append_and_remove() {
        let mut item = Item::new();
        Update::new()
            .list_append("watches", vec![Value::Num(1), Value::Num(2)])
            .apply(&mut item)
            .unwrap();
        Update::new()
            .list_append("watches", vec![Value::Num(3)])
            .list_remove("watches", vec![Value::Num(1)])
            .apply(&mut item)
            .unwrap();
        assert_eq!(
            item.list("watches").unwrap(),
            &[Value::Num(2), Value::Num(3)]
        );
    }

    #[test]
    fn list_pop_front_bounds() {
        let mut item = Item::new().with("txq", vec![Value::Num(1), Value::Num(2), Value::Num(3)]);
        Update::new()
            .list_pop_front("txq", 2)
            .apply(&mut item)
            .unwrap();
        assert_eq!(item.list("txq").unwrap(), &[Value::Num(3)]);
        Update::new()
            .list_pop_front("txq", 10)
            .apply(&mut item)
            .unwrap();
        assert!(item.list("txq").unwrap().is_empty());
    }

    #[test]
    fn operand_arithmetic() {
        let mut item = Item::new().with("v", 10i64);
        Update::new()
            .set_expr(
                "v2",
                Operand::Plus(Box::new(Operand::attr("v")), Box::new(Operand::lit(5i64))),
            )
            .apply(&mut item)
            .unwrap();
        assert_eq!(item.num("v2"), Some(15));
    }

    #[test]
    fn if_not_exists_fallback() {
        let mut item = Item::new();
        Update::new()
            .set_expr(
                "x",
                Operand::IfNotExists("x".into(), Box::new(Operand::lit(1i64))),
            )
            .apply(&mut item)
            .unwrap();
        assert_eq!(item.num("x"), Some(1));
        Update::new()
            .set_expr(
                "x",
                Operand::IfNotExists("x".into(), Box::new(Operand::lit(99i64))),
            )
            .apply(&mut item)
            .unwrap();
        assert_eq!(item.num("x"), Some(1));
    }

    #[test]
    fn conditions_on_missing_item() {
        assert!(Condition::ItemNotExists.eval(None));
        assert!(!Condition::ItemExists.eval(None));
        assert!(Condition::NotExists("a".into()).eval(None));
        assert!(!Condition::Exists("a".into()).eval(None));
        assert!(!Condition::eq("a", 1i64).eval(None));
    }

    #[test]
    fn comparison_semantics() {
        let item = Item::new().with("ts", 100i64);
        assert!(Condition::eq("ts", 100i64).eval(Some(&item)));
        assert!(Condition::lt("ts", 101i64).eval(Some(&item)));
        assert!(Condition::gt("ts", 99i64).eval(Some(&item)));
        assert!(Condition::le("ts", 100i64).eval(Some(&item)));
        // type mismatch → false
        assert!(!Condition::eq("ts", "100").eval(Some(&item)));
    }

    #[test]
    fn boolean_combinators() {
        let item = Item::new().with("a", 1i64).with("b", 2i64);
        let c = Condition::eq("a", 1i64).and(Condition::eq("b", 2i64));
        assert!(c.eval(Some(&item)));
        let c2 = Condition::eq("a", 9i64).or(Condition::eq("b", 2i64));
        assert!(c2.eval(Some(&item)));
        assert!(Condition::Not(Box::new(Condition::eq("a", 9i64))).eval(Some(&item)));
    }

    #[test]
    fn list_head_condition() {
        let item = Item::new().with("txq", vec![Value::Num(7), Value::Num(8)]);
        assert!(Condition::ListHeadEq("txq".into(), Value::Num(7)).eval(Some(&item)));
        assert!(!Condition::ListHeadEq("txq".into(), Value::Num(8)).eval(Some(&item)));
        let empty = Item::new().with("txq", Vec::<Value>::new());
        assert!(!Condition::ListHeadEq("txq".into(), Value::Num(7)).eval(Some(&empty)));
    }

    #[test]
    fn contains_condition() {
        let item = Item::new().with("l", vec![Value::Str("x".into())]);
        assert!(Condition::Contains("l".into(), Value::Str("x".into())).eval(Some(&item)));
        assert!(!Condition::Contains("l".into(), Value::Str("y".into())).eval(Some(&item)));
    }
}
