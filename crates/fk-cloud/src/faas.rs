//! Simulated FaaS runtime (Lambda / Cloud Functions equivalent).
//!
//! Implements the three function classes the paper identifies (§2.1):
//!
//! * **free functions** — synchronously invocable RPCs
//!   ([`FaasRuntime::invoke_direct`] / [`FaasRuntime::invoke_async`]),
//! * **event functions** — queue-triggered consumers with batching and a
//!   configurable concurrency limit
//!   ([`FaasRuntime::attach_queue_trigger`]),
//! * **scheduled functions** — cron-style periodic invocations
//!   ([`FaasRuntime::attach_schedule`]).
//!
//! The runtime models warm/cold sandboxes, memory-scaled execution
//! environments, retry-with-redelivery on failure (the queue's
//! visibility-timeout machinery), and GB-second metering.

use crate::chaos::{Chaos, FaultKind};
use crate::error::{CloudError, CloudResult};
use crate::latency::{Arch, ExecEnv, LatencyModel};
use crate::metering::Meter;
use crate::ops::Op;
use crate::queue::{AdaptiveBatch, Message, Queue};
use crate::region::Region;
use crate::trace::Ctx;
use crate::trace::LatencyMode;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failure returned by a function handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnError {
    /// What went wrong.
    pub detail: String,
    /// For batch events: index of the first unprocessed message; earlier
    /// messages are acknowledged, this one and later ones are redelivered.
    pub failed_index: usize,
    /// Whether redelivery should be attempted.
    pub retryable: bool,
    /// The function *deferred* the remaining messages rather than failing
    /// on them (it cannot process them yet — e.g. an ordering
    /// prerequisite on another queue has not landed). Deferred messages
    /// are returned with [`crate::queue::Queue::nack_deferred`], so they
    /// never burn redelivery attempts toward the dead-letter queue.
    pub deferred: bool,
}

impl FnError {
    /// A retryable failure starting at batch index 0.
    pub fn retryable(detail: impl Into<String>) -> Self {
        FnError {
            detail: detail.into(),
            failed_index: 0,
            retryable: true,
            deferred: false,
        }
    }

    /// A retryable *deferral* starting at batch index 0: redeliver, but
    /// without counting an attempt (see [`FnError::deferred`]).
    pub fn defer(detail: impl Into<String>) -> Self {
        FnError {
            deferred: true,
            ..Self::retryable(detail)
        }
    }

    /// A non-retryable failure.
    pub fn fatal(detail: impl Into<String>) -> Self {
        FnError {
            detail: detail.into(),
            failed_index: 0,
            retryable: false,
            deferred: false,
        }
    }

    /// Sets the first failed batch index.
    pub fn at_index(mut self, index: usize) -> Self {
        self.failed_index = index;
        self
    }
}

/// The event a function is invoked with.
#[derive(Debug, Clone)]
pub enum Event {
    /// A batch of queue messages (event functions).
    Queue {
        /// Messages in delivery order.
        messages: Vec<Message>,
    },
    /// A direct invocation payload (free functions).
    Direct {
        /// Request payload.
        payload: Bytes,
    },
    /// A scheduled tick (scheduled functions).
    Scheduled {
        /// Monotonic tick counter.
        tick: u64,
    },
}

/// Handler interface implemented by function bodies.
pub trait Handler: Send + Sync + 'static {
    /// Processes one event. The `ctx` is pre-configured with the
    /// function's execution environment; all cloud calls made through it
    /// are charged to this invocation.
    fn handle(&self, ctx: &Ctx, event: &Event) -> Result<Bytes, FnError>;
}

impl<F> Handler for F
where
    F: Fn(&Ctx, &Event) -> Result<Bytes, FnError> + Send + Sync + 'static,
{
    fn handle(&self, ctx: &Ctx, event: &Event) -> Result<Bytes, FnError> {
        self(ctx, event)
    }
}

/// Per-function deployment configuration (§5.3.2 explores these knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionConfig {
    /// Memory allocation in MB (drives I/O and CPU share).
    pub memory_mb: u32,
    /// CPU architecture.
    pub arch: Arch,
    /// Optional explicit vCPU allocation (GCP-style); `None` derives it
    /// from memory like Lambda.
    pub cpu_alloc: Option<f64>,
    /// How long an idle sandbox stays warm.
    pub warm_ttl: Duration,
}

impl FunctionConfig {
    /// The paper's default configuration (2048 MB, x86).
    pub fn default_2048() -> Self {
        FunctionConfig {
            memory_mb: 2048,
            arch: Arch::X86,
            cpu_alloc: None,
            warm_ttl: Duration::from_secs(600),
        }
    }

    /// Builder: memory size.
    pub fn with_memory(mut self, memory_mb: u32) -> Self {
        self.memory_mb = memory_mb;
        self
    }

    /// Builder: architecture.
    pub fn with_arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// The execution environment this configuration yields.
    pub fn env(&self) -> ExecEnv {
        let mut env = ExecEnv::function(self.memory_mb).with_arch(self.arch);
        if let Some(cpu) = self.cpu_alloc {
            env = env.with_cpu_alloc(cpu);
        }
        env
    }
}

impl Default for FunctionConfig {
    fn default() -> Self {
        Self::default_2048()
    }
}

struct FunctionEntry {
    name: String,
    config: FunctionConfig,
    handler: Arc<dyn Handler>,
    /// Idle warm sandboxes, stored as their last-use instants.
    warm: Mutex<Vec<Instant>>,
    /// Number of pre-handler crashes still to inject.
    injected_crashes: AtomicU64,
    cold_starts: AtomicU64,
    warm_starts: AtomicU64,
}

impl FunctionEntry {
    /// Acquire a sandbox; true = warm.
    fn acquire_sandbox(&self) -> bool {
        let mut warm = self.warm.lock();
        let now = Instant::now();
        let ttl = self.config.warm_ttl;
        warm.retain(|last| now.duration_since(*last) < ttl);
        if warm.pop().is_some() {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.cold_starts.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    fn release_sandbox(&self) {
        self.warm.lock().push(Instant::now());
    }
}

/// How a queue trigger sizes its receive batches: pinned, or driven by a
/// shared [`AdaptiveBatch`] controller.
#[derive(Clone)]
enum BatchWindow {
    Fixed(usize),
    Adaptive(Arc<AdaptiveBatch>),
}

impl BatchWindow {
    fn size(&self) -> usize {
        match self {
            BatchWindow::Fixed(n) => *n,
            BatchWindow::Adaptive(ctrl) => ctrl.window(),
        }
    }

    /// Feeds one drain observation back to the controller. The
    /// observation happens at dispatch time — a later nack only delays
    /// redelivery, which the next drain sees as backlog again.
    fn observe(&self, drained: usize, backlog: usize) {
        if let BatchWindow::Adaptive(ctrl) = self {
            ctrl.observe(drained, backlog);
        }
    }
}

type FailureHook = Box<dyn Fn(&str, &FnError) + Send + Sync>;

struct RuntimeInner {
    model: Arc<LatencyModel>,
    mode: LatencyMode,
    meter: Meter,
    region: Region,
    functions: Mutex<HashMap<String, Arc<FunctionEntry>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: AtomicBool,
    seed: AtomicU64,
    /// Invoked when a function fails non-retryably or exhausts retries —
    /// the paper's "users should be notified of repeated errors" (§2.1).
    failure_hook: Mutex<Option<FailureHook>>,
    chaos: std::sync::OnceLock<Arc<Chaos>>,
}

/// The function runtime. Cloning shares the runtime.
#[derive(Clone)]
pub struct FaasRuntime {
    inner: Arc<RuntimeInner>,
}

impl FaasRuntime {
    /// Creates a runtime.
    pub fn new(model: Arc<LatencyModel>, mode: LatencyMode, region: Region, meter: Meter) -> Self {
        FaasRuntime {
            inner: Arc::new(RuntimeInner {
                model,
                mode,
                meter,
                region,
                functions: Mutex::new(HashMap::new()),
                workers: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
                seed: AtomicU64::new(0x5eed),
                failure_hook: Mutex::new(None),
                chaos: std::sync::OnceLock::new(),
            }),
        }
    }

    /// Installs the chaos engine (at most once). Queue-triggered
    /// invocations then pass the crash-before / crash-after fault
    /// points; both lean on the queue's redelivery machinery, so a
    /// crashed invocation is retried exactly the way a real provider
    /// retries a crashed sandbox.
    pub fn install_chaos(&self, chaos: Arc<Chaos>) {
        let _ = self.inner.chaos.set(chaos);
    }

    /// A zero-latency runtime for functional tests.
    pub fn disabled(region: Region, meter: Meter) -> Self {
        Self::new(
            Arc::new(LatencyModel::zero()),
            LatencyMode::Disabled,
            region,
            meter,
        )
    }

    /// Registers a function.
    pub fn register(
        &self,
        name: impl Into<String>,
        config: FunctionConfig,
        handler: impl Handler,
    ) -> CloudResult<()> {
        let name = name.into();
        let mut fns = self.inner.functions.lock();
        if fns.contains_key(&name) {
            return Err(CloudError::AlreadyExists { name });
        }
        fns.insert(
            name.clone(),
            Arc::new(FunctionEntry {
                name,
                config,
                handler: Arc::new(handler),
                warm: Mutex::new(Vec::new()),
                injected_crashes: AtomicU64::new(0),
                cold_starts: AtomicU64::new(0),
                warm_starts: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    /// Sets the repeated-error notification hook.
    pub fn set_failure_hook(&self, hook: impl Fn(&str, &FnError) + Send + Sync + 'static) {
        *self.inner.failure_hook.lock() = Some(Box::new(hook));
    }

    /// Injects `n` pre-handler crashes into the named function: its next
    /// `n` invocations fail retryably before doing any work.
    pub fn inject_crashes(&self, name: &str, n: u64) -> CloudResult<()> {
        let entry = self.entry(name)?;
        entry.injected_crashes.fetch_add(n, Ordering::SeqCst);
        Ok(())
    }

    /// `(cold, warm)` start counts of a function.
    pub fn start_counts(&self, name: &str) -> CloudResult<(u64, u64)> {
        let entry = self.entry(name)?;
        Ok((
            entry.cold_starts.load(Ordering::Relaxed),
            entry.warm_starts.load(Ordering::Relaxed),
        ))
    }

    fn entry(&self, name: &str) -> CloudResult<Arc<FunctionEntry>> {
        self.inner
            .functions
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| CloudError::NotFound {
                key: format!("function {name}"),
            })
    }

    /// Creates a fresh invocation context carrying virtual time `vt_ns`.
    fn invocation_ctx(&self, entry: &FunctionEntry, vt_ns: u64) -> Ctx {
        let seed = self.inner.seed.fetch_add(1, Ordering::Relaxed);
        let ctx = Ctx::new(Arc::clone(&self.inner.model), self.inner.mode, seed);
        ctx.set_region(self.inner.region);
        ctx.set_env(entry.config.env());
        ctx.merge_time_ns(vt_ns);
        ctx
    }

    /// Runs the handler in a sandbox on the given context, charging
    /// start-up overheads and GB-seconds.
    fn run_in_sandbox(
        &self,
        entry: &FunctionEntry,
        ctx: &Ctx,
        event: &Event,
    ) -> Result<Bytes, FnError> {
        let warm = entry.acquire_sandbox();
        if warm {
            ctx.charge(Op::FnWarmOverhead, 0);
        } else {
            ctx.charge(Op::FnColdStart, 0);
        }
        let start_vt = ctx.now();
        let start_real = Instant::now();
        let injected = entry
            .injected_crashes
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        let result = if injected {
            Err(FnError::retryable("injected sandbox crash"))
        } else {
            entry.handler.handle(ctx, event)
        };
        entry.release_sandbox();
        // Bill wall time: virtual when simulating latencies, real otherwise.
        let elapsed = match self.inner.mode {
            LatencyMode::Disabled => start_real.elapsed(),
            _ => ctx.now().saturating_sub(start_vt),
        };
        self.inner
            .meter
            .fn_invocation(entry.config.memory_mb, elapsed);
        result
    }

    /// Synchronously invokes a free function from `caller` (an RPC; §2.1).
    pub fn invoke_direct(&self, caller: &Ctx, name: &str, payload: Bytes) -> CloudResult<Bytes> {
        let entry = self.entry(name)?;
        caller.charge_to(Op::FnInvokeDirect, payload.len(), self.inner.region);
        let ctx = self.invocation_ctx(&entry, caller.now_ns());
        let result = self.run_in_sandbox(&entry, &ctx, &Event::Direct { payload });
        caller.merge_time_ns(ctx.now_ns());
        result.map_err(|e| {
            self.notify_failure(&entry.name, &e);
            CloudError::FunctionFailed {
                function: entry.name.clone(),
                detail: e.detail,
            }
        })
    }

    /// Asynchronously invokes a free function; returns a receiver for the
    /// result (the leader's parallel watch dispatch uses this, Alg. 2 ➍).
    pub fn invoke_async(
        &self,
        caller: &Ctx,
        name: &str,
        payload: Bytes,
    ) -> CloudResult<crossbeam::channel::Receiver<Result<Bytes, FnError>>> {
        let entry = self.entry(name)?;
        caller.charge_to(Op::FnInvokeDirect, payload.len(), self.inner.region);
        let (tx, rx) = crossbeam::channel::bounded(1);
        let runtime = self.clone();
        let vt = caller.now_ns();
        let handle = std::thread::spawn(move || {
            let ctx = runtime.invocation_ctx(&entry, vt);
            let result = runtime.run_in_sandbox(&entry, &ctx, &Event::Direct { payload });
            if let Err(e) = &result {
                runtime.notify_failure(&entry.name, e);
            }
            let _ = tx.send(result);
        });
        self.inner.workers.lock().push(handle);
        Ok(rx)
    }

    /// Attaches a queue trigger: `concurrency` pollers consume batches of
    /// up to `batch_size` messages and invoke the function. FIFO queues
    /// additionally serialize per message group regardless of
    /// `concurrency` (requirement (c), §3.1).
    pub fn attach_queue_trigger(
        &self,
        name: &str,
        queue: Queue,
        batch_size: usize,
        concurrency: usize,
    ) -> CloudResult<()> {
        self.attach_trigger_inner(name, queue, BatchWindow::Fixed(batch_size), concurrency)
    }

    /// Attaches a queue trigger whose batch window rides an
    /// [`AdaptiveBatch`] controller instead of a fixed size: each poll
    /// asks for the controller's current window, and after each batch the
    /// controller observes how much was drained against the remaining
    /// backlog. `concurrency` pollers share one controller, so the window
    /// reflects the aggregate consumption rate.
    pub fn attach_queue_trigger_adaptive(
        &self,
        name: &str,
        queue: Queue,
        batch: Arc<AdaptiveBatch>,
        concurrency: usize,
    ) -> CloudResult<()> {
        self.attach_trigger_inner(name, queue, BatchWindow::Adaptive(batch), concurrency)
    }

    fn attach_trigger_inner(
        &self,
        name: &str,
        queue: Queue,
        window: BatchWindow,
        concurrency: usize,
    ) -> CloudResult<()> {
        let entry = self.entry(name)?;
        for _ in 0..concurrency.max(1) {
            let runtime = self.clone();
            let entry = Arc::clone(&entry);
            let queue = queue.clone();
            let window = window.clone();
            let handle = std::thread::spawn(move || {
                runtime.trigger_loop(entry, queue, window);
            });
            self.inner.workers.lock().push(handle);
        }
        Ok(())
    }

    fn trigger_loop(&self, entry: Arc<FunctionEntry>, queue: Queue, window: BatchWindow) {
        let visibility = Duration::from_secs(30);
        while !self.inner.stop.load(Ordering::Relaxed) {
            let poll = Duration::from_millis(50);
            let batch_size = window.size();
            // Batch sizes past the provider's per-receive cap opt into the
            // batch-window drain (the leader's epoch batches, §distributor).
            let batch_window = batch_size > queue.kind().max_batch();
            let received = if batch_window {
                queue.receive_up_to_timeout(batch_size, visibility, poll)
            } else {
                queue.receive_timeout(batch_size, visibility, poll)
            };
            let Some(batch) = received else {
                if queue.is_closed() {
                    return;
                }
                window.observe(0, queue.pending());
                continue;
            };
            window.observe(batch.messages.len(), queue.pending());
            let max_vt = batch
                .messages
                .iter()
                .map(|m| m.sent_vt_ns)
                .max()
                .unwrap_or(0);
            let ctx = self.invocation_ctx(&entry, max_vt);
            let bytes: usize = batch.messages.iter().map(|m| m.body.len()).sum();
            ctx.charge(Op::QueueDispatch(queue.kind()), bytes);
            // Crash-before: the sandbox dies before the handler runs —
            // no side effects, the whole batch is redelivered.
            if let Some(chaos) = self.inner.chaos.get() {
                if chaos.fire(&ctx, FaultKind::FnCrashBefore) {
                    self.inner
                        .meter
                        .fault_injected(FaultKind::FnCrashBefore.label());
                    queue.nack(batch.receipt, 0);
                    continue;
                }
            }
            let event = Event::Queue {
                messages: batch.messages,
            };
            match self.run_in_sandbox(&entry, &ctx, &event) {
                Ok(_) => {
                    // Crash-after: the handler ran and its side effects
                    // are durable, but the sandbox dies before acking —
                    // the batch is redelivered anyway, exercising every
                    // consumer's duplicate-processing guards.
                    let crash_after = self.inner.chaos.get().is_some_and(|chaos| {
                        if chaos.fire(&ctx, FaultKind::FnCrashAfter) {
                            self.inner
                                .meter
                                .fault_injected(FaultKind::FnCrashAfter.label());
                            true
                        } else {
                            false
                        }
                    });
                    if crash_after {
                        queue.nack(batch.receipt, 0);
                    } else {
                        queue.ack(batch.receipt);
                    }
                }
                Err(e) if e.retryable && e.deferred => {
                    queue.nack_deferred(batch.receipt, e.failed_index);
                }
                Err(e) if e.retryable => {
                    queue.nack(batch.receipt, e.failed_index);
                }
                Err(e) => {
                    self.notify_failure(&entry.name, &e);
                    queue.ack(batch.receipt);
                }
            }
        }
    }

    /// Attaches a scheduled trigger firing every `interval` (the paper's
    /// heartbeat function runs at the highest Lambda cadence, 1/min).
    pub fn attach_schedule(&self, name: &str, interval: Duration) -> CloudResult<()> {
        let entry = self.entry(name)?;
        let runtime = self.clone();
        let handle = std::thread::spawn(move || {
            let mut tick = 0u64;
            while !runtime.inner.stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if runtime.inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                tick += 1;
                let ctx = runtime.invocation_ctx(&entry, 0);
                if let Err(e) = runtime.run_in_sandbox(&entry, &ctx, &Event::Scheduled { tick }) {
                    runtime.notify_failure(&entry.name, &e);
                }
            }
        });
        self.inner.workers.lock().push(handle);
        Ok(())
    }

    fn notify_failure(&self, name: &str, err: &FnError) {
        if let Some(hook) = self.inner.failure_hook.lock().as_ref() {
            hook(name, err);
        }
    }

    /// Stops all pollers and schedules, joining worker threads.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let workers: Vec<_> = std::mem::take(&mut *self.inner.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }

    /// The runtime's usage meter.
    pub fn meter(&self) -> &Meter {
        &self.inner.meter
    }

    /// The runtime's region.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// The runtime's latency model.
    pub fn model(&self) -> &Arc<LatencyModel> {
        &self.inner.model
    }

    /// The runtime's latency mode.
    pub fn mode(&self) -> LatencyMode {
        self.inner.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::QueueKind;
    use std::sync::atomic::AtomicUsize;

    fn runtime() -> FaasRuntime {
        FaasRuntime::disabled(Region::US_EAST_1, Meter::new())
    }

    #[test]
    fn direct_invocation_returns_payload() {
        let rt = runtime();
        rt.register(
            "echo",
            FunctionConfig::default(),
            |_ctx: &Ctx, ev: &Event| match ev {
                Event::Direct { payload } => Ok(payload.clone()),
                _ => Err(FnError::fatal("wrong event")),
            },
        )
        .unwrap();
        let ctx = Ctx::disabled();
        let out = rt
            .invoke_direct(&ctx, "echo", Bytes::from_static(b"ping"))
            .unwrap();
        assert_eq!(out.as_ref(), b"ping");
        rt.shutdown();
    }

    #[test]
    fn unknown_function_is_not_found() {
        let rt = runtime();
        let err = rt
            .invoke_direct(&Ctx::disabled(), "nope", Bytes::new())
            .unwrap_err();
        assert!(err.is_not_found());
        rt.shutdown();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let rt = runtime();
        let handler = |_: &Ctx, _: &Event| Ok(Bytes::new());
        rt.register("f", FunctionConfig::default(), handler)
            .unwrap();
        assert!(matches!(
            rt.register("f", FunctionConfig::default(), handler),
            Err(CloudError::AlreadyExists { .. })
        ));
        rt.shutdown();
    }

    #[test]
    fn queue_trigger_processes_batches_in_order() {
        let rt = runtime();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        rt.register(
            "consumer",
            FunctionConfig::default(),
            move |_: &Ctx, ev: &Event| {
                if let Event::Queue { messages } = ev {
                    let mut guard = seen2.lock();
                    for m in messages {
                        guard.push(String::from_utf8_lossy(&m.body).into_owned());
                    }
                }
                Ok(Bytes::new())
            },
        )
        .unwrap();
        let q = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Meter::new());
        rt.attach_queue_trigger("consumer", q.clone(), 10, 1)
            .unwrap();
        let ctx = Ctx::disabled();
        for i in 0..20 {
            q.send(&ctx, "session", Bytes::from(format!("m{i:02}")))
                .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.lock().len() < 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
        let got = seen.lock().clone();
        let want: Vec<String> = (0..20).map(|i| format!("m{i:02}")).collect();
        assert_eq!(got, want);
    }

    /// The adaptive trigger's window must grow toward the cap while a
    /// burst keeps the queue backlogged and settle back to the floor once
    /// the queue runs dry (ROADMAP "Adaptive window for the follower").
    #[test]
    fn adaptive_queue_trigger_window_tracks_backlog() {
        let rt = runtime();
        let batch_sizes = Arc::new(Mutex::new(Vec::new()));
        let sizes2 = Arc::clone(&batch_sizes);
        rt.register(
            "adaptive",
            FunctionConfig::default(),
            move |_: &Ctx, ev: &Event| {
                if let Event::Queue { messages } = ev {
                    sizes2.lock().push(messages.len());
                }
                Ok(Bytes::new())
            },
        )
        .unwrap();
        let q = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Meter::new());
        let ctrl = Arc::new(AdaptiveBatch::new(1, 10));
        // Build the backlog *before* attaching, so the first drains see
        // a full queue and the AIMD growth is deterministic.
        let ctx = Ctx::disabled();
        for i in 0..40 {
            q.send(&ctx, "session", Bytes::from(format!("m{i}")))
                .unwrap();
        }
        rt.attach_queue_trigger_adaptive("adaptive", q.clone(), Arc::clone(&ctrl), 1)
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while batch_sizes.lock().iter().sum::<usize>() < 40 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained: usize = batch_sizes.lock().iter().sum();
        assert_eq!(drained, 40, "everything consumed");
        let peak = batch_sizes.lock().iter().copied().max().unwrap_or(0);
        assert!(peak >= 4, "window grew under backlog (peak batch {peak})");
        // Empty polls (50 ms cadence) walk the window back to the floor.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ctrl.window() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(ctrl.window(), 1, "window settled at the floor");
        rt.shutdown();
    }

    #[test]
    fn retryable_failure_redelivers() {
        let rt = runtime();
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = Arc::clone(&attempts);
        rt.register(
            "flaky",
            FunctionConfig::default(),
            move |_: &Ctx, _: &Event| {
                let n = attempts2.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    Err(FnError::retryable("first try fails"))
                } else {
                    Ok(Bytes::new())
                }
            },
        )
        .unwrap();
        let q = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Meter::new());
        rt.attach_queue_trigger("flaky", q.clone(), 1, 1).unwrap();
        q.send(&Ctx::disabled(), "g", Bytes::from_static(b"x"))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while attempts.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        assert!(q.dead_letters().is_empty());
    }

    #[test]
    fn fatal_failure_notifies_hook() {
        let rt = runtime();
        let notified = Arc::new(AtomicUsize::new(0));
        let notified2 = Arc::clone(&notified);
        rt.set_failure_hook(move |_, _| {
            notified2.fetch_add(1, Ordering::SeqCst);
        });
        rt.register("bad", FunctionConfig::default(), |_: &Ctx, _: &Event| {
            Err(FnError::fatal("boom"))
        })
        .unwrap();
        let err = rt
            .invoke_direct(&Ctx::disabled(), "bad", Bytes::new())
            .unwrap_err();
        assert!(matches!(err, CloudError::FunctionFailed { .. }));
        assert_eq!(notified.load(Ordering::SeqCst), 1);
        rt.shutdown();
    }

    #[test]
    fn injected_crashes_consume_then_recover() {
        let rt = runtime();
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        rt.register(
            "victim",
            FunctionConfig::default(),
            move |_: &Ctx, _: &Event| {
                runs2.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            },
        )
        .unwrap();
        rt.inject_crashes("victim", 2).unwrap();
        let q = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Meter::new());
        rt.attach_queue_trigger("victim", q.clone(), 1, 1).unwrap();
        q.send(&Ctx::disabled(), "g", Bytes::from_static(b"x"))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while runs.load(Ordering::SeqCst) < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
        // Two crashes consumed, third delivery succeeds.
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn warm_sandbox_reuse_is_tracked() {
        let rt = runtime();
        rt.register("f", FunctionConfig::default(), |_: &Ctx, _: &Event| {
            Ok(Bytes::new())
        })
        .unwrap();
        let ctx = Ctx::disabled();
        rt.invoke_direct(&ctx, "f", Bytes::new()).unwrap();
        rt.invoke_direct(&ctx, "f", Bytes::new()).unwrap();
        let (cold, warm) = rt.start_counts("f").unwrap();
        assert_eq!(cold, 1);
        assert_eq!(warm, 1);
        rt.shutdown();
    }

    #[test]
    fn scheduled_function_ticks() {
        let rt = runtime();
        let ticks = Arc::new(AtomicUsize::new(0));
        let ticks2 = Arc::clone(&ticks);
        rt.register(
            "cron",
            FunctionConfig::default(),
            move |_: &Ctx, ev: &Event| {
                if matches!(ev, Event::Scheduled { .. }) {
                    ticks2.fetch_add(1, Ordering::SeqCst);
                }
                Ok(Bytes::new())
            },
        )
        .unwrap();
        rt.attach_schedule("cron", Duration::from_millis(10))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::SeqCst) < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
        assert!(ticks.load(Ordering::SeqCst) >= 3);
    }

    #[test]
    fn async_invocation_delivers_result() {
        let rt = runtime();
        rt.register("w", FunctionConfig::default(), |_: &Ctx, _: &Event| {
            Ok(Bytes::from_static(b"done"))
        })
        .unwrap();
        let ctx = Ctx::disabled();
        let rx = rt.invoke_async(&ctx, "w", Bytes::new()).unwrap();
        let out = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(out.as_ref(), b"done");
        rt.shutdown();
    }

    #[test]
    fn gb_seconds_metered_per_invocation() {
        let meter = Meter::new();
        let rt = FaasRuntime::disabled(Region::US_EAST_1, meter.clone());
        rt.register(
            "f",
            FunctionConfig::default().with_memory(1024),
            |_: &Ctx, _: &Event| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(Bytes::new())
            },
        )
        .unwrap();
        rt.invoke_direct(&Ctx::disabled(), "f", Bytes::new())
            .unwrap();
        let s = meter.snapshot();
        assert_eq!(s.fn_invocations, 1);
        assert!(s.fn_gb_seconds > 0.0);
        rt.shutdown();
    }
}
