//! Simulated key-value store (DynamoDB / Datastore equivalent).
//!
//! Provides the capabilities FaaSKeeper's *system storage* requires
//! (§3.3): atomic single-item conditional updates (the substrate of timed
//! locks, counters and lists), strongly consistent reads, multi-item
//! transactions (Z1 atomicity for multi-node operations and the GCP
//! synchronization path), scans, and per-kB billing. Items live in hash
//! shards guarded by independent locks, so independent updates proceed in
//! parallel — the property §4.3 relies on for horizontal write scaling.

use crate::chaos::{Chaos, FaultKind};
use crate::error::{CloudError, CloudResult};
use crate::expr::{Condition, Update};
use crate::metering::Meter;
use crate::ops::Op;
use crate::region::Region;
use crate::trace::Ctx;
use crate::value::Item;
use bytes::Bytes;
use fk_store::{Lsm, StoreError};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Read consistency level (§2.1: eventually consistent reads trade
/// consistency for cost/latency and break Z2/Z3 if used for user data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Strongly consistent read: always the latest committed item.
    Strong,
    /// Eventually consistent read: may return the previous version.
    Eventual,
}

/// Service limits, mirroring provider quotas (§4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvLimits {
    /// Maximum item size in bytes (DynamoDB: 400 kB, Datastore: 1 MB).
    pub max_item_bytes: usize,
    /// Probability that an eventually consistent read observes the
    /// previous version while one exists.
    pub stale_read_prob: f64,
}

impl KvLimits {
    /// DynamoDB-like limits.
    pub fn dynamodb() -> Self {
        KvLimits {
            max_item_bytes: 400 * 1024,
            stale_read_prob: 0.3,
        }
    }

    /// Datastore-like limits.
    pub fn datastore() -> Self {
        KvLimits {
            max_item_bytes: 1024 * 1024,
            stale_read_prob: 0.3,
        }
    }
}

/// Result of an update: the previous and new item states.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateOutput {
    /// Item state before the update (`None` if it was created).
    pub old: Option<Item>,
    /// Item state after the update.
    pub new: Item,
}

#[derive(Debug, Clone)]
struct Versioned {
    item: Item,
    version: u64,
    prev: Option<Item>,
}

/// One element of a multi-item transaction.
#[derive(Debug, Clone)]
pub enum TransactOp {
    /// Conditional put.
    Put {
        /// Item key.
        key: String,
        /// New item.
        item: Item,
        /// Guard condition.
        condition: Condition,
    },
    /// Conditional update expression.
    Update {
        /// Item key.
        key: String,
        /// Update expression.
        update: Update,
        /// Guard condition.
        condition: Condition,
    },
    /// Conditional delete.
    Delete {
        /// Item key.
        key: String,
        /// Guard condition.
        condition: Condition,
    },
    /// Pure condition check (no mutation).
    Check {
        /// Item key.
        key: String,
        /// Condition that must hold.
        condition: Condition,
    },
}

impl TransactOp {
    fn key(&self) -> &str {
        match self {
            TransactOp::Put { key, .. }
            | TransactOp::Update { key, .. }
            | TransactOp::Delete { key, .. }
            | TransactOp::Check { key, .. } => key,
        }
    }
}

const SHARDS: usize = 64;

struct Inner {
    name: String,
    region: Region,
    limits: KvLimits,
    meter: Meter,
    shards: Vec<RwLock<HashMap<String, Versioned>>>,
    chaos: OnceLock<Arc<Chaos>>,
    durable: OnceLock<Lsm>,
}

/// A table in the simulated key-value store. Cloning shares the table.
#[derive(Clone)]
pub struct KvStore {
    inner: Arc<Inner>,
}

fn shard_of(key: &str) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl KvStore {
    /// Creates a table with DynamoDB-like limits.
    pub fn new(name: impl Into<String>, region: Region, meter: Meter) -> Self {
        Self::with_limits(name, region, meter, KvLimits::dynamodb())
    }

    /// Creates a table with explicit limits.
    pub fn with_limits(
        name: impl Into<String>,
        region: Region,
        meter: Meter,
        limits: KvLimits,
    ) -> Self {
        KvStore {
            inner: Arc::new(Inner {
                name: name.into(),
                region,
                limits,
                meter,
                shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
                chaos: OnceLock::new(),
                durable: OnceLock::new(),
            }),
        }
    }

    /// Installs the chaos engine on this table (at most once). Writes,
    /// updates, deletes and transactions then pass its fault points;
    /// reads stay infallible — the SDK-level behaviour of DynamoDB
    /// reads, whose transient failures are retried inside the client
    /// library before any caller sees them.
    pub fn install_chaos(&self, chaos: Arc<Chaos>) {
        let _ = self.inner.chaos.set(chaos);
    }

    /// Attaches a durable LSM engine to this table (at most once) and
    /// loads whatever it recovered: every persisted item is decoded
    /// and installed into the shards, so a table re-attached to an
    /// engine that survived a crash comes back with its committed
    /// state. Afterwards every committed mutation — put, update,
    /// delete, and each transaction as **one atomic WAL batch** — is
    /// logged and fsynced before it is applied or acknowledged.
    ///
    /// Returns the number of items recovered.
    pub fn attach_durable(&self, lsm: Lsm) -> CloudResult<usize> {
        let recovered = lsm.scan_prefix("").map_err(map_store_err)?;
        let mut loaded = 0usize;
        for (key, raw) in recovered {
            let Some(item) = Item::decode(&raw) else {
                return Err(CloudError::StorageFailed {
                    detail: format!("undecodable persisted item at key {key:?}"),
                });
            };
            self.inner.shards[shard_of(&key)].write().insert(
                key,
                Versioned {
                    item,
                    version: 1,
                    prev: None,
                },
            );
            loaded += 1;
        }
        if self.inner.durable.set(lsm).is_err() {
            return Err(CloudError::AlreadyExists {
                name: format!("durable backend on table {}", self.inner.name),
            });
        }
        Ok(loaded)
    }

    /// Logs committed mutations to the durable engine, if one is
    /// attached. Called under the shard guard(s) so the WAL order
    /// matches the apply order; an error means nothing was persisted
    /// and the caller must not apply.
    fn log_durable(&self, entries: Vec<(String, Option<Bytes>)>) -> CloudResult<()> {
        match self.inner.durable.get() {
            None => Ok(()),
            Some(lsm) => lsm.write_batch(entries).map_err(map_store_err),
        }
    }

    /// True once a durable engine is attached.
    pub fn is_durable(&self) -> bool {
        self.inner.durable.get().is_some()
    }

    /// Rolls the write-plane fault points: throttling, then a transient
    /// injected error. The failed request is billed and charged like a
    /// real rejected round trip, and nothing is applied — a retrying
    /// caller re-evaluates its condition against untouched state.
    fn chaos_write_error(&self, ctx: &Ctx, key: &str) -> CloudResult<()> {
        let Some(chaos) = self.inner.chaos.get() else {
            return Ok(());
        };
        if chaos.fire(ctx, FaultKind::KvThrottle) {
            self.inner
                .meter
                .fault_injected(FaultKind::KvThrottle.label());
            self.charge_failed_update(ctx, key);
            return Err(CloudError::Throttled);
        }
        if chaos.fire(ctx, FaultKind::KvError) {
            self.inner.meter.fault_injected(FaultKind::KvError.label());
            self.charge_failed_update(ctx, key);
            return Err(chaos.error(FaultKind::KvError));
        }
        Ok(())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Region the table lives in.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// The usage meter.
    pub fn meter(&self) -> &Meter {
        &self.inner.meter
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if the table holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check_size(&self, item: &Item) -> CloudResult<()> {
        let size = item.size_bytes();
        if size > self.inner.limits.max_item_bytes {
            return Err(CloudError::PayloadTooLarge {
                size,
                limit: self.inner.limits.max_item_bytes,
            });
        }
        Ok(())
    }

    /// Reads an item.
    pub fn get(&self, ctx: &Ctx, key: &str, consistency: Consistency) -> Option<Item> {
        let shard = &self.inner.shards[shard_of(key)];
        let guard = shard.read();
        let entry = guard.get(key);
        let consistent = consistency == Consistency::Strong;
        let result = match entry {
            None => None,
            Some(v) => {
                if !consistent && v.prev.is_some() {
                    // An eventually consistent read may observe the
                    // previous version; the probability stands in for the
                    // replication lag window.
                    let stale = stale_roll(ctx, key, v.version, self.inner.limits.stale_read_prob);
                    if stale {
                        v.prev.clone()
                    } else {
                        Some(v.item.clone())
                    }
                } else {
                    Some(v.item.clone())
                }
            }
        };
        drop(guard);
        let size = result.as_ref().map(Item::size_bytes).unwrap_or(1);
        self.inner.meter.kv_read(size, consistent);
        ctx.charge_to(Op::KvGet { consistent }, size, self.inner.region);
        result
    }

    /// Conditional put (full item replacement).
    pub fn put(
        &self,
        ctx: &Ctx,
        key: &str,
        item: Item,
        condition: Condition,
    ) -> CloudResult<Option<Item>> {
        self.check_size(&item)?;
        self.chaos_write_error(ctx, key)?;
        let shard = &self.inner.shards[shard_of(key)];
        let mut guard = shard.write();
        let current = guard.get(key);
        if !condition.eval(current.map(|v| &v.item)) {
            drop(guard);
            self.charge_failed_write(ctx, &item);
            return Err(CloudError::ConditionFailed {
                detail: condition.describe(),
            });
        }
        if self.is_durable() {
            let entry = vec![(key.to_owned(), Some(Bytes::from(item.encode())))];
            if let Err(e) = self.log_durable(entry) {
                drop(guard);
                self.charge_failed_write(ctx, &item);
                return Err(e);
            }
        }
        let old = current.map(|v| v.item.clone());
        let version = current.map(|v| v.version + 1).unwrap_or(1);
        let size = item.size_bytes();
        let old_size = old.as_ref().map(Item::size_bytes).unwrap_or(0);
        guard.insert(
            key.to_owned(),
            Versioned {
                item: item.clone(),
                version,
                prev: old.clone(),
            },
        );
        drop(guard);
        self.inner.meter.kv_write(size);
        self.inner
            .meter
            .kv_stored_delta(size as i64 - old_size as i64);
        ctx.charge_to(
            Op::KvUpdate {
                conditional: condition != Condition::Always,
            },
            size,
            self.inner.region,
        );
        Ok(old)
    }

    /// Conditional update expression. Creates the item when absent
    /// (upsert), matching DynamoDB `UpdateItem` semantics.
    pub fn update(
        &self,
        ctx: &Ctx,
        key: &str,
        update: &Update,
        condition: Condition,
    ) -> CloudResult<UpdateOutput> {
        self.chaos_write_error(ctx, key)?;
        let shard = &self.inner.shards[shard_of(key)];
        let mut guard = shard.write();
        let current = guard.get(key);
        if !condition.eval(current.map(|v| &v.item)) {
            drop(guard);
            self.charge_failed_update(ctx, key);
            return Err(CloudError::ConditionFailed {
                detail: condition.describe(),
            });
        }
        let old = current.map(|v| v.item.clone());
        // Apply to a scratch copy so failed updates leave the item intact.
        let mut scratch = old.clone().unwrap_or_default();
        update.apply(&mut scratch)?;
        self.check_size(&scratch)?;
        if self.is_durable() {
            let entry = vec![(key.to_owned(), Some(Bytes::from(scratch.encode())))];
            if let Err(e) = self.log_durable(entry) {
                drop(guard);
                self.charge_failed_update(ctx, key);
                return Err(e);
            }
        }
        let version = current.map(|v| v.version + 1).unwrap_or(1);
        let size = scratch.size_bytes();
        let old_size = old.as_ref().map(Item::size_bytes).unwrap_or(0);
        guard.insert(
            key.to_owned(),
            Versioned {
                item: scratch.clone(),
                version,
                prev: old.clone(),
            },
        );
        drop(guard);
        self.inner.meter.kv_write(size);
        self.inner
            .meter
            .kv_stored_delta(size as i64 - old_size as i64);
        ctx.charge_to(
            Op::KvUpdate {
                conditional: condition != Condition::Always,
            },
            size,
            self.inner.region,
        );
        Ok(UpdateOutput { old, new: scratch })
    }

    /// Conditional delete. Returns the removed item.
    pub fn delete(&self, ctx: &Ctx, key: &str, condition: Condition) -> CloudResult<Option<Item>> {
        self.chaos_write_error(ctx, key)?;
        let shard = &self.inner.shards[shard_of(key)];
        let mut guard = shard.write();
        let current = guard.get(key);
        if !condition.eval(current.map(|v| &v.item)) {
            drop(guard);
            self.charge_failed_update(ctx, key);
            return Err(CloudError::ConditionFailed {
                detail: condition.describe(),
            });
        }
        if self.is_durable() {
            if let Err(e) = self.log_durable(vec![(key.to_owned(), None)]) {
                drop(guard);
                self.charge_failed_update(ctx, key);
                return Err(e);
            }
        }
        let removed = guard.remove(key).map(|v| v.item);
        drop(guard);
        let size = removed.as_ref().map(Item::size_bytes).unwrap_or(0);
        self.inner.meter.kv_write(size.max(1));
        self.inner.meter.kv_stored_delta(-(size as i64));
        ctx.charge_to(Op::KvDelete, size.max(1), self.inner.region);
        Ok(removed)
    }

    /// Multi-item all-or-nothing transaction.
    ///
    /// Locks the involved shards in index order (no deadlocks), checks all
    /// conditions first, and only then applies all mutations — Z1's
    /// "requests never lead to partial results".
    pub fn transact(&self, ctx: &Ctx, ops: &[TransactOp]) -> CloudResult<()> {
        if let Some(chaos) = self.inner.chaos.get() {
            if chaos.fire(ctx, FaultKind::KvCancel) {
                self.inner.meter.fault_injected(FaultKind::KvCancel.label());
                // An injected cancellation bills exactly like a real one:
                // DynamoDB consumes write units for every item of a
                // cancelled TransactWriteItems.
                let sizes: Vec<usize> = ops.iter().map(op_size_estimate).collect();
                let total: usize = sizes.iter().sum();
                self.inner.meter.kv_transact_write(&sizes);
                ctx.charge_to(Op::KvTransact, total.max(1), self.inner.region);
                // Surfaced as a *retryable* injected fault rather than
                // `TransactionCancelled`: this models DynamoDB's
                // transient cancellation reasons (transaction conflict,
                // throttling), which SDKs retry — nothing was applied,
                // so the caller replays the transaction and its
                // conditions re-evaluate against untouched state. A
                // `TransactionCancelled` from this store always means a
                // real condition failed.
                return Err(chaos.error(FaultKind::KvCancel));
            }
        }
        let mut shard_ids: Vec<usize> = ops.iter().map(|op| shard_of(op.key())).collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let mut guards: HashMap<
            usize,
            parking_lot::RwLockWriteGuard<'_, HashMap<String, Versioned>>,
        > = HashMap::new();
        for id in &shard_ids {
            guards.insert(*id, self.inner.shards[*id].write());
        }

        // Validate all conditions against current state.
        for (i, op) in ops.iter().enumerate() {
            let guard = &guards[&shard_of(op.key())];
            let current = guard.get(op.key()).map(|v| &v.item);
            let cond = match op {
                TransactOp::Put { condition, .. }
                | TransactOp::Update { condition, .. }
                | TransactOp::Delete { condition, .. }
                | TransactOp::Check { condition, .. } => condition,
            };
            if !cond.eval(current) {
                drop(guards);
                // A cancelled transaction is still a billed round trip:
                // DynamoDB consumes write units for every item of a
                // cancelled TransactWriteItems, so the meter records the
                // request with each item's estimated size.
                let sizes: Vec<usize> = ops.iter().map(op_size_estimate).collect();
                let total: usize = sizes.iter().sum();
                self.inner.meter.kv_transact_write(&sizes);
                ctx.charge_to(Op::KvTransact, total, self.inner.region);
                return Err(CloudError::TransactionCancelled {
                    index: i,
                    detail: cond.describe(),
                });
            }
        }

        // Precompute new states (update expressions can still fail on type
        // errors; do this before mutating anything).
        let mut staged: Vec<(usize, String, Option<Item>)> = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let guard = &guards[&shard_of(op.key())];
            match op {
                TransactOp::Put { key, item, .. } => {
                    self.check_size(item)?;
                    staged.push((i, key.clone(), Some(item.clone())));
                }
                TransactOp::Update { key, update, .. } => {
                    let mut scratch = guard.get(key).map(|v| v.item.clone()).unwrap_or_default();
                    update.apply(&mut scratch)?;
                    self.check_size(&scratch)?;
                    staged.push((i, key.clone(), Some(scratch)));
                }
                TransactOp::Delete { key, .. } => staged.push((i, key.clone(), None)),
                TransactOp::Check { .. } => {}
            }
        }

        // Persist the whole transaction as one atomic WAL batch before
        // anything is applied: after a crash either every staged
        // mutation is recovered or none is (Z1 extended to disk).
        if self.is_durable() && !staged.is_empty() {
            let entries: Vec<(String, Option<Bytes>)> = staged
                .iter()
                .map(|(_, key, state)| {
                    (
                        key.clone(),
                        state.as_ref().map(|item| Bytes::from(item.encode())),
                    )
                })
                .collect();
            if let Err(e) = self.log_durable(entries) {
                drop(guards);
                let sizes: Vec<usize> = ops.iter().map(op_size_estimate).collect();
                let total: usize = sizes.iter().sum();
                self.inner.meter.kv_transact_write(&sizes);
                ctx.charge_to(Op::KvTransact, total.max(1), self.inner.region);
                return Err(e);
            }
        }

        let mut total = 0usize;
        let mut item_sizes: Vec<usize> = Vec::with_capacity(staged.len());
        for (_, key, new_state) in staged {
            let guard = guards.get_mut(&shard_of(&key)).expect("shard locked");
            let old_size = guard.get(&key).map(|v| v.item.size_bytes()).unwrap_or(0);
            match new_state {
                Some(item) => {
                    let size = item.size_bytes();
                    total += size;
                    let version = guard.get(&key).map(|v| v.version + 1).unwrap_or(1);
                    let prev = guard.get(&key).map(|v| v.item.clone());
                    guard.insert(
                        key.clone(),
                        Versioned {
                            item,
                            version,
                            prev,
                        },
                    );
                    item_sizes.push(size);
                    self.inner
                        .meter
                        .kv_stored_delta(size as i64 - old_size as i64);
                }
                None => {
                    guard.remove(&key);
                    item_sizes.push(old_size.max(1));
                    self.inner.meter.kv_stored_delta(-(old_size as i64));
                }
            }
        }
        drop(guards);
        // One metered request for the whole transaction; billing rounds
        // every item to 1 kB units independently (DynamoDB's model).
        self.inner.meter.kv_transact_write(&item_sizes);
        ctx.charge_to(Op::KvTransact, total.max(1), self.inner.region);
        Ok(())
    }

    /// Scans the whole table (the heartbeat function's session listing).
    pub fn scan(&self, ctx: &Ctx) -> Vec<(String, Item)> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            for (k, v) in shard.read().iter() {
                out.push((k.clone(), v.item.clone()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let total: usize = out.iter().map(|(_, i)| i.size_bytes()).sum();
        self.inner.meter.kv_scan(total.max(1));
        ctx.charge_to(Op::KvScan, total.max(1), self.inner.region);
        out
    }

    /// Scans every item whose key starts with `prefix`, sorted by key.
    /// Modelled as a DynamoDB Query against a key-prefix index: read
    /// units are consumed for the *matched* bytes only, not the whole
    /// table (a full `Scan` would bill everything it examines).
    pub fn scan_prefix(&self, ctx: &Ctx, prefix: &str) -> Vec<(String, Item)> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            for (k, v) in shard.read().iter() {
                if k.starts_with(prefix) {
                    out.push((k.clone(), v.item.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let total: usize = out.iter().map(|(_, i)| i.size_bytes()).sum();
        self.inner.meter.kv_scan(total.max(1));
        ctx.charge_to(Op::KvScan, total.max(1), self.inner.region);
        out
    }

    fn charge_failed_write(&self, ctx: &Ctx, item: &Item) {
        // A failed conditional write is still billed and still costs a
        // round trip.
        self.inner.meter.kv_write(item.size_bytes());
        ctx.charge_to(
            Op::KvUpdate { conditional: true },
            item.size_bytes(),
            self.inner.region,
        );
    }

    fn charge_failed_update(&self, ctx: &Ctx, key: &str) {
        self.inner.meter.kv_write(key.len().max(1));
        ctx.charge_to(Op::KvUpdate { conditional: true }, 64, self.inner.region);
    }
}

/// Maps an engine failure onto the cloud error surface. Everything is
/// [`CloudError::StorageFailed`]: I/O-class failures are retryable
/// (the engine repairs its WAL before the next append) and nothing was
/// applied, so callers treat it like a rejected round trip.
fn map_store_err(e: StoreError) -> CloudError {
    CloudError::StorageFailed {
        detail: e.to_string(),
    }
}

fn op_size_estimate(op: &TransactOp) -> usize {
    match op {
        TransactOp::Put { item, .. } => item.size_bytes(),
        _ => 64,
    }
}

/// Deterministic pseudo-random staleness decision derived from the ctx
/// clock, key and version, so tests can rely on seeded behaviour.
fn stale_roll(ctx: &Ctx, key: &str, version: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    version.hash(&mut h);
    ctx.now_ns().hash(&mut h);
    let roll = (h.finish() % 10_000) as f64 / 10_000.0;
    roll < prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn store() -> (KvStore, Ctx) {
        (
            KvStore::new("test", Region::US_EAST_1, Meter::new()),
            Ctx::disabled(),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let (kv, ctx) = store();
        kv.put(&ctx, "a", Item::new().with("v", 1i64), Condition::Always)
            .unwrap();
        let got = kv.get(&ctx, "a", Consistency::Strong).unwrap();
        assert_eq!(got.num("v"), Some(1));
        assert!(kv.get(&ctx, "missing", Consistency::Strong).is_none());
    }

    #[test]
    fn conditional_put_create_only() {
        let (kv, ctx) = store();
        kv.put(
            &ctx,
            "a",
            Item::new().with("v", 1i64),
            Condition::ItemNotExists,
        )
        .unwrap();
        let err = kv
            .put(
                &ctx,
                "a",
                Item::new().with("v", 2i64),
                Condition::ItemNotExists,
            )
            .unwrap_err();
        assert!(err.is_condition_failed());
        assert_eq!(
            kv.get(&ctx, "a", Consistency::Strong).unwrap().num("v"),
            Some(1)
        );
    }

    #[test]
    fn update_upserts_missing_item() {
        let (kv, ctx) = store();
        let out = kv
            .update(&ctx, "ctr", &Update::new().add("n", 5), Condition::Always)
            .unwrap();
        assert!(out.old.is_none());
        assert_eq!(out.new.num("n"), Some(5));
        let out2 = kv
            .update(&ctx, "ctr", &Update::new().add("n", 3), Condition::Always)
            .unwrap();
        assert_eq!(out2.new.num("n"), Some(8));
        assert_eq!(out2.old.unwrap().num("n"), Some(5));
    }

    #[test]
    fn failed_condition_leaves_item_untouched() {
        let (kv, ctx) = store();
        kv.put(&ctx, "a", Item::new().with("v", 1i64), Condition::Always)
            .unwrap();
        let err = kv
            .update(
                &ctx,
                "a",
                &Update::new().set("v", 99i64),
                Condition::eq("v", 42i64),
            )
            .unwrap_err();
        assert!(err.is_condition_failed());
        assert_eq!(
            kv.get(&ctx, "a", Consistency::Strong).unwrap().num("v"),
            Some(1)
        );
    }

    #[test]
    fn failed_action_is_atomic() {
        let (kv, ctx) = store();
        kv.put(&ctx, "a", Item::new().with("s", "str"), Condition::Always)
            .unwrap();
        // set succeeds then add fails on type error — nothing must stick.
        let err = kv
            .update(
                &ctx,
                "a",
                &Update::new().set("x", 1i64).add("s", 1),
                Condition::Always,
            )
            .unwrap_err();
        assert!(matches!(err, CloudError::InvalidOperation { .. }));
        assert!(!kv
            .get(&ctx, "a", Consistency::Strong)
            .unwrap()
            .contains("x"));
    }

    #[test]
    fn delete_with_condition() {
        let (kv, ctx) = store();
        kv.put(&ctx, "a", Item::new().with("v", 1i64), Condition::Always)
            .unwrap();
        assert!(kv
            .delete(&ctx, "a", Condition::eq("v", 2i64))
            .unwrap_err()
            .is_condition_failed());
        let removed = kv.delete(&ctx, "a", Condition::eq("v", 1i64)).unwrap();
        assert_eq!(removed.unwrap().num("v"), Some(1));
        assert!(kv.is_empty());
    }

    #[test]
    fn item_size_limit_enforced() {
        let (kv, ctx) = store();
        let big = Item::new().with("data", vec![0u8; 500 * 1024]);
        let err = kv.put(&ctx, "a", big, Condition::Always).unwrap_err();
        assert!(matches!(err, CloudError::PayloadTooLarge { .. }));
    }

    #[test]
    fn transaction_applies_all_or_nothing() {
        let (kv, ctx) = store();
        kv.put(
            &ctx,
            "parent",
            Item::new().with("children", Vec::<Value>::new()),
            Condition::Always,
        )
        .unwrap();
        // Create child + update parent atomically.
        kv.transact(
            &ctx,
            &[
                TransactOp::Put {
                    key: "child".into(),
                    item: Item::new().with("v", 1i64),
                    condition: Condition::ItemNotExists,
                },
                TransactOp::Update {
                    key: "parent".into(),
                    update: Update::new().list_append("children", vec![Value::from("child")]),
                    condition: Condition::ItemExists,
                },
            ],
        )
        .unwrap();
        assert_eq!(
            kv.get(&ctx, "parent", Consistency::Strong)
                .unwrap()
                .list("children")
                .unwrap()
                .len(),
            1
        );

        // Second attempt fails on the child condition; the parent list
        // must stay unchanged.
        let err = kv
            .transact(
                &ctx,
                &[
                    TransactOp::Put {
                        key: "child".into(),
                        item: Item::new().with("v", 2i64),
                        condition: Condition::ItemNotExists,
                    },
                    TransactOp::Update {
                        key: "parent".into(),
                        update: Update::new().list_append("children", vec![Value::from("child")]),
                        condition: Condition::ItemExists,
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CloudError::TransactionCancelled { index: 0, .. }
        ));
        assert_eq!(
            kv.get(&ctx, "parent", Consistency::Strong)
                .unwrap()
                .list("children")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn transaction_check_op() {
        let (kv, ctx) = store();
        kv.put(
            &ctx,
            "guard",
            Item::new().with("ok", true),
            Condition::Always,
        )
        .unwrap();
        kv.transact(
            &ctx,
            &[
                TransactOp::Check {
                    key: "guard".into(),
                    condition: Condition::eq("ok", true),
                },
                TransactOp::Put {
                    key: "x".into(),
                    item: Item::new().with("v", 1i64),
                    condition: Condition::Always,
                },
            ],
        )
        .unwrap();
        assert!(kv.get(&ctx, "x", Consistency::Strong).is_some());
    }

    #[test]
    fn scan_returns_sorted_items() {
        let (kv, ctx) = store();
        for k in ["b", "a", "c"] {
            kv.put(&ctx, k, Item::new().with("k", k), Condition::Always)
                .unwrap();
        }
        let all = kv.scan(&ctx);
        let keys: Vec<&str> = all.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn metering_counts_units() {
        let meter = Meter::new();
        let kv = KvStore::new("t", Region::US_EAST_1, meter.clone());
        let ctx = Ctx::disabled();
        kv.put(
            &ctx,
            "a",
            Item::new().with("data", vec![0u8; 2000]),
            Condition::Always,
        )
        .unwrap();
        kv.get(&ctx, "a", Consistency::Strong);
        let s = meter.snapshot();
        assert_eq!(s.kv_write_units, 2); // 2004 bytes → 2 units
        assert!((s.kv_read_units - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eventual_reads_can_be_stale() {
        let kv = KvStore::with_limits(
            "t",
            Region::US_EAST_1,
            Meter::new(),
            KvLimits {
                max_item_bytes: 400 * 1024,
                stale_read_prob: 1.0, // always stale while prev exists
            },
        );
        let ctx = Ctx::disabled();
        kv.put(&ctx, "a", Item::new().with("v", 1i64), Condition::Always)
            .unwrap();
        kv.put(&ctx, "a", Item::new().with("v", 2i64), Condition::Always)
            .unwrap();
        let stale = kv.get(&ctx, "a", Consistency::Eventual).unwrap();
        assert_eq!(stale.num("v"), Some(1));
        // Strong reads never see the old version.
        let strong = kv.get(&ctx, "a", Consistency::Strong).unwrap();
        assert_eq!(strong.num("v"), Some(2));
    }

    fn durable_pair(dev: &fk_store::SimStorage) -> (KvStore, Ctx, usize) {
        let lsm = Lsm::open(Arc::new(dev.clone()), fk_store::LsmConfig::default()).unwrap();
        let kv = KvStore::new("durable", Region::US_EAST_1, Meter::new());
        let loaded = kv.attach_durable(lsm).unwrap();
        (kv, Ctx::disabled(), loaded)
    }

    #[test]
    fn durable_backing_survives_reopen() {
        let dev = fk_store::SimStorage::new();
        {
            let (kv, ctx, loaded) = durable_pair(&dev);
            assert_eq!(loaded, 0);
            kv.put(&ctx, "a", Item::new().with("v", 1i64), Condition::Always)
                .unwrap();
            kv.update(&ctx, "ctr", &Update::new().add("n", 5), Condition::Always)
                .unwrap();
            kv.put(&ctx, "gone", Item::new().with("v", 2i64), Condition::Always)
                .unwrap();
            kv.delete(&ctx, "gone", Condition::Always).unwrap();
            kv.transact(
                &ctx,
                &[
                    TransactOp::Put {
                        key: "tx1".into(),
                        item: Item::new().with("v", 10i64),
                        condition: Condition::ItemNotExists,
                    },
                    TransactOp::Update {
                        key: "ctr".into(),
                        update: Update::new().add("n", 3),
                        condition: Condition::ItemExists,
                    },
                ],
            )
            .unwrap();
        }
        // Crash (discard unsynced bytes) and bring the table back up on
        // a fresh engine over the same device.
        dev.crash();
        let (kv, ctx, loaded) = durable_pair(&dev);
        assert_eq!(loaded, 3, "a, ctr, tx1 recovered; gone stays deleted");
        assert_eq!(
            kv.get(&ctx, "a", Consistency::Strong).unwrap().num("v"),
            Some(1)
        );
        assert_eq!(
            kv.get(&ctx, "ctr", Consistency::Strong).unwrap().num("n"),
            Some(8)
        );
        assert_eq!(
            kv.get(&ctx, "tx1", Consistency::Strong).unwrap().num("v"),
            Some(10)
        );
        assert!(kv.get(&ctx, "gone", Consistency::Strong).is_none());
    }

    #[test]
    fn durable_write_failure_applies_nothing() {
        let dev = fk_store::SimStorage::new();
        let (kv, ctx, _) = durable_pair(&dev);
        kv.put(&ctx, "a", Item::new().with("v", 1i64), Condition::Always)
            .unwrap();
        // Kill the device on its next mutating op: the transaction's
        // WAL batch fails, so neither element may be applied in memory
        // either.
        dev.arm_kill(1, 7);
        let err = kv
            .transact(
                &ctx,
                &[
                    TransactOp::Put {
                        key: "b".into(),
                        item: Item::new().with("v", 2i64),
                        condition: Condition::ItemNotExists,
                    },
                    TransactOp::Update {
                        key: "a".into(),
                        update: Update::new().set("v", 99i64),
                        condition: Condition::ItemExists,
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, CloudError::StorageFailed { .. }));
        assert!(err.is_retryable());
        assert!(kv.get(&ctx, "b", Consistency::Strong).is_none());
        assert_eq!(
            kv.get(&ctx, "a", Consistency::Strong).unwrap().num("v"),
            Some(1)
        );
        // Single-item writes fail the same way without applying.
        let err = kv
            .put(&ctx, "c", Item::new().with("v", 3i64), Condition::Always)
            .unwrap_err();
        assert!(matches!(err, CloudError::StorageFailed { .. }));
        assert!(kv.get(&ctx, "c", Consistency::Strong).is_none());
    }

    #[test]
    fn durable_attach_rejects_corrupt_items() {
        let dev = fk_store::SimStorage::new();
        let lsm = Lsm::open(Arc::new(dev.clone()), fk_store::LsmConfig::default()).unwrap();
        lsm.put("junk", Bytes::from_static(&[0xFF, 0x01, 0x02]))
            .unwrap();
        let kv = KvStore::new("t", Region::US_EAST_1, Meter::new());
        let err = kv.attach_durable(lsm).unwrap_err();
        assert!(matches!(err, CloudError::StorageFailed { .. }));
    }

    #[test]
    fn concurrent_counter_updates_do_not_lose_increments() {
        let kv = KvStore::new("t", Region::US_EAST_1, Meter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let kv = kv.clone();
                s.spawn(move || {
                    let ctx = Ctx::disabled();
                    for _ in 0..100 {
                        kv.update(&ctx, "ctr", &Update::new().add("n", 1), Condition::Always)
                            .unwrap();
                    }
                });
            }
        });
        let ctx = Ctx::disabled();
        assert_eq!(
            kv.get(&ctx, "ctr", Consistency::Strong).unwrap().num("n"),
            Some(800)
        );
    }
}
