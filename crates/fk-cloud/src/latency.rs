//! Calibrated latency models for the simulated cloud services.
//!
//! The paper's evaluation (Tables 3, 6a, 7a, 7c; Figures 4b, 8–13) reports
//! latency distributions of real AWS/GCP services measured from EC2/GCE and
//! from inside Lambda/Cloud Functions. We reproduce the *shape* of those
//! results by sampling per-operation latencies from distributions whose
//! medians, slopes (per-kB), and tail behaviour are calibrated against the
//! published numbers. Each spec carries a provenance comment naming the
//! paper table/figure it was fitted to.
//!
//! The model composes three effects measured in the paper:
//!
//! 1. **Payload-size slopes** — e.g. DynamoDB writes cost ~1 ms/kB
//!    (Table 6a: 4.35 ms @ 1 kB → 66.31 ms @ 64 kB) while S3 reads are
//!    nearly flat (Fig 4b).
//! 2. **Execution environment** — operations issued from inside a function
//!    sandbox are slower than from a VM client, and scale with the
//!    sandbox's memory allocation (Fig 9/11: 512 MB → 2048 MB cuts write
//!    latency 22–28 %), architecture (ARM: follower faster, leader's
//!    object-store path up to 94 % slower, §5.3.2) and CPU allocation
//!    (GCP's independent vCPU knob, §5.3.2).
//! 3. **Region distance** — cross-region storage access pays a large
//!    additive penalty (Fig 4b).

use crate::ops::{Op, QueueKind};
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use std::time::Duration;

/// Which kind of host issues the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// A VM / benchmark client (EC2 `t3.medium` in the paper).
    Client,
    /// A serverless function sandbox.
    Function,
}

/// CPU architecture of a function sandbox (§5.3.2 compares x86 and ARM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// x86-64 Lambda (the default in the paper's evaluation).
    X86,
    /// AWS Graviton. Cheaper; faster on follower-style KV/queue work but
    /// up to 94 % slower on the leader's object-store path (§5.3.2).
    Arm,
}

/// Execution environment of the caller, affecting sampled latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecEnv {
    /// Host kind.
    pub kind: EnvKind,
    /// Memory allocation in MB (functions only; drives I/O + CPU share).
    pub memory_mb: u32,
    /// CPU architecture.
    pub arch: Arch,
    /// Fraction of a vCPU allocated (GCP allows 0.33 vCPU at 512 MB).
    pub cpu_alloc: f64,
}

impl ExecEnv {
    /// A benchmark client on a VM (no sandbox scaling effects).
    pub fn client() -> Self {
        ExecEnv {
            kind: EnvKind::Client,
            memory_mb: 4096,
            arch: Arch::X86,
            cpu_alloc: 2.0,
        }
    }

    /// A function sandbox with the given memory allocation.
    pub fn function(memory_mb: u32) -> Self {
        ExecEnv {
            kind: EnvKind::Function,
            memory_mb,
            arch: Arch::X86,
            cpu_alloc: memory_mb as f64 / 1769.0,
        }
    }

    /// Same sandbox on ARM.
    pub fn with_arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Override the vCPU allocation (GCP-style independent CPU sizing).
    pub fn with_cpu_alloc(mut self, cpu: f64) -> Self {
        self.cpu_alloc = cpu;
        self
    }

    /// Memory-driven I/O slowdown factor, 1.0 at ≥ 2048 MB.
    ///
    /// Calibrated so 512 MB → 2048 MB improves the I/O-bound write path by
    /// 22–28 % (Fig 11) and large-payload follower pushes by ~35 %
    /// (Fig 9).
    pub fn mem_io_factor(&self) -> f64 {
        if self.kind == EnvKind::Client {
            return 1.0;
        }
        let mem = self.memory_mb.clamp(64, 2048) as f64;
        (2048.0 / mem).powf(0.35)
    }

    /// Slowdown applied to the *base* (fixed) part of I/O operations in a
    /// sandbox; a gentler exponent than the per-kB part.
    pub fn mem_base_factor(&self) -> f64 {
        self.mem_io_factor().powf(0.55)
    }

    /// CPU slowdown factor relative to a full vCPU.
    pub fn cpu_factor(&self) -> f64 {
        if self.kind == EnvKind::Client {
            return 1.0;
        }
        let alloc = self.cpu_alloc.max(0.05);
        (1.0 / alloc).clamp(0.55, 8.0)
    }
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv::client()
    }
}

/// Parameters of one operation's latency distribution.
///
/// The sampled latency is
/// `max(min_ms, (base + per_kb·kB) · LogNormal(0, sigma) [· tail])` plus the
/// cross-region penalty when applicable. `base` and `per_kb` are medians;
/// the log-normal body contributes the p50→p95 spread and the tail term the
/// rare large outliers the paper observes (e.g. 60 ms max on a 4.35 ms
/// median DynamoDB write, Table 6a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySpec {
    /// Median latency at zero payload, in ms.
    pub base_ms: f64,
    /// Additional median latency per kB of payload, in ms.
    pub per_kb_ms: f64,
    /// Log-normal shape parameter of the body.
    pub sigma: f64,
    /// Probability of a tail event.
    pub tail_p: f64,
    /// Multiplier applied on a tail event.
    pub tail_mult: f64,
    /// Hard floor, in ms.
    pub min_ms: f64,
    /// Additive penalty when caller and service regions differ, in ms.
    pub cross_region_ms: f64,
    /// Additional cross-region cost per kB, in ms.
    pub cross_region_per_kb_ms: f64,
}

impl LatencySpec {
    /// A spec with the given median base and slope and moderate noise.
    pub const fn new(base_ms: f64, per_kb_ms: f64) -> Self {
        LatencySpec {
            base_ms,
            per_kb_ms,
            sigma: 0.08,
            tail_p: 0.01,
            tail_mult: 6.0,
            min_ms: 0.0,
            cross_region_ms: 0.0,
            cross_region_per_kb_ms: 0.0,
        }
    }

    /// Builder: set body spread.
    pub const fn sigma(mut self, s: f64) -> Self {
        self.sigma = s;
        self
    }

    /// Builder: set tail probability and multiplier.
    pub const fn tail(mut self, p: f64, mult: f64) -> Self {
        self.tail_p = p;
        self.tail_mult = mult;
        self
    }

    /// Builder: set minimum.
    pub const fn min(mut self, m: f64) -> Self {
        self.min_ms = m;
        self
    }

    /// Builder: set cross-region penalty.
    pub const fn cross(mut self, base: f64, per_kb: f64) -> Self {
        self.cross_region_ms = base;
        self.cross_region_per_kb_ms = per_kb;
        self
    }

    /// Zero-latency spec.
    pub const fn zero() -> Self {
        LatencySpec {
            base_ms: 0.0,
            per_kb_ms: 0.0,
            sigma: 0.0,
            tail_p: 0.0,
            tail_mult: 1.0,
            min_ms: 0.0,
            cross_region_ms: 0.0,
            cross_region_per_kb_ms: 0.0,
        }
    }
}

/// Multipliers applied to operations issued from inside a function sandbox,
/// relative to the same operation issued from a VM client.
///
/// Calibrated from the difference between the EC2-side microbenchmarks
/// (Table 6a, Fig 4b) and the in-function phase timings (Table 3): e.g. a
/// DynamoDB conditional update has a 6.8 ms median from EC2 but the
/// follower's lock phase shows 8.02 ms (×1.18–1.38), and the leader's
/// S3 read-modify-write implies ~×3 on object per-kB throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SandboxMults {
    /// KV read operations.
    pub kv_read: f64,
    /// KV write/update operations.
    pub kv_write: f64,
    /// Object store base latency.
    pub obj_base: f64,
    /// Object store per-kB (bandwidth) component.
    pub obj_per_kb: f64,
    /// Queue sends.
    pub queue: f64,
}

impl SandboxMults {
    /// No sandbox penalty.
    pub const fn identity() -> Self {
        SandboxMults {
            kv_read: 1.0,
            kv_write: 1.0,
            obj_base: 1.0,
            obj_per_kb: 1.0,
            queue: 1.0,
        }
    }
}

/// ARM-architecture multipliers (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchMults {
    /// KV + queue work (follower path): slightly faster on ARM.
    pub kv_queue: f64,
    /// Object-store path (leader): up to 94 % slower on ARM.
    pub obj: f64,
}

/// A complete latency model for one provider.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Strongly consistent KV read. [Fig 8 DynamoDB series; Fig 4b]
    pub kv_get_strong: LatencySpec,
    /// Eventually consistent KV read (cheaper/faster; §2.1).
    pub kv_get_eventual: LatencySpec,
    /// Blind KV put/update. [Table 6a "Regular DynamoDB write"]
    pub kv_write: LatencySpec,
    /// Conditional KV update (+~2.5 ms vs regular; Table 6a timed lock).
    pub kv_write_cond: LatencySpec,
    /// Multi-item transactional write (GCP Datastore primitive; Fig 12).
    pub kv_transact: LatencySpec,
    /// Table scan (heartbeat's session listing; Fig 13).
    pub kv_scan: LatencySpec,
    /// Object GET. [Fig 4b, Fig 8 S3 series]
    pub obj_get: LatencySpec,
    /// Object PUT. [Fig 4b; Table 3 "Update Node" = GET+PUT]
    pub obj_put: LatencySpec,
    /// In-memory cache read (Redis series, Fig 8).
    pub mem_get: LatencySpec,
    /// In-memory cache write.
    pub mem_put: LatencySpec,
    /// Queue send, per flavour. [Table 7a/7c decomposition]
    pub q_send_fifo: LatencySpec,
    /// Standard (unordered) queue send.
    pub q_send_std: LatencySpec,
    /// Stream-style queue send (a KV write under the hood).
    pub q_send_stream: LatencySpec,
    /// Queue→function trigger dispatch, per flavour.
    pub q_dispatch_fifo: LatencySpec,
    /// Standard queue dispatch (long batching; large variance, Fig 7b).
    pub q_dispatch_std: LatencySpec,
    /// Stream dispatch (shard polling; ~230 ms, Table 7a).
    pub q_dispatch_stream: LatencySpec,
    /// Synchronous API-gateway function invocation. [Table 7a/7c "Direct"]
    pub fn_invoke_direct: LatencySpec,
    /// Sandbox cold start.
    pub fn_cold_start: LatencySpec,
    /// Warm invocation runtime overhead.
    pub fn_warm_overhead: LatencySpec,
    /// CPU work inside a function per kB processed (base64, serialization).
    pub fn_compute: LatencySpec,
    /// TCP reply to a waiting client (864 µs median; §5.2.2).
    pub tcp_reply: LatencySpec,
    /// Heartbeat ping round trip.
    pub ping: LatencySpec,
    /// Client-library bookkeeping (1.9–2.5 % of read time; §5.3.1).
    pub client_work: LatencySpec,
    /// Sandbox multipliers for in-function calls.
    pub sandbox: SandboxMults,
    /// ARM multipliers.
    pub arch_arm: ArchMults,
}

impl LatencyModel {
    /// AWS-calibrated model (us-east-1; Tables 3/6a/7a, Figs 4b/8/9).
    pub fn aws() -> Self {
        LatencyModel {
            // Fig 8: ~2.2 ms small reads, ~11 ms at 250 kB.
            kv_get_strong: LatencySpec::new(2.2, 0.035)
                .sigma(0.10)
                .tail(0.012, 6.0)
                .min(0.9)
                .cross(62.0, 0.25),
            kv_get_eventual: LatencySpec::new(1.4, 0.030)
                .sigma(0.12)
                .tail(0.012, 6.0)
                .min(0.6)
                .cross(62.0, 0.25),
            // Table 6a: 4.35 ms @ 1 kB, 66.31 ms @ 64 kB, max 60/121 ms.
            kv_write: LatencySpec::new(3.40, 0.985)
                .sigma(0.045)
                .tail(0.004, 11.0)
                .min(3.0)
                .cross(65.0, 0.30),
            // Table 6a timed lock: 6.8 ms @ 1 kB, 67.16 ms @ 64 kB.
            kv_write_cond: LatencySpec::new(5.80, 0.960)
                .sigma(0.065)
                .tail(0.006, 8.0)
                .min(4.5)
                .cross(65.0, 0.30),
            kv_transact: LatencySpec::new(9.0, 1.10)
                .sigma(0.10)
                .tail(0.008, 7.0)
                .min(6.0),
            kv_scan: LatencySpec::new(4.0, 0.020)
                .sigma(0.15)
                .tail(0.01, 5.0)
                .min(2.0),
            // Fig 4b / Fig 8: S3 GET ~9 ms small, ~31 ms @ 500 kB (client).
            obj_get: LatencySpec::new(8.8, 0.045)
                .sigma(0.14)
                .tail(0.015, 5.0)
                .min(4.0)
                .cross(120.0, 0.30),
            // Fig 4b: S3 PUT ~28 ms small, ~53 ms @ 500 kB (client);
            // in-sandbox per-kB multiplied (Table 3 Update Node).
            obj_put: LatencySpec::new(28.0, 0.050)
                .sigma(0.22)
                .tail(0.02, 4.5)
                .min(12.0)
                .cross(130.0, 0.35),
            // Fig 8 Redis series: on par with ZooKeeper.
            mem_get: LatencySpec::new(0.45, 0.012)
                .sigma(0.12)
                .tail(0.005, 6.0)
                .min(0.2),
            mem_put: LatencySpec::new(0.50, 0.014)
                .sigma(0.12)
                .tail(0.005, 6.0)
                .min(0.2),
            // Decomposed from Table 7a SQS-FIFO e2e p50 24.22 ms
            // (= send 12.8 + dispatch 10.5 + reply 0.86) and the
            // follower's push phase (Table 3: 13.35 ms @ 4 B,
            // 72.18 ms @ 250 kB).
            q_send_fifo: LatencySpec::new(12.8, 0.075)
                .sigma(0.14)
                .tail(0.02, 5.0)
                .min(6.0),
            q_send_std: LatencySpec::new(13.0, 0.075)
                .sigma(0.16)
                .tail(0.02, 5.0)
                .min(6.0),
            // DynamoDB-stream sends are KV writes.
            q_send_stream: LatencySpec::new(4.5, 0.985)
                .sigma(0.10)
                .tail(0.01, 6.0)
                .min(3.0),
            q_dispatch_fifo: LatencySpec::new(10.5, 0.085)
                .sigma(0.35)
                .tail(0.015, 4.0)
                .min(3.0),
            // Standard SQS: long batching → larger median + huge variance
            // (Fig 7b: "long batching on unordered queues").
            q_dispatch_std: LatencySpec::new(25.0, 0.085)
                .sigma(0.55)
                .tail(0.05, 6.0)
                .min(4.0),
            // Table 7a: DynamoDB Streams e2e p50 242.65 ms.
            q_dispatch_stream: LatencySpec::new(228.0, 0.020)
                .sigma(0.14)
                .tail(0.03, 2.5)
                .min(120.0),
            // Table 7a "Direct": p50 39.0, p95 73.9, p99 124.
            fn_invoke_direct: LatencySpec::new(38.0, 0.14)
                .sigma(0.38)
                .tail(0.012, 3.5)
                .min(18.0),
            fn_cold_start: LatencySpec::new(350.0, 0.0)
                .sigma(0.35)
                .tail(0.03, 2.5)
                .min(120.0),
            fn_warm_overhead: LatencySpec::new(0.9, 0.0)
                .sigma(0.25)
                .tail(0.01, 4.0)
                .min(0.3),
            // Base64 encode/decode + dict handling, CPU-scaled.
            fn_compute: LatencySpec::new(0.35, 0.011)
                .sigma(0.20)
                .tail(0.005, 4.0)
                .min(0.05),
            // §5.2.2: median RTT 864 µs with a cached connection.
            tcp_reply: LatencySpec::new(0.864, 0.004)
                .sigma(0.20)
                .tail(0.01, 5.0)
                .min(0.3),
            ping: LatencySpec::new(0.60, 0.0)
                .sigma(0.25)
                .tail(0.01, 5.0)
                .min(0.2),
            client_work: LatencySpec::new(0.05, 0.0022)
                .sigma(0.20)
                .tail(0.0, 1.0)
                .min(0.01),
            sandbox: SandboxMults {
                kv_read: 2.30,
                kv_write: 1.38,
                obj_base: 1.05,
                obj_per_kb: 3.0,
                queue: 1.0,
            },
            arch_arm: ArchMults {
                kv_queue: 0.93,
                obj: 1.90,
            },
        }
    }

    /// GCP-calibrated model (us-central1; Table 7c, Figs 8/12).
    pub fn gcp() -> Self {
        let aws = Self::aws();
        LatencyModel {
            // Fig 8 GCP: Datastore 2.3x slower on small nodes,
            // 30 % faster on large nodes than DynamoDB.
            kv_get_strong: LatencySpec::new(5.1, 0.024)
                .sigma(0.12)
                .tail(0.012, 6.0)
                .min(2.0)
                .cross(60.0, 0.25),
            kv_get_eventual: LatencySpec::new(3.4, 0.020)
                .sigma(0.14)
                .tail(0.012, 6.0)
                .min(1.5)
                .cross(60.0, 0.25),
            // Datastore writes go through transactions (§4.5, Fig 12).
            kv_write: LatencySpec::new(8.5, 0.90)
                .sigma(0.10)
                .tail(0.008, 7.0)
                .min(5.0),
            kv_write_cond: LatencySpec::new(16.0, 0.95)
                .sigma(0.12)
                .tail(0.01, 6.0)
                .min(9.0),
            kv_transact: LatencySpec::new(16.0, 0.95)
                .sigma(0.12)
                .tail(0.01, 6.0)
                .min(9.0),
            kv_scan: LatencySpec::new(7.0, 0.022)
                .sigma(0.15)
                .tail(0.01, 5.0)
                .min(3.0),
            // Fig 8 GCP: "object storage slower than AWS S3".
            obj_get: LatencySpec::new(13.5, 0.065)
                .sigma(0.16)
                .tail(0.015, 5.0)
                .min(6.0)
                .cross(120.0, 0.30),
            obj_put: LatencySpec::new(41.0, 0.070)
                .sigma(0.24)
                .tail(0.02, 4.5)
                .min(18.0)
                .cross(130.0, 0.35),
            mem_get: aws.mem_get,
            mem_put: aws.mem_put,
            // Table 7c: Pub/Sub e2e 38.04 ms = send 18.2 + dispatch 18.6.
            q_send_fifo: LatencySpec::new(90.0, 0.050)
                .sigma(0.20)
                .tail(0.02, 3.0)
                .min(40.0),
            q_send_std: LatencySpec::new(18.2, 0.050)
                .sigma(0.25)
                .tail(0.02, 4.0)
                .min(8.0),
            q_send_stream: LatencySpec::new(18.2, 0.050)
                .sigma(0.25)
                .tail(0.02, 4.0)
                .min(8.0),
            // Table 7c: Pub/Sub FIFO e2e p50 201.22 ms (send 90 +
            // dispatch 110); ordered subscription is slower than direct.
            q_dispatch_fifo: LatencySpec::new(110.0, 0.060)
                .sigma(0.30)
                .tail(0.03, 3.0)
                .min(40.0),
            q_dispatch_std: LatencySpec::new(18.6, 0.060)
                .sigma(0.40)
                .tail(0.04, 5.0)
                .min(6.0),
            q_dispatch_stream: LatencySpec::new(18.6, 0.060)
                .sigma(0.40)
                .tail(0.04, 5.0)
                .min(6.0),
            // Table 7c "Direct": p50 83.29, p95 94.63 (tight body).
            fn_invoke_direct: LatencySpec::new(82.0, 0.05)
                .sigma(0.085)
                .tail(0.01, 8.0)
                .min(40.0),
            fn_cold_start: LatencySpec::new(900.0, 0.0)
                .sigma(0.40)
                .tail(0.03, 2.0)
                .min(300.0),
            fn_warm_overhead: aws.fn_warm_overhead,
            fn_compute: aws.fn_compute,
            tcp_reply: aws.tcp_reply,
            ping: aws.ping,
            client_work: aws.client_work,
            sandbox: SandboxMults {
                kv_read: 1.6,
                kv_write: 1.25,
                obj_base: 1.05,
                obj_per_kb: 2.6,
                queue: 1.0,
            },
            arch_arm: ArchMults {
                kv_queue: 1.0,
                obj: 1.0,
            },
        }
    }

    /// Zero-latency model for functional tests.
    pub fn zero() -> Self {
        let z = LatencySpec::zero();
        LatencyModel {
            kv_get_strong: z,
            kv_get_eventual: z,
            kv_write: z,
            kv_write_cond: z,
            kv_transact: z,
            kv_scan: z,
            obj_get: z,
            obj_put: z,
            mem_get: z,
            mem_put: z,
            q_send_fifo: z,
            q_send_std: z,
            q_send_stream: z,
            q_dispatch_fifo: z,
            q_dispatch_std: z,
            q_dispatch_stream: z,
            fn_invoke_direct: z,
            fn_cold_start: z,
            fn_warm_overhead: z,
            fn_compute: z,
            tcp_reply: z,
            ping: z,
            client_work: z,
            sandbox: SandboxMults::identity(),
            arch_arm: ArchMults {
                kv_queue: 1.0,
                obj: 1.0,
            },
        }
    }

    /// The spec for an operation.
    pub fn spec(&self, op: Op) -> &LatencySpec {
        match op {
            Op::KvGet { consistent: true } => &self.kv_get_strong,
            Op::KvGet { consistent: false } => &self.kv_get_eventual,
            Op::KvPut | Op::KvUpdate { conditional: false } | Op::KvDelete => &self.kv_write,
            Op::KvUpdate { conditional: true } => &self.kv_write_cond,
            Op::KvTransact => &self.kv_transact,
            Op::KvScan => &self.kv_scan,
            Op::ObjGet => &self.obj_get,
            Op::ObjPut | Op::ObjDelete => &self.obj_put,
            Op::MemGet => &self.mem_get,
            Op::MemPut => &self.mem_put,
            Op::QueueSend(QueueKind::Fifo) => &self.q_send_fifo,
            Op::QueueSend(QueueKind::Standard) => &self.q_send_std,
            Op::QueueSend(QueueKind::Stream) => &self.q_send_stream,
            Op::QueueSend(QueueKind::PubSub) => &self.q_send_std,
            Op::QueueSend(QueueKind::PubSubOrdered) => &self.q_send_fifo,
            Op::QueueDispatch(QueueKind::Fifo) => &self.q_dispatch_fifo,
            Op::QueueDispatch(QueueKind::Standard) => &self.q_dispatch_std,
            Op::QueueDispatch(QueueKind::Stream) => &self.q_dispatch_stream,
            Op::QueueDispatch(QueueKind::PubSub) => &self.q_dispatch_std,
            Op::QueueDispatch(QueueKind::PubSubOrdered) => &self.q_dispatch_fifo,
            Op::FnInvokeDirect => &self.fn_invoke_direct,
            Op::FnColdStart => &self.fn_cold_start,
            Op::FnWarmOverhead => &self.fn_warm_overhead,
            Op::FnCompute => &self.fn_compute,
            Op::TcpReply => &self.tcp_reply,
            Op::Ping => &self.ping,
            Op::ClientWork => &self.client_work,
        }
    }

    /// Environment multipliers for `op` in `env`: `(base_mult, per_kb_mult)`.
    fn env_mults(&self, op: Op, env: &ExecEnv) -> (f64, f64) {
        if env.kind == EnvKind::Client {
            return (1.0, 1.0);
        }
        let mem_base = env.mem_base_factor();
        let mem_io = env.mem_io_factor();
        let arm = env.arch == Arch::Arm;
        match op {
            Op::KvGet { .. } | Op::KvScan => {
                let a = if arm { self.arch_arm.kv_queue } else { 1.0 };
                (self.sandbox.kv_read * mem_base * a, mem_io * a)
            }
            Op::KvPut | Op::KvUpdate { .. } | Op::KvDelete | Op::KvTransact => {
                let a = if arm { self.arch_arm.kv_queue } else { 1.0 };
                (self.sandbox.kv_write * mem_base * a, mem_io * a)
            }
            Op::ObjGet | Op::ObjPut | Op::ObjDelete => {
                let a = if arm { self.arch_arm.obj } else { 1.0 };
                (
                    self.sandbox.obj_base * mem_base * a,
                    self.sandbox.obj_per_kb * mem_io * a,
                )
            }
            Op::QueueSend(_) | Op::QueueDispatch(_) => {
                let a = if arm { self.arch_arm.kv_queue } else { 1.0 };
                (self.sandbox.queue * mem_base * a, mem_io * a)
            }
            Op::MemGet | Op::MemPut => (mem_base, mem_io),
            Op::FnCompute | Op::ClientWork => {
                let c = env.cpu_factor();
                (c, c)
            }
            _ => (1.0, 1.0),
        }
    }

    /// Samples a latency for `op` on `size_bytes` of payload.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        op: Op,
        size_bytes: usize,
        cross_region: bool,
        env: &ExecEnv,
        rng: &mut R,
    ) -> Duration {
        let spec = self.spec(op);
        if spec.base_ms == 0.0 && spec.per_kb_ms == 0.0 && spec.cross_region_ms == 0.0 {
            return Duration::ZERO;
        }
        let kb = size_bytes as f64 / 1024.0;
        let (base_mult, kb_mult) = self.env_mults(op, env);
        let median = spec.base_ms * base_mult + spec.per_kb_ms * kb * kb_mult;
        let mut ms = if spec.sigma > 0.0 {
            let ln = LogNormal::new(median.max(1e-9).ln(), spec.sigma)
                .expect("valid lognormal parameters");
            ln.sample(rng)
        } else {
            median
        };
        if spec.tail_p > 0.0 && rng.gen::<f64>() < spec.tail_p {
            // Tail events: multiplier with an exponential extension, giving
            // the long maxima the paper reports (Table 6a max column).
            let ext: f64 = rng.gen::<f64>();
            ms *= spec.tail_mult * (1.0 + ext);
        }
        if cross_region {
            ms += spec.cross_region_ms + spec.cross_region_per_kb_ms * kb;
        }
        ms = ms.max(spec.min_ms);
        Duration::from_nanos((ms * 1e6) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn median_of(model: &LatencyModel, op: Op, size: usize, env: &ExecEnv) -> f64 {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut samples: Vec<f64> = (0..2001)
            .map(|_| model.sample(op, size, false, env, &mut rng).as_secs_f64() * 1e3)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    }

    #[test]
    fn ddb_write_matches_table_6a() {
        // Table 6a: regular DynamoDB write p50 = 4.35 ms @ 1 kB,
        // 66.31 ms @ 64 kB (EC2 client).
        let m = LatencyModel::aws();
        let env = ExecEnv::client();
        let p50_1k = median_of(&m, Op::KvPut, 1024, &env);
        let p50_64k = median_of(&m, Op::KvPut, 64 * 1024, &env);
        assert!((p50_1k - 4.35).abs() < 0.6, "1 kB write p50 {p50_1k}");
        assert!((p50_64k - 66.31).abs() < 5.0, "64 kB write p50 {p50_64k}");
    }

    #[test]
    fn conditional_update_adds_lock_overhead() {
        // Table 6a: timed lock acquire p50 6.8 ms @ 1 kB vs 4.35 regular.
        let m = LatencyModel::aws();
        let env = ExecEnv::client();
        let regular = median_of(&m, Op::KvUpdate { conditional: false }, 1024, &env);
        let locked = median_of(&m, Op::KvUpdate { conditional: true }, 1024, &env);
        assert!(locked > regular + 1.5, "lock {locked} vs regular {regular}");
        assert!((locked - 6.8).abs() < 0.8, "lock p50 {locked}");
    }

    #[test]
    fn fifo_queue_beats_direct_invocation() {
        // Table 7a: SQS FIFO e2e (24.22) < direct Lambda invoke (39.0).
        let m = LatencyModel::aws();
        let env = ExecEnv::client();
        let send = median_of(&m, Op::QueueSend(QueueKind::Fifo), 64, &env);
        let dispatch = median_of(&m, Op::QueueDispatch(QueueKind::Fifo), 64, &env);
        let reply = median_of(&m, Op::TcpReply, 64, &env);
        let direct = median_of(&m, Op::FnInvokeDirect, 64, &env);
        let fifo_e2e = send + dispatch + reply;
        assert!(
            fifo_e2e < direct,
            "fifo {fifo_e2e} should beat direct {direct}"
        );
        assert!((fifo_e2e - 24.22).abs() < 5.0, "fifo e2e {fifo_e2e}");
    }

    #[test]
    fn stream_dispatch_is_an_order_of_magnitude_slower() {
        // Table 7a: DynamoDB Streams e2e p50 242.65 ms.
        let m = LatencyModel::aws();
        let env = ExecEnv::client();
        let d = median_of(&m, Op::QueueDispatch(QueueKind::Stream), 64, &env);
        assert!(d > 180.0 && d < 300.0, "stream dispatch {d}");
    }

    #[test]
    fn memory_scaling_improves_in_function_io() {
        let m = LatencyModel::aws();
        let small = ExecEnv::function(512);
        let large = ExecEnv::function(2048);
        let p_small = median_of(&m, Op::ObjPut, 250 * 1024, &small);
        let p_large = median_of(&m, Op::ObjPut, 250 * 1024, &large);
        assert!(
            p_small > p_large * 1.2,
            "512 MB {p_small} vs 2048 MB {p_large}"
        );
    }

    #[test]
    fn cross_region_pays_penalty() {
        let m = LatencyModel::aws();
        let env = ExecEnv::client();
        let mut rng = SmallRng::seed_from_u64(7);
        let local = m.sample(Op::ObjGet, 1024, false, &env, &mut rng);
        let mut rng = SmallRng::seed_from_u64(7);
        let remote = m.sample(Op::ObjGet, 1024, true, &env, &mut rng);
        assert!(remote > local + Duration::from_millis(80));
    }

    #[test]
    fn arm_slows_object_path_speeds_kv_path() {
        let m = LatencyModel::aws();
        let x86 = ExecEnv::function(2048);
        let arm = ExecEnv::function(2048).with_arch(Arch::Arm);
        let obj_x86 = median_of(&m, Op::ObjPut, 64 * 1024, &x86);
        let obj_arm = median_of(&m, Op::ObjPut, 64 * 1024, &arm);
        assert!(obj_arm > obj_x86 * 1.5);
        let kv_x86 = median_of(&m, Op::KvUpdate { conditional: true }, 1024, &x86);
        let kv_arm = median_of(&m, Op::KvUpdate { conditional: true }, 1024, &arm);
        assert!(kv_arm < kv_x86);
    }

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        let env = ExecEnv::client();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            m.sample(Op::ObjPut, 1 << 20, false, &env, &mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn gcp_direct_invocation_slower_than_aws() {
        let aws = LatencyModel::aws();
        let gcp = LatencyModel::gcp();
        let env = ExecEnv::client();
        let a = median_of(&aws, Op::FnInvokeDirect, 64, &env);
        let g = median_of(&gcp, Op::FnInvokeDirect, 64, &env);
        assert!((a - 39.0).abs() < 5.0, "aws direct {a}");
        assert!((g - 83.29).abs() < 8.0, "gcp direct {g}");
    }

    #[test]
    fn gcp_ordered_pubsub_adds_170ms_over_direct() {
        // Table 7c: ordered Pub/Sub e2e ~201 ms vs direct 83 ms.
        let gcp = LatencyModel::gcp();
        let env = ExecEnv::client();
        let e2e = median_of(&gcp, Op::QueueSend(QueueKind::PubSubOrdered), 64, &env)
            + median_of(&gcp, Op::QueueDispatch(QueueKind::PubSubOrdered), 64, &env);
        assert!((e2e - 200.0).abs() < 25.0, "pubsub fifo e2e {e2e}");
    }

    #[test]
    fn datastore_crossover_vs_dynamodb() {
        // Fig 8: Datastore 2.3x slower on small nodes, ~30 % faster on
        // large nodes.
        let aws = LatencyModel::aws();
        let gcp = LatencyModel::gcp();
        let env = ExecEnv::client();
        let small_aws = median_of(&aws, Op::KvGet { consistent: true }, 128, &env);
        let small_gcp = median_of(&gcp, Op::KvGet { consistent: true }, 128, &env);
        assert!(small_gcp > small_aws * 1.8);
        let large_aws = median_of(&aws, Op::KvGet { consistent: true }, 400 * 1024, &env);
        let large_gcp = median_of(&gcp, Op::KvGet { consistent: true }, 400 * 1024, &env);
        assert!(large_gcp < large_aws);
    }
}
