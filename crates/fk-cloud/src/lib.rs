//! # fk-cloud — simulated cloud substrate for FaaSKeeper
//!
//! In-process, thread-safe equivalents of the cloud services the
//! FaaSKeeper paper (Copik et al., HPDC 2024) builds on:
//!
//! * [`kvstore::KvStore`] — DynamoDB/Datastore-like table with atomic
//!   conditional update expressions, strong/eventual reads, multi-item
//!   transactions, and per-kB billing;
//! * [`objectstore::ObjectStore`] — S3/Cloud-Storage-like bucket with
//!   whole-object PUT/GET and strong read-after-write consistency;
//! * [`memstore::MemStore`] — Redis-like in-memory cache;
//! * [`queue::Queue`] — SQS / SQS-FIFO / Streams / Pub/Sub-like queues
//!   with message-group FIFO, batching, visibility timeouts and monotonic
//!   sequence numbers;
//! * [`faas::FaasRuntime`] — Lambda-like function runtime with free,
//!   event-triggered and scheduled functions, warm/cold sandboxes and
//!   GB-second metering;
//! * [`latency::LatencyModel`] — per-operation latency distributions
//!   calibrated to the paper's published measurements;
//! * [`trace::Ctx`] — per-request virtual-time accounting that reproduces
//!   end-to-end latencies along real code paths;
//! * [`metering::Meter`] — pay-as-you-go usage counters;
//! * [`chaos::Chaos`] — seeded, deterministic fault injection at every
//!   service boundary;
//! * [`retry::with_retry`] — unified exponential-backoff retry with
//!   decorrelated jitter for all cloud call sites;
//! * [`des`] — a small discrete-event simulator for throughput studies.
//!
//! The services are faithful at the level of *semantics and guarantees*
//! (the level at which the paper defines its cloud-agnostic design, §3.7)
//! rather than wire protocols.

#![warn(missing_docs)]

pub mod chaos;
pub mod des;
pub mod error;
pub mod expr;
pub mod faas;
pub mod kvstore;
pub mod latency;
pub mod memstore;
pub mod metering;
pub mod objectstore;
pub mod ops;
pub mod queue;
pub mod region;
pub mod retry;
pub mod trace;
pub mod value;

pub use chaos::{Chaos, FaultKind, FaultPlan, FaultSpec};
pub use error::{CloudError, CloudResult};
pub use expr::{Condition, Update};
pub use faas::{Event, FaasRuntime, FnError, FunctionConfig, Handler};
pub use kvstore::{Consistency, KvStore, TransactOp};
pub use latency::{Arch, EnvKind, ExecEnv, LatencyModel, LatencySpec};
pub use memstore::MemStore;
pub use metering::{Meter, UsageSnapshot};
pub use objectstore::ObjectStore;
pub use ops::{Op, QueueKind};
pub use queue::{AdaptiveBatch, Batch, Message, Queue, Receipt, ShardedQueues};
pub use region::Region;
pub use retry::{with_retry, RetryPolicy};
pub use trace::{Ctx, LatencyMode, SpanRecord};
pub use value::{Item, Value};
