//! Simulated in-memory cache (Redis / ElastiCache equivalent).
//!
//! Used as the low-latency user-data store variant in Figure 8, where
//! "FaaSKeeper with an in-memory cache is on par with self-hosted
//! ZooKeeper". The paper notes such stores are *not* serverless today
//! (Requirement #8) — they require a provisioned VM, which the cost model
//! accounts for separately.

use crate::error::{CloudError, CloudResult};
use crate::metering::Meter;
use crate::ops::Op;
use crate::region::Region;
use crate::trace::Ctx;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

struct Inner {
    region: Region,
    meter: Meter,
    map: RwLock<HashMap<String, Bytes>>,
}

/// A shared in-memory key-value cache. Cloning shares the cache.
#[derive(Clone)]
pub struct MemStore {
    inner: Arc<Inner>,
}

impl MemStore {
    /// Creates an empty cache.
    pub fn new(region: Region, meter: Meter) -> Self {
        MemStore {
            inner: Arc::new(Inner {
                region,
                meter,
                map: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Region the cache VM runs in.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// Stores a value.
    pub fn put(&self, ctx: &Ctx, key: &str, data: Bytes) {
        let size = data.len();
        self.inner.map.write().insert(key.to_owned(), data);
        self.inner.meter.mem_op();
        ctx.charge_to(Op::MemPut, size, self.inner.region);
    }

    /// Fetches a value.
    pub fn get(&self, ctx: &Ctx, key: &str) -> CloudResult<Bytes> {
        let data = self.inner.map.read().get(key).cloned();
        self.inner.meter.mem_op();
        match data {
            Some(bytes) => {
                ctx.charge_to(Op::MemGet, bytes.len(), self.inner.region);
                Ok(bytes)
            }
            None => {
                ctx.charge_to(Op::MemGet, 1, self.inner.region);
                Err(CloudError::NotFound {
                    key: key.to_owned(),
                })
            }
        }
    }

    /// Deletes a value (idempotent).
    pub fn delete(&self, ctx: &Ctx, key: &str) {
        self.inner.map.write().remove(key);
        self.inner.meter.mem_op();
        ctx.charge_to(Op::MemPut, 1, self.inner.region);
    }

    /// Fetches every entry whose key starts with `prefix`, sorted by
    /// key (Redis `SCAN MATCH prefix*` equivalent — one metered
    /// operation, charged for the matched bytes).
    pub fn scan_prefix(&self, ctx: &Ctx, prefix: &str) -> Vec<(String, Bytes)> {
        let mut out: Vec<(String, Bytes)> = self
            .inner
            .map
            .read()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.inner.meter.mem_op();
        let total: usize = out.iter().map(|(_, b)| b.len()).sum();
        ctx.charge_to(Op::MemGet, total.max(1), self.inner.region);
        out
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.map.read().len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_delete() {
        let ms = MemStore::new(Region::US_EAST_1, Meter::new());
        let ctx = Ctx::disabled();
        ms.put(&ctx, "k", Bytes::from_static(b"v"));
        assert_eq!(ms.get(&ctx, "k").unwrap().as_ref(), b"v");
        ms.delete(&ctx, "k");
        assert!(ms.get(&ctx, "k").unwrap_err().is_not_found());
        assert!(ms.is_empty());
    }

    #[test]
    fn ops_are_metered() {
        let meter = Meter::new();
        let ms = MemStore::new(Region::US_EAST_1, meter.clone());
        let ctx = Ctx::disabled();
        ms.put(&ctx, "k", Bytes::from_static(b"v"));
        let _ = ms.get(&ctx, "k");
        assert_eq!(meter.snapshot().mem_ops, 2);
    }
}
