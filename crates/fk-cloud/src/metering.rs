//! Usage metering for pay-as-you-go billing.
//!
//! Every simulated service records billing units the way the real services
//! meter them (§5.2.2, Table 4):
//!
//! * key-value store — write units per started kB, read units per started
//!   4 kB (halved for eventually consistent reads),
//! * object store — flat per-operation charges,
//! * queues — messages in 64 kB increments,
//! * functions — invocations and GB-seconds.
//!
//! `fk-cost` prices a [`UsageSnapshot`] under a provider's price sheet; the
//! split keeps the substrate free of pricing knowledge.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Immutable snapshot of metered usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageSnapshot {
    /// KV write units (1 kB increments).
    pub kv_write_units: u64,
    /// KV read units (4 kB increments; eventual reads count half).
    pub kv_read_units: f64,
    /// Raw KV operation count.
    pub kv_ops: u64,
    /// Object store GET operations.
    pub obj_gets: u64,
    /// Object store PUT operations.
    pub obj_puts: u64,
    /// Bytes currently stored in the object store.
    pub obj_bytes_stored: u64,
    /// Bytes currently stored in the KV store.
    pub kv_bytes_stored: u64,
    /// Queue messages sent.
    pub queue_messages: u64,
    /// Queue billing units (64 kB increments).
    pub queue_units: u64,
    /// Function invocations.
    pub fn_invocations: u64,
    /// Function compute, in GB-seconds.
    pub fn_gb_seconds: f64,
    /// In-memory cache operations.
    pub mem_ops: u64,
    /// Client read-cache hits (reads served without a storage request —
    /// deliberately **not** priced: avoided round trips bill nothing).
    pub cache_hits: u64,
    /// Client read-cache misses (each paid a storage request, which is
    /// metered by the store that served it).
    pub cache_misses: u64,
    /// Client reads coalesced into a concurrent flight's round trip.
    pub cache_coalesced: u64,
    /// Regional read-replica hits (reads served from a shared in-memory
    /// replica — like cache hits, deliberately **not** priced: no
    /// storage service saw the read).
    pub replica_hits: u64,
    /// Cloud-call retries performed by the unified retry layer
    /// (per-site breakdown under `retry:<site>` in [`per_op`]).
    ///
    /// [`per_op`]: UsageSnapshot::per_op
    pub retries: u64,
    /// Faults fired by the chaos engine (per-point breakdown under
    /// `fault:<kind>` in `per_op`).
    pub faults_injected: u64,
    /// Messages currently parked in dead-letter queues (a depth gauge,
    /// like the stored-bytes counters: raised when a message exhausts
    /// its redelivery budget, lowered when a drain collects it).
    pub queue_dead_letters: u64,
    /// Per-label operation counts (diagnostics).
    pub per_op: BTreeMap<String, u64>,
}

impl UsageSnapshot {
    /// Difference `self - earlier` (componentwise, for interval metering).
    pub fn since(&self, earlier: &UsageSnapshot) -> UsageSnapshot {
        UsageSnapshot {
            kv_write_units: self.kv_write_units - earlier.kv_write_units,
            kv_read_units: self.kv_read_units - earlier.kv_read_units,
            kv_ops: self.kv_ops - earlier.kv_ops,
            obj_gets: self.obj_gets - earlier.obj_gets,
            obj_puts: self.obj_puts - earlier.obj_puts,
            obj_bytes_stored: self.obj_bytes_stored,
            kv_bytes_stored: self.kv_bytes_stored,
            queue_messages: self.queue_messages - earlier.queue_messages,
            queue_units: self.queue_units - earlier.queue_units,
            fn_invocations: self.fn_invocations - earlier.fn_invocations,
            fn_gb_seconds: self.fn_gb_seconds - earlier.fn_gb_seconds,
            mem_ops: self.mem_ops - earlier.mem_ops,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_coalesced: self.cache_coalesced - earlier.cache_coalesced,
            replica_hits: self.replica_hits - earlier.replica_hits,
            retries: self.retries - earlier.retries,
            faults_injected: self.faults_injected - earlier.faults_injected,
            queue_dead_letters: self.queue_dead_letters,
            per_op: self
                .per_op
                .iter()
                .map(|(k, v)| {
                    let prev = earlier.per_op.get(k).copied().unwrap_or(0);
                    (k.clone(), v - prev)
                })
                .collect(),
        }
    }
}

/// Shared, thread-safe usage meter. Cloning shares the same counters.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    inner: Arc<Mutex<UsageSnapshot>>,
}

/// Rounds `bytes` up to `unit`-sized billing increments (at least 1).
pub fn billing_units(bytes: usize, unit: usize) -> u64 {
    (bytes.max(1)).div_ceil(unit) as u64
}

impl Meter {
    /// Creates a fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&self, label: &'static str, f: impl FnOnce(&mut UsageSnapshot)) {
        let mut inner = self.inner.lock();
        f(&mut inner);
        *inner.per_op.entry(label.to_owned()).or_insert(0) += 1;
    }

    /// Records a KV write of an item of `bytes` total size.
    pub fn kv_write(&self, bytes: usize) {
        self.bump("kv_write", |s| {
            s.kv_write_units += billing_units(bytes, 1024);
            s.kv_ops += 1;
        });
    }

    /// Records a KV read; eventually consistent reads cost half a unit.
    pub fn kv_read(&self, bytes: usize, consistent: bool) {
        self.bump("kv_read", |s| {
            let units = billing_units(bytes, 4096) as f64;
            s.kv_read_units += if consistent { units } else { units / 2.0 };
            s.kv_ops += 1;
        });
    }

    /// Records one transactional KV write *request* covering `item_bytes`
    /// items. Billing follows the provider model per item: each item's
    /// bytes round up to 1 kB units independently and a transaction bills
    /// 2x write units per item — a batch never pools its items' bytes
    /// into one rounding. `kv_ops` and the `kv_transact` label count the
    /// request (one round trip); `kv_transact_items` counts the items.
    pub fn kv_transact_write(&self, item_bytes: &[usize]) {
        let items = item_bytes.len() as u64;
        let units: u64 = item_bytes.iter().map(|&b| 2 * billing_units(b, 1024)).sum();
        self.bump("kv_transact", |s| {
            s.kv_write_units += units;
            s.kv_ops += 1;
            *s.per_op.entry("kv_transact_items".to_owned()).or_insert(0) += items;
        });
    }

    /// Records a scan that touched `bytes` in total.
    pub fn kv_scan(&self, bytes: usize) {
        self.bump("kv_scan", |s| {
            s.kv_read_units += billing_units(bytes, 4096) as f64;
            s.kv_ops += 1;
        });
    }

    /// Updates the KV storage footprint.
    pub fn kv_stored_delta(&self, delta: i64) {
        let mut inner = self.inner.lock();
        inner.kv_bytes_stored = inner.kv_bytes_stored.saturating_add_signed(delta);
    }

    /// Records an object GET.
    pub fn obj_get(&self) {
        self.bump("obj_get", |s| s.obj_gets += 1);
    }

    /// Records an object PUT.
    pub fn obj_put(&self) {
        self.bump("obj_put", |s| s.obj_puts += 1);
    }

    /// Updates the object storage footprint.
    pub fn obj_stored_delta(&self, delta: i64) {
        let mut inner = self.inner.lock();
        inner.obj_bytes_stored = inner.obj_bytes_stored.saturating_add_signed(delta);
    }

    /// Records a queue send of `bytes` (billed per 64 kB).
    pub fn queue_send(&self, bytes: usize) {
        self.bump("queue_send", |s| {
            s.queue_messages += 1;
            s.queue_units += billing_units(bytes, 64 * 1024);
        });
    }

    /// Records a function invocation consuming `duration` at `memory_mb`.
    pub fn fn_invocation(&self, memory_mb: u32, duration: Duration) {
        self.bump("fn_invocation", |s| {
            s.fn_invocations += 1;
            s.fn_gb_seconds += memory_mb as f64 / 1024.0 * duration.as_secs_f64();
        });
    }

    /// Records an in-memory cache operation.
    pub fn mem_op(&self) {
        self.bump("mem_op", |s| s.mem_ops += 1);
    }

    /// Records a client read-cache hit. Hits bill nothing — no storage
    /// service saw the read — so the counter exists purely to expose hit
    /// ratios next to the storage round trips that were avoided.
    pub fn cache_hit(&self) {
        self.bump("cache_hit", |s| s.cache_hits += 1);
    }

    /// Records a client read-cache miss (the paired storage request is
    /// metered separately by the store that served it).
    pub fn cache_miss(&self) {
        self.bump("cache_miss", |s| s.cache_misses += 1);
    }

    /// Records a read coalesced into another caller's in-flight storage
    /// round trip (bills nothing, like a hit).
    pub fn cache_coalesced(&self) {
        self.bump("cache_coalesced", |s| s.cache_coalesced += 1);
    }

    /// Records a regional read-replica hit. Like a cache hit it bills
    /// nothing and adds no storage round trip — the read never left the
    /// replica's memory.
    pub fn replica_hit(&self) {
        self.bump("replica_hit", |s| s.replica_hits += 1);
    }

    /// Records one retry performed by the unified retry layer at `site`
    /// (labelled `retry:<site>` for the per-call-site matrix).
    pub fn retry(&self, site: &'static str) {
        let mut inner = self.inner.lock();
        inner.retries += 1;
        *inner.per_op.entry(format!("retry:{site}")).or_insert(0) += 1;
    }

    /// Records one fault fired by the chaos engine at the named point
    /// (labelled `fault:<kind>`).
    pub fn fault_injected(&self, kind: &'static str) {
        let mut inner = self.inner.lock();
        inner.faults_injected += 1;
        *inner.per_op.entry(format!("fault:{kind}")).or_insert(0) += 1;
    }

    /// Adjusts the dead-letter depth gauge: positive when messages
    /// exhaust their redelivery budget, negative when a drain collects
    /// them.
    pub fn dead_letter_delta(&self, delta: i64) {
        let mut inner = self.inner.lock();
        inner.queue_dead_letters = inner.queue_dead_letters.saturating_add_signed(delta);
    }

    /// Takes a snapshot of current usage.
    pub fn snapshot(&self) -> UsageSnapshot {
        self.inner.lock().clone()
    }

    /// Resets all counters.
    pub fn reset(&self) {
        *self.inner.lock() = UsageSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billing_unit_rounding() {
        assert_eq!(billing_units(0, 1024), 1);
        assert_eq!(billing_units(1, 1024), 1);
        assert_eq!(billing_units(1024, 1024), 1);
        assert_eq!(billing_units(1025, 1024), 2);
        assert_eq!(billing_units(64 * 1024, 64 * 1024), 1);
        assert_eq!(billing_units(64 * 1024 + 1, 64 * 1024), 2);
    }

    #[test]
    fn kv_write_units_per_kb() {
        let m = Meter::new();
        m.kv_write(100); // 1 unit
        m.kv_write(1500); // 2 units
        let s = m.snapshot();
        assert_eq!(s.kv_write_units, 3);
        assert_eq!(s.kv_ops, 2);
    }

    #[test]
    fn eventual_reads_cost_half() {
        let m = Meter::new();
        m.kv_read(4096, true);
        m.kv_read(4096, false);
        let s = m.snapshot();
        assert!((s.kv_read_units - 1.5).abs() < 1e-9);
    }

    #[test]
    fn transactions_bill_double_per_item() {
        let m = Meter::new();
        m.kv_transact_write(&[1024]);
        assert_eq!(m.snapshot().kv_write_units, 2);
        // Per-item rounding: three small items are three 1 kB units each
        // billed twice, not one pooled rounding of the summed payload.
        m.kv_transact_write(&[100, 200, 1500]);
        let s = m.snapshot();
        assert_eq!(s.kv_write_units, 2 + 2 * (1 + 1 + 2));
        assert_eq!(s.kv_ops, 2, "one op per transaction request");
        assert_eq!(s.per_op["kv_transact"], 2, "label counts requests");
        assert_eq!(s.per_op["kv_transact_items"], 4, "items counted apart");
    }

    #[test]
    fn queue_units_per_64kb() {
        let m = Meter::new();
        m.queue_send(64);
        m.queue_send(65 * 1024);
        let s = m.snapshot();
        assert_eq!(s.queue_messages, 2);
        assert_eq!(s.queue_units, 3);
    }

    #[test]
    fn gb_seconds_accumulate() {
        let m = Meter::new();
        m.fn_invocation(512, Duration::from_millis(100));
        let s = m.snapshot();
        assert!((s.fn_gb_seconds - 0.05).abs() < 1e-9);
        assert_eq!(s.fn_invocations, 1);
    }

    #[test]
    fn since_computes_interval() {
        let m = Meter::new();
        m.kv_write(100);
        let before = m.snapshot();
        m.kv_write(100);
        m.obj_put();
        let diff = m.snapshot().since(&before);
        assert_eq!(diff.kv_write_units, 1);
        assert_eq!(diff.obj_puts, 1);
        assert_eq!(diff.per_op["kv_write"], 1);
    }

    #[test]
    fn cache_counters_accumulate_without_billable_units() {
        let m = Meter::new();
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.cache_coalesced();
        m.replica_hit();
        m.replica_hit();
        m.replica_hit();
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_coalesced, 1);
        assert_eq!(s.replica_hits, 3);
        // Hits never touch billable units: no storage request happened.
        assert_eq!(s.kv_ops, 0);
        assert_eq!(s.obj_gets, 0);
        assert_eq!(s.kv_read_units, 0.0);
        assert_eq!(s.mem_ops, 0, "replica hits are not mem-store ops");
        let diff = m.snapshot().since(&s);
        assert_eq!(diff.cache_hits, 0);
        assert_eq!(diff.replica_hits, 0);
    }

    #[test]
    fn retry_and_fault_counters_carry_labels() {
        let m = Meter::new();
        m.retry("push_to_leader");
        m.retry("push_to_leader");
        m.retry("evict");
        m.fault_injected("kv_error");
        let s = m.snapshot();
        assert_eq!(s.retries, 3);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.per_op["retry:push_to_leader"], 2);
        assert_eq!(s.per_op["retry:evict"], 1);
        assert_eq!(s.per_op["fault:kv_error"], 1);
        let diff = m.snapshot().since(&s);
        assert_eq!(diff.retries, 0);
        assert_eq!(diff.faults_injected, 0);
    }

    #[test]
    fn dead_letter_gauge_tracks_depth() {
        let m = Meter::new();
        m.dead_letter_delta(3);
        m.dead_letter_delta(-1);
        assert_eq!(m.snapshot().queue_dead_letters, 2);
        // A gauge, not an interval counter: `since` reports the current
        // depth, like the stored-bytes footprints.
        let before = m.snapshot();
        m.dead_letter_delta(-2);
        assert_eq!(m.snapshot().since(&before).queue_dead_letters, 0);
    }

    #[test]
    fn storage_footprint_tracks_deltas() {
        let m = Meter::new();
        m.obj_stored_delta(1000);
        m.obj_stored_delta(-400);
        assert_eq!(m.snapshot().obj_bytes_stored, 600);
        m.kv_stored_delta(123);
        assert_eq!(m.snapshot().kv_bytes_stored, 123);
    }
}
