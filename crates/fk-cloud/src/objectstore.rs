//! Simulated object store (S3 / Cloud Storage equivalent).
//!
//! Whole-object PUT/GET with strong read-after-write consistency — modern
//! object stores guarantee it (§2.1) and FaaSKeeper's Z3 depends on it.
//! Crucially there are **no partial updates** (Requirement #6): updating a
//! single node field forces the leader to download and re-upload the whole
//! object, which is where a large share of the write latency in Figure 9
//! comes from.

use crate::chaos::{Chaos, FaultKind};
use crate::error::{CloudError, CloudResult};
use crate::metering::Meter;
use crate::ops::Op;
use crate::region::Region;
use crate::trace::Ctx;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

struct Inner {
    name: String,
    region: Region,
    meter: Meter,
    objects: RwLock<BTreeMap<String, Bytes>>,
    max_object_bytes: usize,
    chaos: OnceLock<Arc<Chaos>>,
}

/// A bucket in the simulated object store. Cloning shares the bucket.
#[derive(Clone)]
pub struct ObjectStore {
    inner: Arc<Inner>,
}

impl ObjectStore {
    /// Creates a bucket (S3-like 5 TB object limit — effectively unbounded
    /// for ZooKeeper nodes, which the paper caps at 1 MB).
    pub fn new(name: impl Into<String>, region: Region, meter: Meter) -> Self {
        ObjectStore {
            inner: Arc::new(Inner {
                name: name.into(),
                region,
                meter,
                objects: RwLock::new(BTreeMap::new()),
                max_object_bytes: 5 * 1024 * 1024 * 1024,
                chaos: OnceLock::new(),
            }),
        }
    }

    /// Installs the chaos engine on this bucket (at most once).
    pub fn install_chaos(&self, chaos: Arc<Chaos>) {
        let _ = self.inner.chaos.set(chaos);
    }

    /// The bucket's usage meter.
    pub fn meter(&self) -> &Meter {
        &self.inner.meter
    }

    /// Rolls the transient-error fault point; a firing request is still
    /// billed and charged (the round trip happened, the service said
    /// 503), and no object state changed.
    fn chaos_error(&self, ctx: &Ctx, op: Op) -> CloudResult<()> {
        let Some(chaos) = self.inner.chaos.get() else {
            return Ok(());
        };
        if chaos.fire(ctx, FaultKind::ObjError) {
            self.inner.meter.fault_injected(FaultKind::ObjError.label());
            ctx.charge_to(op, 1, self.inner.region);
            return Err(chaos.error(FaultKind::ObjError));
        }
        Ok(())
    }

    /// Bucket name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Region the bucket lives in.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// Stores a whole object (create or replace).
    pub fn put(&self, ctx: &Ctx, key: &str, data: Bytes) -> CloudResult<()> {
        if data.len() > self.inner.max_object_bytes {
            return Err(CloudError::PayloadTooLarge {
                size: data.len(),
                limit: self.inner.max_object_bytes,
            });
        }
        self.chaos_error(ctx, Op::ObjPut)?;
        let size = data.len();
        let old = self.inner.objects.write().insert(key.to_owned(), data);
        let old_size = old.map(|b| b.len()).unwrap_or(0);
        self.inner.meter.obj_put();
        self.inner
            .meter
            .obj_stored_delta(size as i64 - old_size as i64);
        ctx.charge_to(Op::ObjPut, size, self.inner.region);
        Ok(())
    }

    /// Fetches a whole object.
    pub fn get(&self, ctx: &Ctx, key: &str) -> CloudResult<Bytes> {
        self.chaos_error(ctx, Op::ObjGet)?;
        let data = self.inner.objects.read().get(key).cloned();
        self.inner.meter.obj_get();
        match data {
            Some(bytes) => {
                ctx.charge_to(Op::ObjGet, bytes.len(), self.inner.region);
                Ok(bytes)
            }
            None => {
                ctx.charge_to(Op::ObjGet, 1, self.inner.region);
                Err(CloudError::NotFound {
                    key: format!("{}/{key}", self.inner.name),
                })
            }
        }
    }

    /// Deletes an object (idempotent, like S3).
    pub fn delete(&self, ctx: &Ctx, key: &str) -> CloudResult<()> {
        self.chaos_error(ctx, Op::ObjDelete)?;
        let old = self.inner.objects.write().remove(key);
        let old_size = old.map(|b| b.len()).unwrap_or(0);
        self.inner.meter.obj_put();
        self.inner.meter.obj_stored_delta(-(old_size as i64));
        ctx.charge_to(Op::ObjDelete, old_size.max(1), self.inner.region);
        Ok(())
    }

    /// Lists keys with the given prefix.
    pub fn list(&self, ctx: &Ctx, prefix: &str) -> Vec<String> {
        let keys: Vec<String> = self
            .inner
            .objects
            .read()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        self.inner.meter.obj_get();
        ctx.charge_to(
            Op::ObjGet,
            keys.iter().map(String::len).sum::<usize>().max(1),
            self.inner.region,
        );
        keys
    }

    /// Fetches every object whose key starts with `prefix`, sorted by
    /// key: one LIST round trip plus one GET per matched object (the
    /// billing shape of an S3 prefix sweep). Fault injection rolls once,
    /// like a single GET — the sweep is one logical storage operation to
    /// the retry layer.
    pub fn get_prefix(&self, ctx: &Ctx, prefix: &str) -> CloudResult<Vec<(String, Bytes)>> {
        self.chaos_error(ctx, Op::ObjGet)?;
        let matched: Vec<(String, Bytes)> = self
            .inner
            .objects
            .read()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        // The LIST.
        self.inner.meter.obj_get();
        ctx.charge_to(
            Op::ObjGet,
            matched.iter().map(|(k, _)| k.len()).sum::<usize>().max(1),
            self.inner.region,
        );
        // One GET per object.
        for (_, bytes) in &matched {
            self.inner.meter.obj_get();
            ctx.charge_to(Op::ObjGet, bytes.len().max(1), self.inner.region);
        }
        Ok(matched)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.objects.read().len()
    }

    /// True if the bucket is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket() -> (ObjectStore, Ctx, Meter) {
        let meter = Meter::new();
        (
            ObjectStore::new("user-data", Region::US_EAST_1, meter.clone()),
            Ctx::disabled(),
            meter,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let (os, ctx, _) = bucket();
        os.put(&ctx, "/node/a", Bytes::from_static(b"hello"))
            .unwrap();
        assert_eq!(os.get(&ctx, "/node/a").unwrap().as_ref(), b"hello");
    }

    #[test]
    fn get_missing_is_not_found() {
        let (os, ctx, _) = bucket();
        assert!(os.get(&ctx, "/nope").unwrap_err().is_not_found());
    }

    #[test]
    fn put_replaces_whole_object() {
        let (os, ctx, _) = bucket();
        os.put(&ctx, "k", Bytes::from_static(b"aaaa")).unwrap();
        os.put(&ctx, "k", Bytes::from_static(b"b")).unwrap();
        assert_eq!(os.get(&ctx, "k").unwrap().as_ref(), b"b");
    }

    #[test]
    fn delete_is_idempotent() {
        let (os, ctx, _) = bucket();
        os.put(&ctx, "k", Bytes::from_static(b"x")).unwrap();
        os.delete(&ctx, "k").unwrap();
        os.delete(&ctx, "k").unwrap();
        assert!(os.get(&ctx, "k").unwrap_err().is_not_found());
    }

    #[test]
    fn list_by_prefix() {
        let (os, ctx, _) = bucket();
        for k in ["/a/1", "/a/2", "/b/1"] {
            os.put(&ctx, k, Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(
            os.list(&ctx, "/a/"),
            vec!["/a/1".to_owned(), "/a/2".to_owned()]
        );
        assert_eq!(os.list(&ctx, "/c/").len(), 0);
    }

    #[test]
    fn metering_tracks_ops_and_footprint() {
        let (os, ctx, meter) = bucket();
        os.put(&ctx, "k", Bytes::from(vec![0u8; 100])).unwrap();
        os.get(&ctx, "k").unwrap();
        os.put(&ctx, "k", Bytes::from(vec![0u8; 40])).unwrap();
        let s = meter.snapshot();
        assert_eq!(s.obj_puts, 2);
        assert_eq!(s.obj_gets, 1);
        assert_eq!(s.obj_bytes_stored, 40);
    }
}
