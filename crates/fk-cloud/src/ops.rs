//! Operation taxonomy for latency sampling and metering.
//!
//! Every simulated cloud operation is tagged with an [`Op`]; the latency
//! model maps the tag (plus payload size, caller region and execution
//! environment) to a sampled duration, and the meter maps it to billing
//! units. Keeping the taxonomy in one place ensures the benchmark harness,
//! the cost model and the services agree on what was executed.

/// Queue service flavour (Figure 7 compares these head-to-head).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// SQS FIFO: ordered per message group, batch ≤ 10, lowest latency in
    /// the paper's measurements (Table 7a).
    Fifo,
    /// SQS standard: unordered, long batching under load, bursty.
    Standard,
    /// DynamoDB-Streams-like: shard polling, highest latency (~240 ms p50).
    Stream,
    /// GCP Pub/Sub without ordering keys.
    PubSub,
    /// GCP Pub/Sub with ordering keys (FIFO); adds >170 ms overhead
    /// (Table 7c).
    PubSubOrdered,
}

impl QueueKind {
    /// Whether this queue preserves FIFO order within a message group.
    pub fn is_fifo(self) -> bool {
        matches!(
            self,
            QueueKind::Fifo | QueueKind::Stream | QueueKind::PubSubOrdered
        )
    }

    /// Maximum receive batch size (SQS FIFO restricts batches to 10).
    pub fn max_batch(self) -> usize {
        match self {
            QueueKind::Fifo => 10,
            QueueKind::Standard => 10_000,
            QueueKind::Stream => 1_000,
            QueueKind::PubSub | QueueKind::PubSubOrdered => 1_000,
        }
    }
}

/// A simulated cloud operation, used as the latency/metering key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Key-value store read (strongly or eventually consistent).
    KvGet {
        /// Strongly consistent read (costs 2x an eventually consistent one).
        consistent: bool,
    },
    /// Key-value store blind put.
    KvPut,
    /// Key-value store update expression; `conditional` adds the
    /// condition-evaluation overhead measured in Table 6a (~2.5 ms).
    KvUpdate {
        /// Whether a condition expression guards the update.
        conditional: bool,
    },
    /// Key-value store delete.
    KvDelete,
    /// Multi-item transactional write (GCP Datastore-style primitives).
    KvTransact,
    /// Full-table scan (heartbeat function lists sessions this way).
    KvScan,
    /// Object store GET (whole object).
    ObjGet,
    /// Object store PUT (whole object; no partial updates, §4.1/R6).
    ObjPut,
    /// Object store DELETE.
    ObjDelete,
    /// In-memory cache read (Redis-like user-store variant, Fig 8).
    MemGet,
    /// In-memory cache write.
    MemPut,
    /// Enqueue a message.
    QueueSend(QueueKind),
    /// Queue-to-function delivery overhead (trigger dispatch + batching).
    QueueDispatch(QueueKind),
    /// Synchronous "free function" invocation over the cloud API gateway.
    FnInvokeDirect,
    /// Sandbox allocation on a cold invocation.
    FnColdStart,
    /// Fixed per-invocation runtime overhead of a warm sandbox.
    FnWarmOverhead,
    /// CPU-bound work inside a function (serialization, base64, sorting);
    /// scaled by the sandbox's CPU allocation.
    FnCompute,
    /// TCP reply from a function back to the client (the paper measures
    /// 864 µs median for a cached connection).
    TcpReply,
    /// Heartbeat ping round-trip to a client.
    Ping,
    /// Client-side processing (deserialize, sort results, watch checks —
    /// 1.9–2.5 % overhead per §5.3.1).
    ClientWork,
}

impl Op {
    /// Short label used in span breakdowns and reports.
    pub fn label(self) -> &'static str {
        match self {
            Op::KvGet { consistent: true } => "kv_get_strong",
            Op::KvGet { consistent: false } => "kv_get_eventual",
            Op::KvPut => "kv_put",
            Op::KvUpdate { conditional: true } => "kv_update_cond",
            Op::KvUpdate { conditional: false } => "kv_update",
            Op::KvDelete => "kv_delete",
            Op::KvTransact => "kv_transact",
            Op::KvScan => "kv_scan",
            Op::ObjGet => "obj_get",
            Op::ObjPut => "obj_put",
            Op::ObjDelete => "obj_delete",
            Op::MemGet => "mem_get",
            Op::MemPut => "mem_put",
            Op::QueueSend(QueueKind::Fifo) => "queue_send_fifo",
            Op::QueueSend(QueueKind::Standard) => "queue_send_std",
            Op::QueueSend(QueueKind::Stream) => "queue_send_stream",
            Op::QueueSend(QueueKind::PubSub) => "queue_send_pubsub",
            Op::QueueSend(QueueKind::PubSubOrdered) => "queue_send_pubsub_fifo",
            Op::QueueDispatch(QueueKind::Fifo) => "queue_dispatch_fifo",
            Op::QueueDispatch(QueueKind::Standard) => "queue_dispatch_std",
            Op::QueueDispatch(QueueKind::Stream) => "queue_dispatch_stream",
            Op::QueueDispatch(QueueKind::PubSub) => "queue_dispatch_pubsub",
            Op::QueueDispatch(QueueKind::PubSubOrdered) => "queue_dispatch_pubsub_fifo",
            Op::FnInvokeDirect => "fn_invoke_direct",
            Op::FnColdStart => "fn_cold_start",
            Op::FnWarmOverhead => "fn_warm_overhead",
            Op::FnCompute => "fn_compute",
            Op::TcpReply => "tcp_reply",
            Op::Ping => "ping",
            Op::ClientWork => "client_work",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_classification() {
        assert!(QueueKind::Fifo.is_fifo());
        assert!(QueueKind::Stream.is_fifo());
        assert!(QueueKind::PubSubOrdered.is_fifo());
        assert!(!QueueKind::Standard.is_fifo());
        assert!(!QueueKind::PubSub.is_fifo());
    }

    #[test]
    fn fifo_batch_limit_is_ten() {
        assert_eq!(QueueKind::Fifo.max_batch(), 10);
        assert!(QueueKind::Standard.max_batch() > 10);
    }

    #[test]
    fn labels_are_distinct_for_variants() {
        assert_ne!(
            Op::KvUpdate { conditional: true }.label(),
            Op::KvUpdate { conditional: false }.label()
        );
        assert_ne!(
            Op::QueueSend(QueueKind::Fifo).label(),
            Op::QueueSend(QueueKind::Standard).label()
        );
    }
}
