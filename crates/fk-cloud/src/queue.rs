//! Simulated cloud queues (SQS / SQS FIFO / DynamoDB Streams / Pub/Sub).
//!
//! FaaSKeeper requires a queue that (§3.1): (a) invokes functions on
//! messages, (b) upholds FIFO order, (c) limits the concurrency of
//! consumers to a single instance per ordering group, (d) batches items,
//! and (e) assigns monotonically increasing sequence numbers. This module
//! provides those guarantees; the FaaS runtime builds triggers on top.
//!
//! FIFO semantics follow SQS FIFO message groups: within a group messages
//! are delivered in order and a group is *blocked* while any of its
//! messages is in flight, which is exactly how "only a single follower
//! instance can be active at a time" (Appendix B, Z2) is enforced.
//! Failed batches are redelivered after a visibility timeout or an
//! explicit negative acknowledgement, preserving order.

use crate::error::{CloudError, CloudResult};
use crate::metering::Meter;
use crate::ops::{Op, QueueKind};
use crate::region::Region;
use crate::trace::Ctx;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A queued message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Monotonically increasing sequence number (requirement (e); used as
    /// the transaction id source in FaaSKeeper).
    pub seq: u64,
    /// Ordering group (one per client session in FaaSKeeper).
    pub group: String,
    /// Payload.
    pub body: Bytes,
    /// Sender's virtual timestamp, merged into the consumer's clock.
    pub sent_vt_ns: u64,
    /// Delivery attempt count (1 on first delivery).
    pub attempt: u32,
}

/// Handle for acknowledging a received batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Receipt(u64);

/// A received batch: messages plus the receipt to ack/nack them with.
#[derive(Debug)]
pub struct Batch {
    /// The messages, in order.
    pub messages: Vec<Message>,
    /// Acknowledgement handle.
    pub receipt: Receipt,
}

#[derive(Debug)]
struct InFlight {
    group: Option<String>,
    messages: Vec<Message>,
    deadline: Instant,
}

#[derive(Debug, Default)]
struct QState {
    groups: HashMap<String, VecDeque<Message>>,
    /// Round-robin order of groups that currently hold pending messages.
    group_order: VecDeque<String>,
    /// Groups blocked by an in-flight batch (FIFO kinds only).
    blocked: HashSet<String>,
    inflight: HashMap<u64, InFlight>,
    dead_letters: Vec<Message>,
    next_seq: u64,
    next_receipt: u64,
    closed: bool,
}

struct Inner {
    name: String,
    kind: QueueKind,
    region: Region,
    meter: Meter,
    max_message_bytes: usize,
    max_receive_count: u32,
    state: Mutex<QState>,
    available: Condvar,
}

/// A simulated cloud queue. Cloning shares the queue.
#[derive(Clone)]
pub struct Queue {
    inner: Arc<Inner>,
}

impl Queue {
    /// Creates a queue of the given kind with provider-typical limits
    /// (SQS: 256 kB messages; Pub/Sub: 10 MB — §4.5).
    pub fn new(name: impl Into<String>, kind: QueueKind, region: Region, meter: Meter) -> Self {
        let max_message_bytes = match kind {
            QueueKind::Fifo | QueueKind::Standard => 256 * 1024,
            QueueKind::Stream => 400 * 1024,
            QueueKind::PubSub | QueueKind::PubSubOrdered => 10 * 1024 * 1024,
        };
        Queue {
            inner: Arc::new(Inner {
                name: name.into(),
                kind,
                region,
                meter,
                max_message_bytes,
                max_receive_count: 5,
                state: Mutex::new(QState {
                    next_seq: 1,
                    ..QState::default()
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// Queue name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Queue flavour.
    pub fn kind(&self) -> QueueKind {
        self.inner.kind
    }

    /// Region the queue lives in.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// Enqueues a message, returning its sequence number.
    pub fn send(&self, ctx: &Ctx, group: &str, body: Bytes) -> CloudResult<u64> {
        if body.len() > self.inner.max_message_bytes {
            return Err(CloudError::PayloadTooLarge {
                size: body.len(),
                limit: self.inner.max_message_bytes,
            });
        }
        let size = body.len();
        ctx.charge_to(Op::QueueSend(self.inner.kind), size, self.inner.region);
        let seq;
        {
            let mut st = self.inner.state.lock();
            if st.closed {
                return Err(CloudError::ServiceStopped);
            }
            seq = st.next_seq;
            st.next_seq += 1;
            let msg = Message {
                seq,
                group: group.to_owned(),
                body,
                sent_vt_ns: ctx.now_ns(),
                attempt: 0,
            };
            if !st.groups.contains_key(group) {
                st.group_order.push_back(group.to_owned());
            }
            st.groups.entry(group.to_owned()).or_default().push_back(msg);
        }
        self.inner.meter.queue_send(size);
        self.inner.available.notify_all();
        Ok(seq)
    }

    /// Number of pending (not in-flight) messages.
    pub fn pending(&self) -> usize {
        let st = self.inner.state.lock();
        st.groups.values().map(VecDeque::len).sum()
    }

    /// Messages that exhausted their redelivery budget.
    pub fn dead_letters(&self) -> Vec<Message> {
        self.inner.state.lock().dead_letters.clone()
    }

    /// Closes the queue; blocked receivers wake with an empty batch.
    pub fn close(&self) {
        self.inner.state.lock().closed = true;
        self.inner.available.notify_all();
    }

    /// True once [`Queue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    fn reclaim_expired(st: &mut QState, now: Instant, max_receive: u32) {
        let expired: Vec<u64> = st
            .inflight
            .iter()
            .filter(|(_, f)| f.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            let inflight = st.inflight.remove(&id).expect("expired id present");
            Self::requeue(st, inflight, max_receive);
        }
    }

    fn requeue(st: &mut QState, inflight: InFlight, max_receive: u32) {
        if let Some(group) = &inflight.group {
            st.blocked.remove(group);
        }
        // Re-deliverable messages return to the *front* of their group in
        // order; exhausted ones go to the dead-letter queue.
        for msg in inflight.messages.into_iter().rev() {
            if msg.attempt >= max_receive {
                st.dead_letters.push(msg);
                continue;
            }
            let group = msg.group.clone();
            if !st.groups.contains_key(&group) {
                st.group_order.push_front(group.clone());
            }
            st.groups.entry(group).or_default().push_front(msg);
        }
        st.groups.retain(|_, q| !q.is_empty());
    }

    fn try_take(st: &mut QState, kind: QueueKind, max: usize, visibility: Duration) -> Option<Batch> {
        let fifo = kind.is_fifo();
        let max = max.min(kind.max_batch()).max(1);
        // Find the first deliverable group in round-robin order.
        let mut chosen: Option<String> = None;
        for _ in 0..st.group_order.len() {
            let Some(group) = st.group_order.pop_front() else {
                break;
            };
            let has_msgs = st.groups.get(&group).map(|q| !q.is_empty()).unwrap_or(false);
            if !has_msgs {
                continue; // drop empty group from rotation
            }
            if fifo && st.blocked.contains(&group) {
                st.group_order.push_back(group);
                continue;
            }
            chosen = Some(group);
            break;
        }
        let group = chosen?;
        let queue = st.groups.get_mut(&group).expect("group exists");
        let take = queue.len().min(max);
        let mut messages = Vec::with_capacity(take);
        for _ in 0..take {
            let mut msg = queue.pop_front().expect("len checked");
            msg.attempt += 1;
            messages.push(msg);
        }
        if queue.is_empty() {
            st.groups.remove(&group);
        } else {
            st.group_order.push_back(group.clone());
        }
        let receipt = st.next_receipt;
        st.next_receipt += 1;
        let blocked_group = if fifo {
            st.blocked.insert(group.clone());
            Some(group)
        } else {
            None
        };
        st.inflight.insert(
            receipt,
            InFlight {
                group: blocked_group,
                messages: messages.clone(),
                deadline: Instant::now() + visibility,
            },
        );
        Some(Batch {
            messages,
            receipt: Receipt(receipt),
        })
    }

    /// Non-blocking receive of up to `max` messages (one ordering group
    /// per batch for FIFO kinds).
    pub fn receive(&self, max: usize, visibility: Duration) -> Option<Batch> {
        let mut st = self.inner.state.lock();
        Self::reclaim_expired(&mut st, Instant::now(), self.inner.max_receive_count);
        Self::try_take(&mut st, self.inner.kind, max, visibility)
    }

    /// Blocking receive: waits up to `timeout` for a deliverable batch.
    /// Returns `None` on timeout or when the queue is closed and drained.
    pub fn receive_timeout(&self, max: usize, visibility: Duration, timeout: Duration) -> Option<Batch> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            Self::reclaim_expired(&mut st, Instant::now(), self.inner.max_receive_count);
            if let Some(batch) = Self::try_take(&mut st, self.inner.kind, max, visibility) {
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wake early enough to reclaim expiring in-flight batches.
            let next_expiry = st.inflight.values().map(|f| f.deadline).min();
            let wait_until = next_expiry.map(|e| e.min(deadline)).unwrap_or(deadline);
            let wait = wait_until.saturating_duration_since(now).max(Duration::from_millis(1));
            self.inner.available.wait_for(&mut st, wait);
        }
    }

    /// Acknowledges a batch: deletes the messages and unblocks the group.
    pub fn ack(&self, receipt: Receipt) {
        let mut st = self.inner.state.lock();
        if let Some(inflight) = st.inflight.remove(&receipt.0) {
            if let Some(group) = inflight.group {
                st.blocked.remove(&group);
            }
        }
        drop(st);
        self.inner.available.notify_all();
    }

    /// Negative-acknowledges a batch from `first_failed` onward: earlier
    /// messages are deleted, the rest return to the front of their group
    /// (SQS partial-batch-failure semantics).
    pub fn nack(&self, receipt: Receipt, first_failed: usize) {
        let mut st = self.inner.state.lock();
        if let Some(mut inflight) = st.inflight.remove(&receipt.0) {
            inflight.messages.drain(..first_failed.min(inflight.messages.len()));
            Self::requeue(&mut st, inflight, self.inner.max_receive_count);
        }
        drop(st);
        self.inner.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo() -> Queue {
        Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Meter::new())
    }

    fn send(q: &Queue, group: &str, body: &str) -> u64 {
        q.send(&Ctx::disabled(), group, Bytes::from(body.to_owned()))
            .unwrap()
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let q = fifo();
        let s1 = send(&q, "a", "1");
        let s2 = send(&q, "b", "2");
        let s3 = send(&q, "a", "3");
        assert!(s1 < s2 && s2 < s3);
    }

    #[test]
    fn fifo_order_within_group() {
        let q = fifo();
        for i in 0..5 {
            send(&q, "s1", &format!("m{i}"));
        }
        let batch = q.receive(10, Duration::from_secs(30)).unwrap();
        let bodies: Vec<&[u8]> = batch.messages.iter().map(|m| m.body.as_ref()).collect();
        assert_eq!(bodies, vec![b"m0".as_ref(), b"m1", b"m2", b"m3", b"m4"]);
    }

    #[test]
    fn fifo_batch_capped_at_ten() {
        let q = fifo();
        for i in 0..15 {
            send(&q, "s1", &format!("m{i}"));
        }
        let batch = q.receive(100, Duration::from_secs(30)).unwrap();
        assert_eq!(batch.messages.len(), 10);
    }

    #[test]
    fn group_blocked_while_inflight() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        let b1 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b1.messages[0].body.as_ref(), b"a");
        // Same group blocked; nothing deliverable.
        assert!(q.receive(1, Duration::from_secs(30)).is_none());
        q.ack(b1.receipt);
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b2.messages[0].body.as_ref(), b"b");
    }

    #[test]
    fn independent_groups_deliver_concurrently() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s2", "b");
        let b1 = q.receive(1, Duration::from_secs(30)).unwrap();
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        let groups: HashSet<String> = [b1.messages[0].group.clone(), b2.messages[0].group.clone()]
            .into_iter()
            .collect();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn nack_redelivers_in_order() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        send(&q, "s1", "c");
        let b = q.receive(10, Duration::from_secs(30)).unwrap();
        assert_eq!(b.messages.len(), 3);
        // First message processed fine, failure at index 1.
        q.nack(b.receipt, 1);
        let b2 = q.receive(10, Duration::from_secs(30)).unwrap();
        let bodies: Vec<&[u8]> = b2.messages.iter().map(|m| m.body.as_ref()).collect();
        assert_eq!(bodies, vec![b"b".as_ref(), b"c"]);
        assert_eq!(b2.messages[0].attempt, 2);
        assert_eq!(b2.messages[1].attempt, 2);
    }

    #[test]
    fn visibility_timeout_requeues() {
        let q = fifo();
        send(&q, "s1", "a");
        let b = q.receive(1, Duration::from_millis(5)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        // Expired batch is reclaimed on the next receive.
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b2.messages[0].body.as_ref(), b"a");
        assert_eq!(b2.messages[0].attempt, 2);
        drop(b);
    }

    #[test]
    fn exhausted_retries_go_to_dead_letter_queue() {
        let q = fifo();
        send(&q, "s1", "poison");
        for _ in 0..5 {
            let b = q.receive(1, Duration::from_secs(30)).unwrap();
            q.nack(b.receipt, 0);
        }
        assert!(q.receive(1, Duration::from_secs(30)).is_none());
        let dl = q.dead_letters();
        assert_eq!(dl.len(), 1);
        assert_eq!(dl[0].body.as_ref(), b"poison");
    }

    #[test]
    fn standard_queue_does_not_block_groups() {
        let q = Queue::new("std", QueueKind::Standard, Region::US_EAST_1, Meter::new());
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        let b1 = q.receive(1, Duration::from_secs(30)).unwrap();
        // Standard queues allow concurrent delivery from the same group.
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b1.messages.len() + b2.messages.len(), 2);
    }

    #[test]
    fn message_size_limit() {
        let q = fifo();
        let err = q
            .send(&Ctx::disabled(), "g", Bytes::from(vec![0u8; 300 * 1024]))
            .unwrap_err();
        assert!(matches!(err, CloudError::PayloadTooLarge { .. }));
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let q = fifo();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            q2.receive_timeout(1, Duration::from_secs(30), Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        send(&q, "s1", "wake");
        let batch = handle.join().unwrap().expect("should receive");
        assert_eq!(batch.messages[0].body.as_ref(), b"wake");
    }

    #[test]
    fn close_wakes_blocked_receivers() {
        let q = fifo();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            q2.receive_timeout(1, Duration::from_secs(30), Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(handle.join().unwrap().is_none());
        assert!(q.send(&Ctx::disabled(), "g", Bytes::new()).is_err());
    }

    #[test]
    fn round_robin_across_groups() {
        let q = fifo();
        for g in ["a", "b", "c"] {
            send(&q, g, "m");
        }
        let mut seen = Vec::new();
        for _ in 0..3 {
            let b = q.receive(1, Duration::from_secs(30)).unwrap();
            seen.push(b.messages[0].group.clone());
            q.ack(b.receipt);
        }
        seen.sort();
        assert_eq!(seen, vec!["a", "b", "c"]);
    }
}
