//! Simulated cloud queues (SQS / SQS FIFO / DynamoDB Streams / Pub/Sub).
//!
//! FaaSKeeper requires a queue that (§3.1): (a) invokes functions on
//! messages, (b) upholds FIFO order, (c) limits the concurrency of
//! consumers to a single instance per ordering group, (d) batches items,
//! and (e) assigns monotonically increasing sequence numbers. This module
//! provides those guarantees; the FaaS runtime builds triggers on top.
//!
//! FIFO semantics follow SQS FIFO message groups: within a group messages
//! are delivered in order and a group is *blocked* while any of its
//! messages is in flight, which is exactly how "only a single follower
//! instance can be active at a time" (Appendix B, Z2) is enforced.
//! Failed batches are redelivered after a visibility timeout or an
//! explicit negative acknowledgement, preserving order.

use crate::chaos::{Chaos, FaultKind};
use crate::error::{CloudError, CloudResult};
use crate::metering::Meter;
use crate::ops::{Op, QueueKind};
use crate::region::Region;
use crate::trace::Ctx;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many receive polls a chaos-delayed message holds its group back.
const CHAOS_DELAY_POLLS: u32 = 3;

/// A queued message.
///
/// **Zero-copy delivery contract:** the payload is a ref-counted
/// [`Bytes`] and the ordering group a shared `Arc<str>`, so every hop a
/// message takes — into the queue, into the in-flight ledger at receive
/// time, back to the front of its group on a nack or a
/// [`Queue::nack_deferred`] deferral — moves or ref-bumps the *original*
/// allocations. A deferred leader batch in particular requeues the
/// original encoded record bytes untouched; nothing on the redelivery
/// path re-encodes or deep-copies a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Monotonically increasing sequence number (requirement (e); used as
    /// the transaction id source in FaaSKeeper).
    pub seq: u64,
    /// Ordering group (one per client session in FaaSKeeper), shared
    /// with the queue's internal group index.
    pub group: Arc<str>,
    /// Payload.
    pub body: Bytes,
    /// Sender's virtual timestamp, merged into the consumer's clock.
    pub sent_vt_ns: u64,
    /// Delivery attempt count (1 on first delivery).
    pub attempt: u32,
}

/// Handle for acknowledging a received batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Receipt(u64);

/// A received batch: messages plus the receipt to ack/nack them with.
#[derive(Debug)]
pub struct Batch {
    /// The messages, in order.
    pub messages: Vec<Message>,
    /// Acknowledgement handle.
    pub receipt: Receipt,
}

#[derive(Debug)]
struct InFlight {
    group: Option<Arc<str>>,
    messages: Vec<Message>,
    deadline: Instant,
}

#[derive(Debug, Default)]
struct QState {
    groups: HashMap<Arc<str>, VecDeque<Message>>,
    /// Round-robin order of groups that currently hold pending messages.
    group_order: VecDeque<Arc<str>>,
    /// Groups blocked by an in-flight batch (FIFO kinds only).
    blocked: HashSet<Arc<str>>,
    inflight: HashMap<u64, InFlight>,
    dead_letters: Vec<Message>,
    /// Chaos-delayed messages: seq → remaining receive polls the
    /// message's group is held back (decremented once per poll that
    /// would otherwise have delivered it; per-group FIFO order is
    /// preserved because the whole group waits with its head).
    delayed: HashMap<u64, u32>,
    next_seq: u64,
    next_receipt: u64,
    closed: bool,
}

struct Inner {
    name: String,
    kind: QueueKind,
    region: Region,
    meter: Meter,
    max_message_bytes: usize,
    max_receive_count: u32,
    state: Mutex<QState>,
    available: Condvar,
    chaos: OnceLock<Arc<Chaos>>,
}

/// A simulated cloud queue. Cloning shares the queue.
#[derive(Clone)]
pub struct Queue {
    inner: Arc<Inner>,
}

impl Queue {
    /// Creates a queue of the given kind with provider-typical limits
    /// (SQS: 256 kB messages; Pub/Sub: 10 MB — §4.5).
    pub fn new(name: impl Into<String>, kind: QueueKind, region: Region, meter: Meter) -> Self {
        let max_message_bytes = match kind {
            QueueKind::Fifo | QueueKind::Standard => 256 * 1024,
            QueueKind::Stream => 400 * 1024,
            QueueKind::PubSub | QueueKind::PubSubOrdered => 10 * 1024 * 1024,
        };
        Queue {
            inner: Arc::new(Inner {
                name: name.into(),
                kind,
                region,
                meter,
                max_message_bytes,
                max_receive_count: 5,
                state: Mutex::new(QState {
                    next_seq: 1,
                    ..QState::default()
                }),
                available: Condvar::new(),
                chaos: OnceLock::new(),
            }),
        }
    }

    /// Installs the chaos engine on this queue (at most once; later
    /// calls are ignored). Never called for a disabled plan, so an
    /// untouched queue performs zero chaos work.
    pub fn install_chaos(&self, chaos: Arc<Chaos>) {
        let _ = self.inner.chaos.set(chaos);
    }

    /// Queue name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The queue's usage meter.
    pub fn meter(&self) -> &Meter {
        &self.inner.meter
    }

    /// Queue flavour.
    pub fn kind(&self) -> QueueKind {
        self.inner.kind
    }

    /// Region the queue lives in.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// Enqueues a message, returning its sequence number.
    pub fn send(&self, ctx: &Ctx, group: &str, body: Bytes) -> CloudResult<u64> {
        if body.len() > self.inner.max_message_bytes {
            return Err(CloudError::PayloadTooLarge {
                size: body.len(),
                limit: self.inner.max_message_bytes,
            });
        }
        let size = body.len();
        ctx.charge_to(Op::QueueSend(self.inner.kind), size, self.inner.region);
        // A failed send has already cost the round trip; nothing is
        // enqueued, so a retrying caller cannot double-enqueue.
        self.chaos_send_error(ctx)?;
        let (duplicate, delay) = self.chaos_delivery_rolls(ctx);
        let seq;
        {
            let mut st = self.inner.state.lock();
            if st.closed {
                return Err(CloudError::ServiceStopped);
            }
            seq = st.next_seq;
            st.next_seq += 1;
            let msg = Message {
                seq,
                group: Arc::from(group),
                body,
                sent_vt_ns: ctx.now_ns(),
                attempt: 0,
            };
            if !st.groups.contains_key(group) {
                st.group_order.push_back(Arc::clone(&msg.group));
            }
            let key = Arc::clone(&msg.group);
            // At-least-once duplication: the same message (same seq, same
            // body allocation) lands twice, back to back in its group —
            // consumers must dedupe on the message id. The copy is a
            // *re-receive* of the original, so it starts one attempt up:
            // its delivery reads `attempt >= 2`, exactly like SQS's
            // ApproximateReceiveCount on any message delivered more than
            // once. Consumers may rely on `attempt == 1` meaning
            // first-and-only delivery so far.
            let dup = duplicate.then(|| Message {
                attempt: msg.attempt + 1,
                ..msg.clone()
            });
            st.groups.entry(key).or_default().push_back(msg);
            if let Some(dup) = dup {
                let key = Arc::clone(&dup.group);
                st.groups.entry(key).or_default().push_back(dup);
            }
            if delay > 0 {
                st.delayed.insert(seq, delay);
            }
        }
        self.inner.meter.queue_send(size);
        self.inner.available.notify_all();
        Ok(seq)
    }

    /// Rolls the transient-send fault; `Err` means the request failed
    /// before anything was enqueued.
    fn chaos_send_error(&self, ctx: &Ctx) -> CloudResult<()> {
        if let Some(chaos) = self.inner.chaos.get() {
            if chaos.fire(ctx, FaultKind::QueueError) {
                self.inner
                    .meter
                    .fault_injected(FaultKind::QueueError.label());
                return Err(chaos.error(FaultKind::QueueError));
            }
        }
        Ok(())
    }

    /// Rolls per-message delivery faults: `(duplicate, delay_polls)`.
    fn chaos_delivery_rolls(&self, ctx: &Ctx) -> (bool, u32) {
        let Some(chaos) = self.inner.chaos.get() else {
            return (false, 0);
        };
        let duplicate = chaos.fire(ctx, FaultKind::QueueDuplicate);
        if duplicate {
            self.inner
                .meter
                .fault_injected(FaultKind::QueueDuplicate.label());
        }
        let delay = if chaos.fire(ctx, FaultKind::QueueDelay) {
            self.inner
                .meter
                .fault_injected(FaultKind::QueueDelay.label());
            CHAOS_DELAY_POLLS
        } else {
            0
        };
        (duplicate, delay)
    }

    /// Enqueues up to-`bodies.len()` messages as batched requests
    /// (SQS `SendMessageBatch`: ≤ 10 entries per request, one round trip
    /// each). Messages take consecutive sequence numbers in `bodies`
    /// order — the property the follower's wave pushes rely on. Billing
    /// stays per message (SQS bills batch entries individually); only
    /// the *latency* amortizes.
    pub fn send_batch(&self, ctx: &Ctx, group: &str, bodies: Vec<Bytes>) -> CloudResult<Vec<u64>> {
        const ENTRIES_PER_REQUEST: usize = 10;
        // Validate everything before enqueuing anything: a batch either
        // lands whole or not at all, so a caller never has to guess
        // which prefix is in the queue after an error.
        for body in &bodies {
            if body.len() > self.inner.max_message_bytes {
                return Err(CloudError::PayloadTooLarge {
                    size: body.len(),
                    limit: self.inner.max_message_bytes,
                });
            }
        }
        // One round trip per ≤ 10-entry request, charged up front (the
        // messages become visible when the last request completes).
        for chunk in bodies.chunks(ENTRIES_PER_REQUEST) {
            let bytes: usize = chunk.iter().map(Bytes::len).sum();
            ctx.charge_to(Op::QueueSend(self.inner.kind), bytes, self.inner.region);
        }
        // One fault roll for the whole call, before anything is
        // enqueued, preserving the all-or-nothing batch contract.
        self.chaos_send_error(ctx)?;
        let delivery_rolls: Vec<(bool, u32)> = bodies
            .iter()
            .map(|_| self.chaos_delivery_rolls(ctx))
            .collect();
        let shared_group: Arc<str> = Arc::from(group);
        let mut seqs = Vec::with_capacity(bodies.len());
        {
            let mut st = self.inner.state.lock();
            if st.closed {
                return Err(CloudError::ServiceStopped);
            }
            if !st.groups.contains_key(group) {
                st.group_order.push_back(Arc::clone(&shared_group));
            }
            for (body, (duplicate, delay)) in bodies.iter().zip(&delivery_rolls) {
                let seq = st.next_seq;
                st.next_seq += 1;
                let msg = Message {
                    seq,
                    group: Arc::clone(&shared_group),
                    body: body.clone(),
                    sent_vt_ns: ctx.now_ns(),
                    attempt: 0,
                };
                // Same re-receive semantics as the single `send` above:
                // the duplicated copy's deliveries read `attempt >= 2`.
                let dup = duplicate.then(|| Message {
                    attempt: msg.attempt + 1,
                    ..msg.clone()
                });
                st.groups
                    .entry(Arc::clone(&shared_group))
                    .or_default()
                    .push_back(msg);
                if let Some(dup) = dup {
                    st.groups
                        .entry(Arc::clone(&shared_group))
                        .or_default()
                        .push_back(dup);
                }
                if *delay > 0 {
                    st.delayed.insert(seq, *delay);
                }
                seqs.push(seq);
            }
        }
        for body in &bodies {
            self.inner.meter.queue_send(body.len());
        }
        self.inner.available.notify_all();
        Ok(seqs)
    }

    /// Number of pending (not in-flight) messages.
    pub fn pending(&self) -> usize {
        let st = self.inner.state.lock();
        st.groups.values().map(VecDeque::len).sum()
    }

    /// Messages that exhausted their redelivery budget.
    pub fn dead_letters(&self) -> Vec<Message> {
        self.inner.state.lock().dead_letters.clone()
    }

    /// Takes ownership of everything parked in the dead-letter queue,
    /// lowering the DLQ-depth gauge to match. The observable,
    /// consumable counterpart of [`Queue::dead_letters`]: an operator
    /// (or a test) drains the DLQ, inspects what died, and the meter
    /// reflects that nothing is silently accumulating.
    pub fn drain_dead_letters(&self) -> Vec<Message> {
        let drained = std::mem::take(&mut self.inner.state.lock().dead_letters);
        if !drained.is_empty() {
            self.inner.meter.dead_letter_delta(-(drained.len() as i64));
        }
        drained
    }

    /// Redrives everything parked in the dead-letter queue back onto its
    /// source FIFO — the operator workflow SQS calls a DLQ *redrive*.
    /// Each message returns to the back of its original ordering group
    /// with a fresh delivery-attempt budget, ordered by original send
    /// sequence, so per-group FIFO order among redriven messages is
    /// preserved (messages from one exhausted batch land in the DLQ in
    /// reverse requeue order; sorting by `seq` restores send order).
    /// Returns the number of messages redriven.
    pub fn redrive_dead_letters(&self) -> usize {
        let mut st = self.inner.state.lock();
        if st.dead_letters.is_empty() {
            return 0;
        }
        let mut dead = std::mem::take(&mut st.dead_letters);
        dead.sort_by_key(|m| m.seq);
        let redriven = dead.len();
        for mut msg in dead {
            msg.attempt = 0;
            let group = Arc::clone(&msg.group);
            if !st.groups.contains_key(&group) {
                st.group_order.push_back(Arc::clone(&group));
            }
            st.groups.entry(group).or_default().push_back(msg);
        }
        drop(st);
        self.inner.meter.dead_letter_delta(-(redriven as i64));
        self.inner.available.notify_all();
        redriven
    }

    /// Closes the queue; blocked receivers wake with an empty batch.
    pub fn close(&self) {
        self.inner.state.lock().closed = true;
        self.inner.available.notify_all();
    }

    /// True once [`Queue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    fn reclaim_expired(st: &mut QState, now: Instant, max_receive: u32, meter: &Meter) {
        let expired: Vec<u64> = st
            .inflight
            .iter()
            .filter(|(_, f)| f.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            let inflight = st.inflight.remove(&id).expect("expired id present");
            Self::requeue(st, inflight, max_receive, meter);
        }
    }

    fn requeue(st: &mut QState, inflight: InFlight, max_receive: u32, meter: &Meter) {
        if let Some(group) = &inflight.group {
            st.blocked.remove(group);
        }
        // Re-deliverable messages return to the *front* of their group in
        // order — the original `Message` moves back whole (its body and
        // group are the original ref-counted allocations, never
        // re-encoded); exhausted ones go to the dead-letter queue.
        for msg in inflight.messages.into_iter().rev() {
            if msg.attempt >= max_receive {
                st.dead_letters.push(msg);
                meter.dead_letter_delta(1);
                continue;
            }
            let group = Arc::clone(&msg.group);
            if !st.groups.contains_key(&group) {
                st.group_order.push_front(Arc::clone(&group));
            }
            st.groups.entry(group).or_default().push_front(msg);
        }
        st.groups.retain(|_, q| !q.is_empty());
    }

    fn try_take(
        st: &mut QState,
        kind: QueueKind,
        max: usize,
        visibility: Duration,
        batch_window: bool,
    ) -> Option<Batch> {
        let fifo = kind.is_fifo();
        // A provider trigger without a batch window is capped at the
        // kind's per-receive batch size; with a batch window the consumer
        // may drain up to `max` accumulated messages of one group in a
        // single pop (the distributor's epoch batches).
        let max = if batch_window {
            max.max(1)
        } else {
            max.min(kind.max_batch()).max(1)
        };
        // Find the first deliverable group in round-robin order.
        let mut chosen: Option<Arc<str>> = None;
        for _ in 0..st.group_order.len() {
            let Some(group) = st.group_order.pop_front() else {
                break;
            };
            let has_msgs = st
                .groups
                .get(&group)
                .map(|q| !q.is_empty())
                .unwrap_or(false);
            if !has_msgs {
                continue; // drop empty group from rotation
            }
            if fifo && st.blocked.contains(&group) {
                st.group_order.push_back(group);
                continue;
            }
            // A chaos-delayed head holds its whole group back for a few
            // polls (per-group FIFO order survives the delay); other
            // groups keep delivering around it.
            let delayed_head = st
                .groups
                .get(&group)
                .and_then(VecDeque::front)
                .map(|m| m.seq)
                .filter(|seq| st.delayed.contains_key(seq));
            if let Some(seq) = delayed_head {
                let remaining = st.delayed.get_mut(&seq).expect("checked above");
                *remaining -= 1;
                if *remaining == 0 {
                    st.delayed.remove(&seq);
                }
                st.group_order.push_back(group);
                continue;
            }
            chosen = Some(group);
            break;
        }
        let group = chosen?;
        let queue = st.groups.get_mut(&group).expect("group exists");
        let take = queue.len().min(max);
        let mut messages = Vec::with_capacity(take);
        for _ in 0..take {
            let mut msg = queue.pop_front().expect("len checked");
            msg.attempt += 1;
            messages.push(msg);
        }
        if queue.is_empty() {
            st.groups.remove(&group);
        } else {
            st.group_order.push_back(group.clone());
        }
        let receipt = st.next_receipt;
        st.next_receipt += 1;
        let blocked_group = if fifo {
            st.blocked.insert(group.clone());
            Some(group)
        } else {
            None
        };
        st.inflight.insert(
            receipt,
            InFlight {
                group: blocked_group,
                messages: messages.clone(),
                deadline: Instant::now() + visibility,
            },
        );
        Some(Batch {
            messages,
            receipt: Receipt(receipt),
        })
    }

    /// Non-blocking receive of up to `max` messages (one ordering group
    /// per batch for FIFO kinds).
    pub fn receive(&self, max: usize, visibility: Duration) -> Option<Batch> {
        let mut st = self.inner.state.lock();
        Self::reclaim_expired(
            &mut st,
            Instant::now(),
            self.inner.max_receive_count,
            &self.inner.meter,
        );
        Self::try_take(&mut st, self.inner.kind, max, visibility, false)
    }

    /// Batch-window receive: like [`Queue::receive`] but allowed to drain
    /// up to `max` accumulated messages of one ordering group in a single
    /// pop, past the provider's per-receive batch cap (SQS "maximum
    /// batching window" semantics). The leader's distributor uses this to
    /// form epoch batches.
    pub fn receive_up_to(&self, max: usize, visibility: Duration) -> Option<Batch> {
        let mut st = self.inner.state.lock();
        Self::reclaim_expired(
            &mut st,
            Instant::now(),
            self.inner.max_receive_count,
            &self.inner.meter,
        );
        Self::try_take(&mut st, self.inner.kind, max, visibility, true)
    }

    /// Blocking receive: waits up to `timeout` for a deliverable batch.
    /// Returns `None` on timeout or when the queue is closed and drained.
    pub fn receive_timeout(
        &self,
        max: usize,
        visibility: Duration,
        timeout: Duration,
    ) -> Option<Batch> {
        self.receive_timeout_inner(max, visibility, timeout, false)
    }

    /// Blocking batch-window receive (see [`Queue::receive_up_to`]).
    pub fn receive_up_to_timeout(
        &self,
        max: usize,
        visibility: Duration,
        timeout: Duration,
    ) -> Option<Batch> {
        self.receive_timeout_inner(max, visibility, timeout, true)
    }

    fn receive_timeout_inner(
        &self,
        max: usize,
        visibility: Duration,
        timeout: Duration,
        batch_window: bool,
    ) -> Option<Batch> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            Self::reclaim_expired(
                &mut st,
                Instant::now(),
                self.inner.max_receive_count,
                &self.inner.meter,
            );
            if let Some(batch) =
                Self::try_take(&mut st, self.inner.kind, max, visibility, batch_window)
            {
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wake early enough to reclaim expiring in-flight batches.
            let next_expiry = st.inflight.values().map(|f| f.deadline).min();
            let wait_until = next_expiry.map(|e| e.min(deadline)).unwrap_or(deadline);
            let wait = wait_until
                .saturating_duration_since(now)
                .max(Duration::from_millis(1));
            self.inner.available.wait_for(&mut st, wait);
        }
    }

    /// Acknowledges a batch: deletes the messages and unblocks the group.
    pub fn ack(&self, receipt: Receipt) {
        let mut st = self.inner.state.lock();
        if let Some(inflight) = st.inflight.remove(&receipt.0) {
            if let Some(group) = inflight.group {
                st.blocked.remove(&group);
            }
        }
        drop(st);
        self.inner.available.notify_all();
    }

    /// Negative-acknowledges a batch from `first_failed` onward: earlier
    /// messages are deleted, the rest return to the front of their group
    /// (SQS partial-batch-failure semantics).
    pub fn nack(&self, receipt: Receipt, first_failed: usize) {
        self.nack_inner(receipt, first_failed, false)
    }

    /// Like [`Queue::nack`], but the returned messages do **not** burn a
    /// redelivery attempt — the consumer *deferred* them (it cannot
    /// process them *yet*, e.g. a cross-shard predecessor has not landed)
    /// rather than failing on them. The SQS analogue is shortening the
    /// visibility timeout instead of reporting a batch-item failure; a
    /// deferred message must never drift toward the dead-letter queue.
    pub fn nack_deferred(&self, receipt: Receipt, first_failed: usize) {
        self.nack_inner(receipt, first_failed, true)
    }

    fn nack_inner(&self, receipt: Receipt, first_failed: usize, deferred: bool) {
        let mut st = self.inner.state.lock();
        if let Some(mut inflight) = st.inflight.remove(&receipt.0) {
            inflight
                .messages
                .drain(..first_failed.min(inflight.messages.len()));
            if deferred {
                for msg in &mut inflight.messages {
                    msg.attempt = msg.attempt.saturating_sub(1);
                }
            }
            Self::requeue(
                &mut st,
                inflight,
                self.inner.max_receive_count,
                &self.inner.meter,
            );
        }
        drop(st);
        self.inner.available.notify_all();
    }
}

// ----------------------------------------------------------------------
// Adaptive batch windows
// ----------------------------------------------------------------------

/// AIMD-style controller for a queue consumer's batch window.
///
/// A large window amortizes per-batch costs (dispatch, fan-out barriers,
/// epoch bookkeeping) across many messages but adds batching delay when
/// traffic is light. The controller sizes the window from what the queue
/// actually shows **between drains**: a drain that fills the current
/// window while messages remain backlogged doubles the window (up to
/// `max`); a drain that comes back under half full with an empty backlog
/// halves it (down to `min`). Doubling reacts within O(log max/min)
/// drains to a burst; halving returns the window to low-latency draining
/// once the burst passes.
///
/// Both the leader's epoch drain (`fk-core`) and the follower's queue
/// trigger ([`crate::faas::FaasRuntime::attach_queue_trigger_adaptive`])
/// run on this controller.
pub struct AdaptiveBatch {
    window: std::sync::atomic::AtomicUsize,
    min: usize,
    max: usize,
}

impl AdaptiveBatch {
    /// Creates a controller bounded by `[min, max]`; the window starts at
    /// the floor. `min == max` pins the window (static batching).
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min > 0, "at least one message per batch");
        assert!(min <= max, "adaptive floor above the batch cap");
        AdaptiveBatch {
            window: std::sync::atomic::AtomicUsize::new(min),
            min,
            max,
        }
    }

    /// The current drain window.
    pub fn window(&self) -> usize {
        self.window.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Observes one drain: `drained` messages were taken and `backlog`
    /// messages remained queued afterwards.
    pub fn observe(&self, drained: usize, backlog: usize) {
        let window = self.window();
        let next = if drained >= window && backlog > 0 {
            (window.saturating_mul(2)).min(self.max)
        } else if drained * 2 <= window && backlog == 0 {
            (window / 2).max(self.min)
        } else {
            window
        };
        self.window
            .store(next, std::sync::atomic::Ordering::Relaxed);
    }
}

// ----------------------------------------------------------------------
// Sharding
// ----------------------------------------------------------------------

/// Stable shard assignment for a string key (FNV-1a over the key bytes).
/// Every layer that partitions by path — the distributor's fan-out
/// workers, per-shard queue groups, benchmarks — must agree on this
/// function, so it lives here at the bottom of the stack.
pub fn shard_of(key: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (fnv1a(key, 0) % shards as u64) as usize
}

/// Stable shard-**group** assignment for the multi-leader queue tier.
///
/// Deliberately *not* [`shard_of`]: the distributor's intra-leader
/// fan-out partitions by `shard_of`, and if the queue tier used the same
/// function the two layers would correlate — with `groups == shards`,
/// every path routed to group `g` also hashes to fan-out shard `g`, so
/// each leader's entire batch collapses into a single fan-out worker and
/// the intra-leader parallelism evaporates. Salting the group hash makes
/// the two partitions independent.
pub fn group_of(key: &str, groups: usize) -> usize {
    assert!(groups > 0, "group count must be positive");
    (fnv1a(key, 0x9E37_79B9_7F4A_7C15) % groups as u64) as usize
}

fn fnv1a(key: &str, salt: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut hash = FNV_OFFSET ^ salt;
    for &byte in key.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A group of per-shard FIFO queues with a stable key→queue route.
///
/// Where a single FIFO queue serializes everything, a sharded group keeps
/// *per-key* FIFO order (all messages for one key land on one member
/// queue, [`shard_of`]) while letting distinct shards drain in parallel —
/// the queue-level counterpart of the distributor's sharded fan-out.
#[derive(Clone)]
pub struct ShardedQueues {
    queues: Vec<Queue>,
}

impl ShardedQueues {
    /// Creates `shards` member queues named `<name>-<i>`.
    pub fn new(name: &str, kind: QueueKind, region: Region, meter: Meter, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardedQueues {
            queues: (0..shards)
                .map(|i| Queue::new(format!("{name}-{i}"), kind, region, meter.clone()))
                .collect(),
        }
    }

    /// Number of member queues.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The member queue a key routes to.
    pub fn route(&self, key: &str) -> &Queue {
        &self.queues[shard_of(key, self.queues.len())]
    }

    /// A member queue by index.
    pub fn queue(&self, shard: usize) -> &Queue {
        &self.queues[shard]
    }

    /// Sends `body` to the shard owning `key`, using `key` as the
    /// ordering group. Returns `(shard, seq)`.
    pub fn send(&self, ctx: &Ctx, key: &str, body: Bytes) -> CloudResult<(usize, u64)> {
        let shard = shard_of(key, self.queues.len());
        let seq = self.queues[shard].send(ctx, key, body)?;
        Ok((shard, seq))
    }

    /// Sends `body` to the member queue owning `key` under the
    /// *group-tier* hash ([`group_of`], decorrelated from the fan-out
    /// hash) and an explicit ordering group. A constant group name per
    /// member turns each shard into a global FIFO with a single active
    /// consumer (the multi-leader tier: one leader instance per shard
    /// group), while routing still keeps all of one key's messages on
    /// one member queue in push order.
    pub fn send_grouped(
        &self,
        ctx: &Ctx,
        key: &str,
        group: &str,
        body: Bytes,
    ) -> CloudResult<(usize, u64)> {
        let shard = group_of(key, self.queues.len());
        let seq = self.queues[shard].send(ctx, group, body)?;
        Ok((shard, seq))
    }

    /// Total messages pending across all shards.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(Queue::pending).sum()
    }

    /// Installs the chaos engine on every member queue.
    pub fn install_chaos(&self, chaos: &Arc<Chaos>) {
        for queue in &self.queues {
            queue.install_chaos(Arc::clone(chaos));
        }
    }

    /// Drains the dead-letter queues of every member.
    pub fn drain_dead_letters(&self) -> Vec<Message> {
        self.queues
            .iter()
            .flat_map(Queue::drain_dead_letters)
            .collect()
    }

    /// Redrives every member queue's dead letters back onto its source
    /// FIFO (see [`Queue::redrive_dead_letters`]); returns the total.
    pub fn redrive_dead_letters(&self) -> usize {
        self.queues.iter().map(Queue::redrive_dead_letters).sum()
    }

    /// Closes every member queue.
    pub fn close(&self) {
        for queue in &self.queues {
            queue.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo() -> Queue {
        Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Meter::new())
    }

    fn send(q: &Queue, group: &str, body: &str) -> u64 {
        q.send(&Ctx::disabled(), group, Bytes::from(body.to_owned()))
            .unwrap()
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let q = fifo();
        let s1 = send(&q, "a", "1");
        let s2 = send(&q, "b", "2");
        let s3 = send(&q, "a", "3");
        assert!(s1 < s2 && s2 < s3);
    }

    #[test]
    fn fifo_order_within_group() {
        let q = fifo();
        for i in 0..5 {
            send(&q, "s1", &format!("m{i}"));
        }
        let batch = q.receive(10, Duration::from_secs(30)).unwrap();
        let bodies: Vec<&[u8]> = batch.messages.iter().map(|m| m.body.as_ref()).collect();
        assert_eq!(bodies, vec![b"m0".as_ref(), b"m1", b"m2", b"m3", b"m4"]);
    }

    #[test]
    fn fifo_batch_capped_at_ten() {
        let q = fifo();
        for i in 0..15 {
            send(&q, "s1", &format!("m{i}"));
        }
        let batch = q.receive(100, Duration::from_secs(30)).unwrap();
        assert_eq!(batch.messages.len(), 10);
    }

    #[test]
    fn group_blocked_while_inflight() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        let b1 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b1.messages[0].body.as_ref(), b"a");
        // Same group blocked; nothing deliverable.
        assert!(q.receive(1, Duration::from_secs(30)).is_none());
        q.ack(b1.receipt);
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b2.messages[0].body.as_ref(), b"b");
    }

    #[test]
    fn independent_groups_deliver_concurrently() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s2", "b");
        let b1 = q.receive(1, Duration::from_secs(30)).unwrap();
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        let groups: HashSet<String> = [b1.messages[0].group.clone(), b2.messages[0].group.clone()]
            .into_iter()
            .map(|g| g.to_string())
            .collect();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn nack_redelivers_in_order() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        send(&q, "s1", "c");
        let b = q.receive(10, Duration::from_secs(30)).unwrap();
        assert_eq!(b.messages.len(), 3);
        // First message processed fine, failure at index 1.
        q.nack(b.receipt, 1);
        let b2 = q.receive(10, Duration::from_secs(30)).unwrap();
        let bodies: Vec<&[u8]> = b2.messages.iter().map(|m| m.body.as_ref()).collect();
        assert_eq!(bodies, vec![b"b".as_ref(), b"c"]);
        assert_eq!(b2.messages[0].attempt, 2);
        assert_eq!(b2.messages[1].attempt, 2);
    }

    #[test]
    fn visibility_timeout_requeues() {
        let q = fifo();
        send(&q, "s1", "a");
        let b = q.receive(1, Duration::from_millis(5)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        // Expired batch is reclaimed on the next receive.
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b2.messages[0].body.as_ref(), b"a");
        assert_eq!(b2.messages[0].attempt, 2);
        drop(b);
    }

    /// Deferral and redelivery are zero-copy: the body delivered after a
    /// `nack_deferred` is the *same allocation* that was sent — no
    /// re-encode, no deep copy — and the group string is shared with the
    /// queue's index rather than re-allocated per delivery.
    #[test]
    fn deferred_redelivery_shares_the_original_allocations() {
        let q = fifo();
        let body = Bytes::from(vec![0xAB; 4096]);
        let sent_ptr = body.as_ref().as_ptr();
        q.send(&Ctx::disabled(), "sess", body).unwrap();
        let first = q.receive(1, Duration::from_secs(30)).unwrap();
        let first_group = Arc::clone(&first.messages[0].group);
        assert_eq!(first.messages[0].body.as_ref().as_ptr(), sent_ptr);
        q.nack_deferred(first.receipt, 0);
        let second = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(
            second.messages[0].body.as_ref().as_ptr(),
            sent_ptr,
            "redelivered body is the original buffer"
        );
        assert!(
            Arc::ptr_eq(&second.messages[0].group, &first_group),
            "group allocation shared across deliveries"
        );
        q.ack(second.receipt);
    }

    /// A deferral must be repeatable forever: unlike a failure nack, it
    /// never walks the message toward the dead-letter queue.
    #[test]
    fn deferred_nack_burns_no_redelivery_attempts() {
        let q = fifo();
        send(&q, "s1", "held");
        for _ in 0..20 {
            let b = q.receive(1, Duration::from_secs(30)).unwrap();
            assert_eq!(b.messages[0].attempt, 1, "attempt count stays fresh");
            q.nack_deferred(b.receipt, 0);
        }
        assert!(q.dead_letters().is_empty());
        // A real failure afterwards still counts.
        let b = q.receive(1, Duration::from_secs(30)).unwrap();
        q.nack(b.receipt, 0);
        let b = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b.messages[0].attempt, 2);
        q.ack(b.receipt);
    }

    #[test]
    fn exhausted_retries_go_to_dead_letter_queue() {
        let q = fifo();
        send(&q, "s1", "poison");
        for _ in 0..5 {
            let b = q.receive(1, Duration::from_secs(30)).unwrap();
            q.nack(b.receipt, 0);
        }
        assert!(q.receive(1, Duration::from_secs(30)).is_none());
        let dl = q.dead_letters();
        assert_eq!(dl.len(), 1);
        assert_eq!(dl[0].body.as_ref(), b"poison");
    }

    #[test]
    fn dead_letter_drain_lowers_the_depth_gauge() {
        let meter = Meter::new();
        let q = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, meter.clone());
        let ctx = Ctx::disabled();
        for body in ["p1", "p2"] {
            q.send(&ctx, "s1", Bytes::from(body.to_owned())).unwrap();
        }
        for _ in 0..5 {
            let b = q.receive(10, Duration::from_secs(30)).unwrap();
            q.nack(b.receipt, 0);
        }
        assert_eq!(meter.snapshot().queue_dead_letters, 2, "depth visible");
        // `dead_letters()` observes without consuming…
        assert_eq!(q.dead_letters().len(), 2);
        assert_eq!(meter.snapshot().queue_dead_letters, 2);
        // …while a drain consumes and zeroes the gauge.
        let drained = q.drain_dead_letters();
        assert_eq!(drained.len(), 2);
        assert_eq!(meter.snapshot().queue_dead_letters, 0);
        assert!(q.dead_letters().is_empty());
        assert!(q.drain_dead_letters().is_empty(), "second drain is empty");
    }

    /// Operator-style DLQ redrive: parked messages return to the back of
    /// their source group in original send order with a fresh attempt
    /// budget, the depth gauge drops, and delivery interleaves correctly
    /// with messages that never died.
    #[test]
    fn redrive_returns_dead_letters_to_their_group_in_order() {
        let meter = Meter::new();
        let q = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, meter.clone());
        let ctx = Ctx::disabled();
        for body in ["p1", "p2"] {
            q.send(&ctx, "s1", Bytes::from(body.to_owned())).unwrap();
        }
        send(&q, "s2", "healthy");
        // Exhaust s1's batch into the DLQ (both messages die together).
        for _ in 0..5 {
            let b = q.receive(10, Duration::from_secs(30)).unwrap();
            q.nack(b.receipt, 0);
        }
        assert_eq!(meter.snapshot().queue_dead_letters, 2);
        // A message sent to the group while its predecessors sat in the
        // DLQ delivers first — a redrive appends to the *back* of the
        // source queue (SQS semantics), it does not jump the line.
        send(&q, "s1", "p3");
        assert_eq!(q.redrive_dead_letters(), 2);
        assert_eq!(meter.snapshot().queue_dead_letters, 0, "gauge lowered");
        assert!(q.dead_letters().is_empty());
        assert_eq!(q.redrive_dead_letters(), 0, "second redrive is a no-op");
        // Drain everything: s1 delivers p3 then p1, p2 (redriven, in
        // original send order); s2's untouched message still delivers.
        let mut by_group: HashMap<String, Vec<Vec<u8>>> = HashMap::new();
        while let Some(b) = q.receive(10, Duration::from_secs(30)) {
            for m in &b.messages {
                assert_eq!(m.attempt, 1, "redrive resets the attempt budget");
                by_group
                    .entry(m.group.to_string())
                    .or_default()
                    .push(m.body.to_vec());
            }
            q.ack(b.receipt);
        }
        assert_eq!(
            by_group["s1"],
            vec![b"p3".to_vec(), b"p1".to_vec(), b"p2".to_vec()],
            "redriven messages keep their relative send order"
        );
        assert_eq!(by_group["s2"], vec![b"healthy".to_vec()]);
    }

    #[test]
    fn standard_queue_does_not_block_groups() {
        let q = Queue::new("std", QueueKind::Standard, Region::US_EAST_1, Meter::new());
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        let b1 = q.receive(1, Duration::from_secs(30)).unwrap();
        // Standard queues allow concurrent delivery from the same group.
        let b2 = q.receive(1, Duration::from_secs(30)).unwrap();
        assert_eq!(b1.messages.len() + b2.messages.len(), 2);
    }

    #[test]
    fn message_size_limit() {
        let q = fifo();
        let err = q
            .send(&Ctx::disabled(), "g", Bytes::from(vec![0u8; 300 * 1024]))
            .unwrap_err();
        assert!(matches!(err, CloudError::PayloadTooLarge { .. }));
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let q = fifo();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            q2.receive_timeout(1, Duration::from_secs(30), Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        send(&q, "s1", "wake");
        let batch = handle.join().unwrap().expect("should receive");
        assert_eq!(batch.messages[0].body.as_ref(), b"wake");
    }

    #[test]
    fn close_wakes_blocked_receivers() {
        let q = fifo();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            q2.receive_timeout(1, Duration::from_secs(30), Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(handle.join().unwrap().is_none());
        assert!(q.send(&Ctx::disabled(), "g", Bytes::new()).is_err());
    }

    #[test]
    fn batch_window_drains_past_fifo_cap() {
        let q = fifo();
        for i in 0..25 {
            send(&q, "s1", &format!("m{i}"));
        }
        // Plain receive stays capped at the provider batch size...
        let b = q.receive(100, Duration::from_secs(30)).unwrap();
        assert_eq!(b.messages.len(), 10);
        q.nack(b.receipt, 0); // put them back
                              // ...while the batch-window pop drains the requested amount.
        let b = q.receive_up_to(100, Duration::from_secs(30)).unwrap();
        assert_eq!(b.messages.len(), 25);
        let bodies: Vec<&[u8]> = b.messages.iter().take(3).map(|m| m.body.as_ref()).collect();
        assert_eq!(bodies, vec![b"m0".as_ref(), b"m1", b"m2"], "order kept");
    }

    #[test]
    fn batch_window_still_blocks_group() {
        let q = fifo();
        send(&q, "s1", "a");
        send(&q, "s1", "b");
        let b = q.receive_up_to(1, Duration::from_secs(30)).unwrap();
        assert!(q.receive_up_to(1, Duration::from_secs(30)).is_none());
        q.ack(b.receipt);
        assert!(q.receive_up_to(1, Duration::from_secs(30)).is_some());
    }

    #[test]
    fn shard_of_is_stable_and_covers_range() {
        for shards in [1usize, 2, 4, 7, 16] {
            let mut hit = vec![false; shards];
            for i in 0..1000 {
                let key = format!("/node/{i}");
                let s = shard_of(&key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&key, shards), "stable");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "all {shards} shards used");
        }
    }

    /// With equal moduli, group assignment must not determine shard
    /// assignment — otherwise each shard-group leader's fan-out would
    /// degenerate to a single worker.
    #[test]
    fn group_hash_is_decorrelated_from_shard_hash() {
        for n in [2usize, 4, 8] {
            let mut same = 0;
            let total = 1000;
            for i in 0..total {
                let key = format!("/node/{i}");
                if shard_of(&key, n) == group_of(&key, n) {
                    same += 1;
                }
            }
            // Independent hashes agree ~1/n of the time; correlated ones
            // would agree always. Allow generous slack.
            assert!(
                (same as f64) < total as f64 * (1.5 / n as f64 + 0.1),
                "{same}/{total} collisions at n={n} — hashes correlated"
            );
            // And coverage still holds.
            let mut hit = vec![false; n];
            for i in 0..1000 {
                hit[group_of(&format!("/cover/{i}"), n)] = true;
            }
            assert!(hit.iter().all(|&h| h), "all {n} groups used");
        }
    }

    #[test]
    fn sharded_queues_keep_per_key_order_across_shards() {
        let group = ShardedQueues::new("d", QueueKind::Fifo, Region::US_EAST_1, Meter::new(), 4);
        let ctx = Ctx::disabled();
        for i in 0..40 {
            let key = format!("/n{}", i % 8);
            group.send(&ctx, &key, Bytes::from(format!("{i}"))).unwrap();
        }
        assert_eq!(group.pending(), 40);
        // Drain each shard; per key the payload sequence must be ordered.
        let mut last_seen: HashMap<String, u64> = HashMap::new();
        for s in 0..group.shards() {
            while let Some(batch) = group.queue(s).receive_up_to(64, Duration::from_secs(30)) {
                for msg in &batch.messages {
                    assert_eq!(shard_of(&msg.group, 4), s, "key routed to its shard");
                    let v: u64 = std::str::from_utf8(&msg.body).unwrap().parse().unwrap();
                    if let Some(prev) = last_seen.get(&*msg.group) {
                        assert!(v > *prev, "per-key FIFO preserved");
                    }
                    last_seen.insert(msg.group.to_string(), v);
                }
                group.queue(s).ack(batch.receipt);
            }
        }
        assert_eq!(last_seen.len(), 8);
    }

    #[test]
    fn sharded_send_grouped_routes_by_key_but_orders_by_group() {
        let group = ShardedQueues::new("l", QueueKind::Fifo, Region::US_EAST_1, Meter::new(), 4);
        let ctx = Ctx::disabled();
        let mut shards_hit = HashSet::new();
        for i in 0..24 {
            let key = format!("/n{i}");
            let (shard, _) = group
                .send_grouped(&ctx, &key, "leader", Bytes::from(format!("{i}")))
                .unwrap();
            assert_eq!(shard, group_of(&key, 4), "routed by key");
            shards_hit.insert(shard);
        }
        assert!(shards_hit.len() > 1, "keys spread across members");
        // Every member queue holds a single ordering group, so one
        // receive drains a multi-key batch (the leader's epoch window).
        for s in 0..group.shards() {
            if group.queue(s).pending() == 0 {
                continue;
            }
            let batch = group
                .queue(s)
                .receive_up_to(64, Duration::from_secs(5))
                .unwrap();
            assert!(batch.messages.iter().all(|m| &*m.group == "leader"));
            group.queue(s).ack(batch.receipt);
        }
        assert_eq!(group.pending(), 0);
    }

    #[test]
    fn adaptive_batch_doubles_under_backlog_and_halves_when_idle() {
        let ctrl = AdaptiveBatch::new(2, 16);
        assert_eq!(ctrl.window(), 2, "starts at the floor");
        ctrl.observe(2, 10);
        assert_eq!(ctrl.window(), 4);
        ctrl.observe(4, 10);
        ctrl.observe(8, 10);
        ctrl.observe(16, 10);
        assert_eq!(ctrl.window(), 16, "capped at max");
        ctrl.observe(10, 3);
        assert_eq!(ctrl.window(), 16, "half-full drain with backlog holds");
        ctrl.observe(3, 0);
        assert_eq!(ctrl.window(), 8);
        ctrl.observe(0, 0);
        ctrl.observe(0, 0);
        ctrl.observe(0, 0);
        assert_eq!(ctrl.window(), 2, "floored at min");
    }

    #[test]
    fn static_adaptive_batch_never_moves() {
        let ctrl = AdaptiveBatch::new(16, 16);
        ctrl.observe(16, 100);
        ctrl.observe(0, 0);
        assert_eq!(ctrl.window(), 16);
    }

    #[test]
    fn round_robin_across_groups() {
        let q = fifo();
        for g in ["a", "b", "c"] {
            send(&q, g, "m");
        }
        let mut seen = Vec::new();
        for _ in 0..3 {
            let b = q.receive(1, Duration::from_secs(30)).unwrap();
            seen.push(b.messages[0].group.to_string());
            q.ack(b.receipt);
        }
        seen.sort();
        assert_eq!(seen, vec!["a", "b", "c"]);
    }
}
