//! Cloud regions.
//!
//! FaaSKeeper replicates user storage across regions and parallelizes the
//! leader's data distribution per region (Algorithm 2). Cross-region
//! operations pay a latency penalty (Figure 4b) which the latency model
//! applies whenever the caller's region differs from the service's region.

use std::fmt;

/// A cloud region identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region(pub u8);

impl Region {
    /// Primary AWS evaluation region in the paper (`us-east-1`).
    pub const US_EAST_1: Region = Region(0);
    /// Secondary region used for cross-region experiments (`us-west-2`).
    pub const US_WEST_2: Region = Region(1);
    /// European region (`eu-central-1`).
    pub const EU_CENTRAL_1: Region = Region(2);
    /// Primary GCP evaluation region in the paper (`us-central1`).
    pub const GCP_US_CENTRAL1: Region = Region(16);

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self.0 {
            0 => "us-east-1",
            1 => "us-west-2",
            2 => "eu-central-1",
            16 => "us-central1",
            _ => "region-other",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl Default for Region {
    fn default() -> Self {
        Region::US_EAST_1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_names() {
        assert_eq!(Region::US_EAST_1.to_string(), "us-east-1");
        assert_eq!(Region::GCP_US_CENTRAL1.name(), "us-central1");
        assert_eq!(Region(99).name(), "region-other");
    }

    #[test]
    fn regions_are_comparable() {
        assert_ne!(Region::US_EAST_1, Region::US_WEST_2);
        assert_eq!(Region::default(), Region::US_EAST_1);
    }
}
