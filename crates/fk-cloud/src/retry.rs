//! Unified retry policy for cloud call sites.
//!
//! Every fk-core call into the simulated cloud used to be single-shot:
//! the first `Throttled` or injected transient killed the request (or
//! leaned on queue redelivery, burning a delivery attempt toward the
//! dead-letter queue). This module gives all of them one policy:
//! exponential backoff with **decorrelated jitter** (the AWS
//! architecture-blog algorithm: each sleep is drawn uniformly from
//! `[base, 3 × previous]`, capped), a per-operation attempt budget, and
//! [`CloudError::is_retryable`](crate::error::CloudError::is_retryable)-driven classification — permanent
//! errors (condition failures, not-found, payload limits) surface
//! immediately.
//!
//! Backoff sleeps charge **virtual time** via [`Ctx::advance`], never a
//! real `thread::sleep`: benchmarks see the latency cost of retries at
//! paper scale while wall time stays in microseconds. Jitter draws come
//! from the context's auxiliary stream ([`Ctx::aux_roll`]) — the same
//! stream chaos decisions use — so a fault-free run performs no draws
//! at all and retried runs replay deterministically from the seed.
//!
//! Each retry is recorded on the service's [`Meter`] under
//! `retry:<site>`, which is how the soak gate measures retry
//! amplification per call site.

use crate::error::CloudResult;
use crate::metering::Meter;
use crate::trace::Ctx;
use std::time::Duration;

/// Backoff shape and attempt budget for one class of call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retrying.
    pub max_attempts: u32,
    /// First backoff sleep; also the floor of every jittered sleep.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
}

impl RetryPolicy {
    /// The default for storage and queue round trips: up to 5 attempts,
    /// 10 ms base, 2 s cap — comfortably above the standard fault
    /// plan's transient burst length while bounding worst-case stall.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
        }
    }

    /// Tighter budget for latency-critical paths that have a second
    /// line of defence (queue redelivery, leader repair): 3 attempts,
    /// 5 ms base, 200 ms cap.
    pub fn quick() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
        }
    }

    /// Single-shot (no retries) — for call sites whose caller owns the
    /// retry loop.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// Builder: total attempts.
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Runs `op` under `policy`, retrying transient failures with
/// decorrelated-jitter backoff charged to `ctx`'s virtual clock and
/// metered on `meter` as `retry:<site>`.
///
/// Only errors whose [`CloudError::is_retryable`](crate::error::CloudError::is_retryable) is true are retried;
/// everything else — and the last transient after the budget is spent —
/// returns to the caller unchanged.
pub fn with_retry<T>(
    ctx: &Ctx,
    meter: &Meter,
    policy: &RetryPolicy,
    site: &'static str,
    mut op: impl FnMut() -> CloudResult<T>,
) -> CloudResult<T> {
    let mut prev_sleep = policy.base;
    for attempt in 1.. {
        match op() {
            Ok(value) => return Ok(value),
            Err(err) if err.is_retryable() && attempt < policy.max_attempts => {
                meter.retry(site);
                let sleep = decorrelated_jitter(ctx, policy, prev_sleep);
                ctx.advance(sleep);
                prev_sleep = sleep;
            }
            Err(err) => return Err(err),
        }
    }
    unreachable!("loop returns within max_attempts")
}

/// Next sleep: uniform in `[base, 3 × previous]`, capped.
fn decorrelated_jitter(ctx: &Ctx, policy: &RetryPolicy, prev: Duration) -> Duration {
    let base = policy.base.as_nanos() as u64;
    let span = (prev.as_nanos() as u64).saturating_mul(3).max(base);
    let jittered = base + ((span - base) as f64 * ctx.aux_roll()) as u64;
    Duration::from_nanos(jittered)
        .min(policy.cap)
        .max(policy.base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CloudError;
    use std::cell::Cell;

    fn flaky(fail_times: usize) -> impl FnMut() -> CloudResult<u32> {
        let remaining = Cell::new(fail_times);
        move || {
            if remaining.get() > 0 {
                remaining.set(remaining.get() - 1);
                Err(CloudError::Throttled)
            } else {
                Ok(7)
            }
        }
    }

    #[test]
    fn transient_errors_are_absorbed_within_budget() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        let out = with_retry(&ctx, &meter, &RetryPolicy::standard(), "test", flaky(3));
        assert_eq!(out.unwrap(), 7);
        let s = meter.snapshot();
        assert_eq!(s.retries, 3);
        assert_eq!(s.per_op["retry:test"], 3);
        assert!(ctx.now() >= Duration::from_millis(30), "backoff charged");
    }

    #[test]
    fn budget_exhaustion_surfaces_the_last_error() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        let out = with_retry(&ctx, &meter, &RetryPolicy::quick(), "test", flaky(10));
        assert_eq!(out.unwrap_err(), CloudError::Throttled);
        assert_eq!(meter.snapshot().retries, 2, "attempts − 1 retries");
    }

    #[test]
    fn permanent_errors_return_immediately() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        let mut calls = 0;
        let out: CloudResult<()> =
            with_retry(&ctx, &meter, &RetryPolicy::standard(), "test", || {
                calls += 1;
                Err(CloudError::ConditionFailed {
                    detail: "guard".into(),
                })
            });
        assert!(out.unwrap_err().is_condition_failed());
        assert_eq!(calls, 1);
        assert_eq!(meter.snapshot().retries, 0);
        assert_eq!(ctx.now(), Duration::ZERO, "no backoff charged");
    }

    #[test]
    fn success_path_draws_nothing() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        with_retry(&ctx, &meter, &RetryPolicy::standard(), "test", || Ok(1)).unwrap();
        // The aux stream was untouched: its first draw matches a fresh
        // context's.
        assert_eq!(ctx.aux_roll(), Ctx::disabled().aux_roll());
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let ctx = Ctx::disabled();
        let policy = RetryPolicy::standard();
        let mut prev = policy.base;
        for _ in 0..100 {
            let sleep = decorrelated_jitter(&ctx, &policy, prev);
            assert!(sleep >= policy.base);
            assert!(sleep <= policy.cap);
            prev = sleep;
        }
    }

    #[test]
    fn none_policy_is_single_shot() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        let out = with_retry(&ctx, &meter, &RetryPolicy::none(), "test", flaky(1));
        assert_eq!(out.unwrap_err(), CloudError::Throttled);
        assert_eq!(meter.snapshot().retries, 0);
    }

    /// With `base == cap` the jitter window collapses to a point, so the
    /// backoff schedule is exactly pinned: every sleep is `base` and the
    /// virtual clock advances by `(attempts − 1) × base`, independent of
    /// the aux-stream draws.
    #[test]
    fn backoff_schedule_is_pinned_when_base_equals_cap() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(10),
        };
        let out = with_retry(&ctx, &meter, &policy, "pin", flaky(3));
        assert_eq!(out.unwrap(), 7);
        assert_eq!(ctx.now(), Duration::from_millis(30), "3 sleeps of 10 ms");
        assert_eq!(meter.snapshot().retries, 3);
    }

    /// The canonical policies carry the documented shapes, and the jitter
    /// growth from `standard()`'s base can never escape `[base, cap]`
    /// even after repeated tripling.
    #[test]
    fn canonical_policies_have_the_documented_bounds() {
        let standard = RetryPolicy::standard();
        assert_eq!(standard.max_attempts, 5);
        assert_eq!(standard.base, Duration::from_millis(10));
        assert_eq!(standard.cap, Duration::from_secs(2));
        let quick = RetryPolicy::quick();
        assert_eq!(quick.max_attempts, 3);
        assert_eq!(quick.base, Duration::from_millis(5));
        assert_eq!(quick.cap, Duration::from_millis(200));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::default(), standard);
    }

    /// Attempt-bound edges: `with_attempts(0)` clamps to a single shot,
    /// and a budget of N makes exactly N calls when every one fails.
    #[test]
    fn attempt_bounds_hold_at_the_edges() {
        let ctx = Ctx::disabled();
        let meter = Meter::new();
        let clamped = RetryPolicy::standard().with_attempts(0);
        assert_eq!(clamped.max_attempts, 1, "zero clamps to one attempt");
        let out = with_retry(&ctx, &meter, &clamped, "edge", flaky(1));
        assert_eq!(out.unwrap_err(), CloudError::Throttled);
        assert_eq!(meter.snapshot().retries, 0);

        let mut calls = 0;
        let bounded = RetryPolicy::standard().with_attempts(3);
        let out: CloudResult<()> = with_retry(&ctx, &meter, &bounded, "edge", || {
            calls += 1;
            Err(CloudError::Throttled)
        });
        assert_eq!(out.unwrap_err(), CloudError::Throttled);
        assert_eq!(calls, 3, "budget of 3 makes exactly 3 calls");
        assert_eq!(meter.snapshot().retries, 2, "attempts − 1 retries");
    }

    /// Exhaustive classification: of every [`CloudError`] variant, only
    /// `Throttled` and `InjectedFault` are retryable, and `with_retry`
    /// honors that — a non-retryable error makes exactly one call.
    #[test]
    fn only_throttled_and_injected_faults_are_retryable() {
        let cases: Vec<(CloudError, bool)> = vec![
            (CloudError::ConditionFailed { detail: "d".into() }, false),
            (CloudError::NotFound { key: "k".into() }, false),
            (CloudError::AlreadyExists { name: "n".into() }, false),
            (CloudError::PayloadTooLarge { size: 2, limit: 1 }, false),
            (CloudError::Throttled, true),
            (
                CloudError::TransactionCancelled {
                    index: 0,
                    detail: "d".into(),
                },
                false,
            ),
            (
                CloudError::FunctionFailed {
                    function: "f".into(),
                    detail: "d".into(),
                },
                false,
            ),
            (CloudError::InjectedFault { detail: "d".into() }, true),
            (CloudError::InvalidOperation { detail: "d".into() }, false),
            (CloudError::ServiceStopped, false),
        ];
        for (err, retryable) in cases {
            assert_eq!(err.is_retryable(), retryable, "{err}");
            let ctx = Ctx::disabled();
            let meter = Meter::new();
            let mut calls = 0;
            let e = err.clone();
            let out: CloudResult<()> =
                with_retry(&ctx, &meter, &RetryPolicy::quick(), "class", || {
                    calls += 1;
                    Err(e.clone())
                });
            assert_eq!(out.unwrap_err(), err);
            let expected_calls = if retryable { 3 } else { 1 };
            assert_eq!(calls, expected_calls, "{err}");
        }
    }
}
