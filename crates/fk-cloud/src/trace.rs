//! Virtual-time execution context.
//!
//! Every simulated cloud operation charges a sampled latency to a [`Ctx`].
//! In `Virtual` mode the context advances a per-request virtual clock
//! without sleeping, so the benchmark harness reproduces paper-scale
//! latencies (tens to hundreds of milliseconds) in microseconds of wall
//! time. Spans attribute charged time to named phases (lock / push /
//! commit / update-user-storage / …), which is how Figure 10 and Table 3
//! are regenerated from the actual code path rather than hard-coded.
//!
//! Contexts form a fork/join tree to model parallel sections (the leader
//! distributes updates to regions in parallel, Algorithm 2): a fork copies
//! the current virtual time, children charge independently, and the join
//! advances the parent to the maximum child time.

use crate::latency::{ExecEnv, LatencyModel};
use crate::ops::Op;
use crate::region::Region;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How charged latencies are realized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyMode {
    /// Ignore latencies entirely (functional tests).
    Disabled,
    /// Advance the virtual clock only (benchmark harness).
    Virtual,
    /// Advance the virtual clock *and* sleep `scale ×` the sampled latency
    /// (integration tests that want realistic interleavings).
    SleepScaled(f64),
}

/// One recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase label path at the time of the charge (e.g. `"lock_node"`).
    pub phase: String,
    /// The operation.
    pub op: Op,
    /// Virtual start time.
    pub start: Duration,
    /// Sampled duration.
    pub duration: Duration,
}

struct CtxShared {
    model: Arc<LatencyModel>,
    mode: LatencyMode,
    spans: Mutex<Vec<SpanRecord>>,
    record_spans: bool,
}

/// Salt separating the auxiliary decision stream from latency sampling:
/// the two RNGs must never correlate, or enabling chaos would perturb
/// the latency samples of an otherwise identical run.
const AUX_SALT: u64 = 0xC4A0_5EED_D15E_A5ED;

/// Per-request virtual-time context.
pub struct Ctx {
    shared: Arc<CtxShared>,
    /// Latency-sampling RNG. Per context (not shared with forks): each
    /// fork draws its seed from the parent at fork time, so parallel
    /// branches sample deterministically even when they run on real
    /// threads with arbitrary interleaving (the distributor's sharded
    /// fan-out relies on this for reproducible benchmarks).
    rng: Mutex<SmallRng>,
    /// Auxiliary decision RNG (chaos fault rolls, retry jitter). A second
    /// stream, forked the same way as the latency RNG but never shared
    /// with it, so fault-injection decisions replay from the root seed
    /// without disturbing latency sampling — and a run with chaos
    /// disabled draws nothing from it at all.
    aux_rng: Mutex<SmallRng>,
    /// Execution environment of the code currently charging ops.
    env: Mutex<ExecEnv>,
    /// Region the caller runs in.
    region: Mutex<Region>,
    now_ns: AtomicU64,
    phase: Mutex<Vec<&'static str>>,
}

impl Ctx {
    /// Creates a root context.
    pub fn new(model: Arc<LatencyModel>, mode: LatencyMode, seed: u64) -> Self {
        Ctx {
            shared: Arc::new(CtxShared {
                model,
                mode,
                spans: Mutex::new(Vec::new()),
                record_spans: !matches!(mode, LatencyMode::Disabled),
            }),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            aux_rng: Mutex::new(SmallRng::seed_from_u64(seed ^ AUX_SALT)),
            env: Mutex::new(ExecEnv::client()),
            region: Mutex::new(Region::default()),
            now_ns: AtomicU64::new(0),
            phase: Mutex::new(Vec::new()),
        }
    }

    /// A context that charges nothing; for functional tests.
    pub fn disabled() -> Self {
        Ctx::new(Arc::new(LatencyModel::zero()), LatencyMode::Disabled, 0)
    }

    /// Sets the execution environment (e.g. entering a function sandbox).
    pub fn set_env(&self, env: ExecEnv) {
        *self.env.lock() = env;
    }

    /// The current execution environment.
    pub fn env(&self) -> ExecEnv {
        *self.env.lock()
    }

    /// Runs `f` with a temporary execution environment, restoring the
    /// previous one afterwards (crossing a sandbox boundary).
    pub fn with_env<T>(&self, env: ExecEnv, f: impl FnOnce() -> T) -> T {
        let prev = std::mem::replace(&mut *self.env.lock(), env);
        let out = f();
        *self.env.lock() = prev;
        out
    }

    /// Sets the caller's region.
    pub fn set_region(&self, region: Region) {
        *self.region.lock() = region;
    }

    /// The caller's region.
    pub fn region(&self) -> Region {
        *self.region.lock()
    }

    /// The latency model in use.
    pub fn model(&self) -> &Arc<LatencyModel> {
        &self.shared.model
    }

    /// The latency mode.
    pub fn mode(&self) -> LatencyMode {
        self.shared.mode
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Current virtual time in nanoseconds (for carrying across queues).
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advances this context's clock to at least `ns` (used when a message
    /// carrying a send-side timestamp is received).
    pub fn merge_time_ns(&self, ns: u64) {
        self.now_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Unconditionally advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.now_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Charges one operation against a same-region service.
    pub fn charge(&self, op: Op, size_bytes: usize) -> Duration {
        self.charge_to(op, size_bytes, self.region())
    }

    /// Charges one operation against a service in `service_region`
    /// (cross-region penalties apply when it differs from the caller's).
    pub fn charge_to(&self, op: Op, size_bytes: usize, service_region: Region) -> Duration {
        if matches!(self.shared.mode, LatencyMode::Disabled) {
            return Duration::ZERO;
        }
        let cross = service_region != self.region();
        let env = self.env();
        let dur = {
            let mut rng = self.rng.lock();
            self.shared
                .model
                .sample(op, size_bytes, cross, &env, &mut *rng)
        };
        let start_ns = self
            .now_ns
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        if self.shared.record_spans {
            let phase = self.phase.lock().join("/");
            self.shared.spans.lock().push(SpanRecord {
                phase,
                op,
                start: Duration::from_nanos(start_ns),
                duration: dur,
            });
        }
        if let LatencyMode::SleepScaled(scale) = self.shared.mode {
            if dur > Duration::ZERO {
                std::thread::sleep(dur.mul_f64(scale));
            }
        }
        dur
    }

    /// Runs `f` with a phase label pushed; all ops charged inside are
    /// attributed to the label (Figure 10's breakdown).
    pub fn span<T>(&self, label: &'static str, f: impl FnOnce() -> T) -> T {
        self.phase.lock().push(label);
        let out = f();
        self.phase.lock().pop();
        out
    }

    /// Pushes a phase label without a closure (paired with [`Ctx::pop_phase`]).
    pub fn push_phase(&self, label: &'static str) {
        self.phase.lock().push(label);
    }

    /// Pops the innermost phase label.
    pub fn pop_phase(&self) {
        self.phase.lock().pop();
    }

    /// Forks a child context that starts at this context's current time
    /// (for parallel sections). The child shares the span sink but owns
    /// its RNG, seeded from a draw on the parent's — forks created in a
    /// fixed order sample deterministically regardless of how the
    /// branches are later scheduled across threads.
    pub fn fork(&self) -> Ctx {
        use rand::RngCore;
        let child_seed = self.rng.lock().next_u64();
        let child_aux_seed = self.aux_rng.lock().next_u64();
        Ctx {
            shared: Arc::clone(&self.shared),
            rng: Mutex::new(SmallRng::seed_from_u64(child_seed)),
            aux_rng: Mutex::new(SmallRng::seed_from_u64(child_aux_seed)),
            env: Mutex::new(self.env()),
            region: Mutex::new(self.region()),
            now_ns: AtomicU64::new(self.now_ns.load(Ordering::Relaxed)),
            phase: Mutex::new(self.phase.lock().clone()),
        }
    }

    /// Draws one value in `[0, 1)` from the auxiliary decision stream
    /// (fault rolls, retry jitter). Deliberately separate from latency
    /// sampling: consuming this stream never changes which latencies a
    /// run samples, so a chaotic run and its fault-free twin stay
    /// comparable sample-for-sample.
    pub fn aux_roll(&self) -> f64 {
        use rand::RngCore;
        let raw = self.aux_rng.lock().next_u64();
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Joins children: advances this clock to the max of the children's.
    pub fn join(&self, children: &[Ctx]) {
        let max = children
            .iter()
            .map(|c| c.now_ns.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        self.now_ns.fetch_max(max, Ordering::Relaxed);
    }

    /// Drains all recorded spans (shared across forks).
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.shared.spans.lock())
    }

    /// Aggregates charged time per top-level phase label.
    pub fn phase_totals(&self) -> std::collections::BTreeMap<String, Duration> {
        let mut totals = std::collections::BTreeMap::new();
        for span in self.shared.spans.lock().iter() {
            let top = span.phase.split('/').next().unwrap_or("").to_owned();
            *totals.entry(top).or_insert(Duration::ZERO) += span.duration;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::QueueKind;

    fn virtual_ctx() -> Ctx {
        Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 123)
    }

    #[test]
    fn disabled_mode_charges_nothing() {
        let ctx = Ctx::disabled();
        let d = ctx.charge(Op::ObjPut, 1 << 20);
        assert_eq!(d, Duration::ZERO);
        assert_eq!(ctx.now(), Duration::ZERO);
        assert!(ctx.take_spans().is_empty());
    }

    #[test]
    fn virtual_mode_advances_clock_monotonically() {
        let ctx = virtual_ctx();
        let d1 = ctx.charge(Op::KvPut, 1024);
        let t1 = ctx.now();
        let d2 = ctx.charge(Op::KvPut, 1024);
        let t2 = ctx.now();
        assert!(d1 > Duration::ZERO);
        assert_eq!(t1, d1);
        assert_eq!(t2, d1 + d2);
    }

    #[test]
    fn spans_capture_phase_labels() {
        let ctx = virtual_ctx();
        ctx.span("lock_node", || {
            ctx.charge(Op::KvUpdate { conditional: true }, 64);
        });
        ctx.span("push_to_leader", || {
            ctx.charge(Op::QueueSend(QueueKind::Fifo), 64);
        });
        let spans = ctx.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, "lock_node");
        assert_eq!(spans[1].phase, "push_to_leader");
        assert!(spans[1].start >= spans[0].duration);
    }

    #[test]
    fn fork_join_takes_max_branch() {
        let ctx = virtual_ctx();
        ctx.charge(Op::KvGet { consistent: true }, 64);
        let a = ctx.fork();
        let b = ctx.fork();
        a.charge(Op::ObjPut, 250 * 1024); // slow branch
        b.charge(Op::TcpReply, 64); // fast branch
        ctx.join(&[a, b]);
        let spans = ctx.take_spans();
        let slow: Duration = spans
            .iter()
            .filter(|s| s.op == Op::ObjPut)
            .map(|s| s.duration)
            .sum();
        let pre: Duration = spans
            .iter()
            .filter(|s| matches!(s.op, Op::KvGet { .. }))
            .map(|s| s.duration)
            .sum();
        assert_eq!(ctx.now(), pre + slow);
    }

    #[test]
    fn merge_time_is_monotone() {
        let ctx = virtual_ctx();
        ctx.merge_time_ns(5_000_000);
        assert_eq!(ctx.now(), Duration::from_millis(5));
        ctx.merge_time_ns(1_000_000); // older timestamp: no-op
        assert_eq!(ctx.now(), Duration::from_millis(5));
    }

    #[test]
    fn phase_totals_aggregate_nested_labels() {
        let ctx = virtual_ctx();
        ctx.span("commit", || {
            ctx.charge(Op::KvUpdate { conditional: true }, 64);
            ctx.span("inner", || {
                ctx.charge(Op::KvUpdate { conditional: true }, 64);
            });
        });
        let totals = ctx.phase_totals();
        assert_eq!(totals.len(), 1);
        assert!(totals.contains_key("commit"));
    }

    #[test]
    fn deterministic_given_seed() {
        let c1 = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 9);
        let c2 = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 9);
        for _ in 0..50 {
            assert_eq!(c1.charge(Op::ObjGet, 4096), c2.charge(Op::ObjGet, 4096));
        }
    }

    #[test]
    fn aux_stream_is_independent_of_latency_sampling() {
        let a = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 7);
        let b = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 7);
        // Interleaving aux draws on `a` must not shift its latency stream.
        for i in 0..20 {
            if i % 2 == 0 {
                a.aux_roll();
            }
            assert_eq!(a.charge(Op::KvPut, 256), b.charge(Op::KvPut, 256));
        }
        // The aux stream itself replays from the seed, fork included.
        let c = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 7);
        let d = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 7);
        for _ in 0..10 {
            let roll = c.aux_roll();
            assert!((0.0..1.0).contains(&roll));
            assert_eq!(roll, d.aux_roll());
        }
        assert_eq!(c.fork().aux_roll(), d.fork().aux_roll());
    }

    #[test]
    fn cross_region_charge_uses_service_region() {
        let ctx = virtual_ctx();
        // Deterministic comparison: same seed stream, so charge order
        // matters; use two fresh contexts instead.
        let local = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 4);
        let remote = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 4);
        let d_local = local.charge_to(Op::ObjGet, 1024, Region::US_EAST_1);
        let d_remote = remote.charge_to(Op::ObjGet, 1024, Region::US_WEST_2);
        assert!(d_remote > d_local + Duration::from_millis(50));
        drop(ctx);
    }
}
