//! Attribute values and items for the simulated key-value store.
//!
//! Mirrors the DynamoDB data model at the semantic level used by the paper:
//! numbers (used for timestamps, counters and locks), strings (paths,
//! session ids), binary blobs (node payloads), and lists (children,
//! epoch counters, pending-transaction queues).

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer (timestamps, counters, versions).
    Num(i64),
    /// UTF-8 string (paths, ids).
    Str(String),
    /// Binary payload (node data).
    Bin(Bytes),
    /// Ordered list of values (children lists, epoch lists, txid queues).
    List(Vec<Value>),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Returns the numeric value, if this is a `Num`.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the binary value, if this is a `Bin`.
    pub fn as_bin(&self) -> Option<&Bytes> {
        match self {
            Value::Bin(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list value, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used for billing-unit
    /// computation (DynamoDB bills reads per 4 kB and writes per 1 kB of
    /// item size; SQS bills per 64 kB of message size).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Num(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bin(b) => b.len(),
            Value::List(l) => l.iter().map(Value::size_bytes).sum::<usize>() + 2 * l.len(),
            Value::Bool(_) => 1,
        }
    }

    /// A short type tag for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Bin(_) => "binary",
            Value::List(_) => "list",
            Value::Bool(_) => "bool",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bin(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bin(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bin(Bytes::from(b))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

/// An item: a named collection of attributes, keyed by attribute name.
///
/// `BTreeMap` keeps attribute iteration deterministic, which matters for
/// reproducible tests and size accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Item {
    attrs: BTreeMap<String, Value>,
}

impl Item {
    /// Creates an empty item.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style attribute insertion.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.attrs.insert(name.into(), value.into())
    }

    /// Gets an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Removes an attribute by name.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.attrs.remove(name)
    }

    /// True if the attribute exists.
    pub fn contains(&self, name: &str) -> bool {
        self.attrs.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the item has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in attribute-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.attrs.iter()
    }

    /// Mutable access to an attribute.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.attrs.get_mut(name)
    }

    /// Total serialized size: attribute names + values. This is the size
    /// used for billing-unit rounding, following DynamoDB's item-size rule.
    pub fn size_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|(k, v)| k.len() + v.size_bytes())
            .sum()
    }

    /// Convenience: numeric attribute accessor.
    pub fn num(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_num)
    }

    /// Convenience: string attribute accessor.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Convenience: binary attribute accessor.
    pub fn bin(&self, name: &str) -> Option<&Bytes> {
        self.get(name).and_then(Value::as_bin)
    }

    /// Convenience: list attribute accessor.
    pub fn list(&self, name: &str) -> Option<&[Value]> {
        self.get(name).and_then(Value::as_list)
    }
}

impl FromIterator<(String, Value)> for Item {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Item {
            attrs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_builder_and_accessors() {
        let item = Item::new()
            .with("path", "/config/a")
            .with("version", 7i64)
            .with("data", vec![1u8, 2, 3])
            .with("ephemeral", true)
            .with("children", vec![Value::from("x"), Value::from("y")]);
        assert_eq!(item.str("path"), Some("/config/a"));
        assert_eq!(item.num("version"), Some(7));
        assert_eq!(item.bin("data").unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(item.get("ephemeral").unwrap().as_bool(), Some(true));
        assert_eq!(item.list("children").unwrap().len(), 2);
        assert_eq!(item.len(), 5);
        assert!(!item.is_empty());
    }

    #[test]
    fn size_accounting_includes_names_and_values() {
        let item = Item::new().with("k", Value::Num(1));
        // name "k" (1) + number (8)
        assert_eq!(item.size_bytes(), 9);
        let item2 = Item::new().with("data", Bytes::from(vec![0u8; 100]));
        assert_eq!(item2.size_bytes(), 104);
    }

    #[test]
    fn list_size_includes_overhead() {
        let v = Value::List(vec![Value::Num(1), Value::Num(2)]);
        assert_eq!(v.size_bytes(), 8 + 8 + 4);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64).as_num(), Some(5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::from(5i64).as_str().is_none());
        assert_eq!(Value::from(5i64).type_name(), "number");
    }

    #[test]
    fn display_roundtrips_sensibly() {
        let v = Value::List(vec![Value::Num(1), Value::Str("a".into())]);
        assert_eq!(v.to_string(), "[1, \"a\"]");
    }

    #[test]
    fn item_mutation() {
        let mut item = Item::new();
        assert!(item.set("a", 1i64).is_none());
        assert_eq!(item.set("a", 2i64), Some(Value::Num(1)));
        assert_eq!(item.remove("a"), Some(Value::Num(2)));
        assert!(item.is_empty());
    }
}
