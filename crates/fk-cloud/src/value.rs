//! Attribute values and items for the simulated key-value store.
//!
//! Mirrors the DynamoDB data model at the semantic level used by the paper:
//! numbers (used for timestamps, counters and locks), strings (paths,
//! session ids), binary blobs (node payloads), and lists (children,
//! epoch counters, pending-transaction queues).

use bytes::Bytes;
use fk_store::varint;
use std::collections::BTreeMap;
use std::fmt;

/// Wire tags for the binary value codec ([`Item::encode`]).
const TAG_NUM: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BIN: u8 = 3;
const TAG_LIST: u8 = 4;
const TAG_BOOL: u8 = 5;

/// Maximum list nesting depth the decoder accepts; deeper input is
/// rejected as corrupt rather than recursed into.
const MAX_DEPTH: u32 = 32;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer (timestamps, counters, versions).
    Num(i64),
    /// UTF-8 string (paths, ids).
    Str(String),
    /// Binary payload (node data).
    Bin(Bytes),
    /// Ordered list of values (children lists, epoch lists, txid queues).
    List(Vec<Value>),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Returns the numeric value, if this is a `Num`.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the binary value, if this is a `Bin`.
    pub fn as_bin(&self) -> Option<&Bytes> {
        match self {
            Value::Bin(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list value, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used for billing-unit
    /// computation (DynamoDB bills reads per 4 kB and writes per 1 kB of
    /// item size; SQS bills per 64 kB of message size).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Num(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bin(b) => b.len(),
            Value::List(l) => l.iter().map(Value::size_bytes).sum::<usize>() + 2 * l.len(),
            Value::Bool(_) => 1,
        }
    }

    /// Appends the binary encoding of this value to `out` (tag byte,
    /// then a type-specific body; lengths are LEB128 varints).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Num(n) => {
                out.push(TAG_NUM);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                varint::write(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bin(b) => {
                out.push(TAG_BIN);
                varint::write(out, b.len() as u64);
                out.extend_from_slice(b);
            }
            Value::List(l) => {
                out.push(TAG_LIST);
                varint::write(out, l.len() as u64);
                for v in l {
                    v.encode_into(out);
                }
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
        }
    }

    fn decode_at(buf: &[u8], pos: &mut usize, depth: u32) -> Option<Value> {
        if depth > MAX_DEPTH {
            return None;
        }
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            TAG_NUM => {
                let raw = buf.get(*pos..*pos + 8)?;
                *pos += 8;
                Some(Value::Num(i64::from_le_bytes(raw.try_into().ok()?)))
            }
            TAG_STR => {
                let len = varint::read(buf, pos)? as usize;
                let raw = buf.get(*pos..pos.checked_add(len)?)?;
                *pos += len;
                Some(Value::Str(std::str::from_utf8(raw).ok()?.to_owned()))
            }
            TAG_BIN => {
                let len = varint::read(buf, pos)? as usize;
                let raw = buf.get(*pos..pos.checked_add(len)?)?;
                *pos += len;
                Some(Value::Bin(Bytes::from(raw.to_vec())))
            }
            TAG_LIST => {
                let n = varint::read(buf, pos)? as usize;
                // A count can't exceed one element per remaining byte;
                // reject early so corrupt counts don't pre-allocate.
                if n > buf.len() - *pos {
                    return None;
                }
                let mut l = Vec::with_capacity(n);
                for _ in 0..n {
                    l.push(Value::decode_at(buf, pos, depth + 1)?);
                }
                Some(Value::List(l))
            }
            TAG_BOOL => {
                let b = *buf.get(*pos)?;
                *pos += 1;
                match b {
                    0 => Some(Value::Bool(false)),
                    1 => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// A short type tag for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Bin(_) => "binary",
            Value::List(_) => "list",
            Value::Bool(_) => "bool",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bin(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bin(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bin(Bytes::from(b))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

/// An item: a named collection of attributes, keyed by attribute name.
///
/// `BTreeMap` keeps attribute iteration deterministic, which matters for
/// reproducible tests and size accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Item {
    attrs: BTreeMap<String, Value>,
}

impl Item {
    /// Creates an empty item.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style attribute insertion.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.attrs.insert(name.into(), value.into())
    }

    /// Gets an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Removes an attribute by name.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.attrs.remove(name)
    }

    /// True if the attribute exists.
    pub fn contains(&self, name: &str) -> bool {
        self.attrs.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the item has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in attribute-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.attrs.iter()
    }

    /// Mutable access to an attribute.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.attrs.get_mut(name)
    }

    /// Total serialized size: attribute names + values. This is the size
    /// used for billing-unit rounding, following DynamoDB's item-size rule.
    pub fn size_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|(k, v)| k.len() + v.size_bytes())
            .sum()
    }

    /// Encodes the item to its binary wire form: a varint attribute
    /// count followed by `(varint name_len, name, value)` triples in
    /// attribute-name order. This is the layout the durable backend
    /// persists, and what the item-packing study in
    /// `docs/benchmarks.md` measures.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() + 8);
        varint::write(&mut out, self.attrs.len() as u64);
        for (name, value) in &self.attrs {
            varint::write(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            value.encode_into(&mut out);
        }
        out
    }

    /// Decodes an item from [`Item::encode`] bytes. Returns `None` on
    /// any truncation, bad tag, invalid UTF-8 or trailing garbage —
    /// corrupt persisted bytes decode to a clean error, never a panic.
    pub fn decode(buf: &[u8]) -> Option<Item> {
        let mut pos = 0usize;
        let n = varint::read(buf, &mut pos)? as usize;
        if n > buf.len() - pos {
            return None;
        }
        let mut attrs = BTreeMap::new();
        for _ in 0..n {
            let len = varint::read(buf, &mut pos)? as usize;
            let raw = buf.get(pos..pos.checked_add(len)?)?;
            pos += len;
            let name = std::str::from_utf8(raw).ok()?.to_owned();
            let value = Value::decode_at(buf, &mut pos, 0)?;
            attrs.insert(name, value);
        }
        if pos != buf.len() {
            return None;
        }
        Some(Item { attrs })
    }

    /// Convenience: numeric attribute accessor.
    pub fn num(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_num)
    }

    /// Convenience: string attribute accessor.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Convenience: binary attribute accessor.
    pub fn bin(&self, name: &str) -> Option<&Bytes> {
        self.get(name).and_then(Value::as_bin)
    }

    /// Convenience: list attribute accessor.
    pub fn list(&self, name: &str) -> Option<&[Value]> {
        self.get(name).and_then(Value::as_list)
    }
}

impl FromIterator<(String, Value)> for Item {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Item {
            attrs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_builder_and_accessors() {
        let item = Item::new()
            .with("path", "/config/a")
            .with("version", 7i64)
            .with("data", vec![1u8, 2, 3])
            .with("ephemeral", true)
            .with("children", vec![Value::from("x"), Value::from("y")]);
        assert_eq!(item.str("path"), Some("/config/a"));
        assert_eq!(item.num("version"), Some(7));
        assert_eq!(item.bin("data").unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(item.get("ephemeral").unwrap().as_bool(), Some(true));
        assert_eq!(item.list("children").unwrap().len(), 2);
        assert_eq!(item.len(), 5);
        assert!(!item.is_empty());
    }

    #[test]
    fn size_accounting_includes_names_and_values() {
        let item = Item::new().with("k", Value::Num(1));
        // name "k" (1) + number (8)
        assert_eq!(item.size_bytes(), 9);
        let item2 = Item::new().with("data", Bytes::from(vec![0u8; 100]));
        assert_eq!(item2.size_bytes(), 104);
    }

    #[test]
    fn list_size_includes_overhead() {
        let v = Value::List(vec![Value::Num(1), Value::Num(2)]);
        assert_eq!(v.size_bytes(), 8 + 8 + 4);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64).as_num(), Some(5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::from(5i64).as_str().is_none());
        assert_eq!(Value::from(5i64).type_name(), "number");
    }

    #[test]
    fn display_roundtrips_sensibly() {
        let v = Value::List(vec![Value::Num(1), Value::Str("a".into())]);
        assert_eq!(v.to_string(), "[1, \"a\"]");
    }

    #[test]
    fn codec_roundtrips_every_type() {
        let item = Item::new()
            .with("path", "/config/a")
            .with("version", -7i64)
            .with("data", vec![1u8, 2, 3])
            .with("ephemeral", true)
            .with(
                "children",
                vec![
                    Value::from("x"),
                    Value::List(vec![Value::Num(1), Value::Bool(false)]),
                ],
            );
        let bytes = item.encode();
        assert_eq!(Item::decode(&bytes), Some(item));
        assert_eq!(Item::decode(&Item::new().encode()), Some(Item::new()));
    }

    #[test]
    fn codec_truncation_is_clean_at_every_cut() {
        let item = Item::new()
            .with("a", 1i64)
            .with("b", "str")
            .with("c", vec![0u8; 9])
            .with("d", vec![Value::Num(2), Value::from("q")]);
        let bytes = item.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Item::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(Item::decode(&extended), None);
    }

    #[test]
    fn codec_rejects_bad_tags_and_bools() {
        let mut bytes = Item::new().with("a", true).encode();
        let last = bytes.len() - 1;
        bytes[last] = 7; // bool body must be 0/1
        assert_eq!(Item::decode(&bytes), None);
        let mut bytes = Item::new().with("a", 1i64).encode();
        bytes[3] = 99; // unknown value tag
        assert_eq!(Item::decode(&bytes), None);
    }

    #[test]
    fn item_mutation() {
        let mut item = Item::new();
        assert!(item.set("a", 1i64).is_none());
        assert_eq!(item.set("a", 2i64), Some(Value::Num(1)));
        assert_eq!(item.remove("a"), Some(Value::Num(2)));
        assert!(item.is_empty());
    }
}
