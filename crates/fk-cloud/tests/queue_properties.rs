//! Property-based tests of the queue guarantees FaaSKeeper's consistency
//! proof rests on (§3.1 requirements (b), (c), (e)): per-group FIFO under
//! arbitrary interleavings of receive/ack/nack, global sequence-number
//! monotonicity, and no message loss or duplication.

use bytes::Bytes;
use fk_cloud::trace::Ctx;
use fk_cloud::{Queue, QueueKind, Region};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// A consumer step in the random schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Receive up to n messages, then ack.
    ReceiveAck(usize),
    /// Receive up to n messages, then nack from the given index.
    ReceiveNack(usize, usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1usize..5).prop_map(Step::ReceiveAck),
        (1usize..5, 0usize..3).prop_map(|(n, idx)| Step::ReceiveNack(n, idx)),
    ]
}

proptest! {
    /// Random receive/ack/nack interleavings preserve per-group FIFO and
    /// exactly-once-on-ack semantics.
    #[test]
    fn fifo_exactly_once_in_order(
        sends in proptest::collection::vec((0u8..3, 0u16..1000), 1..40),
        schedule in proptest::collection::vec(step_strategy(), 0..25),
    ) {
        let queue = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Default::default());
        let ctx = Ctx::disabled();
        let mut expected: HashMap<String, Vec<u16>> = HashMap::new();
        let mut last_seq = 0;
        for (group, value) in &sends {
            let group = format!("g{group}");
            let seq = queue
                .send(&ctx, &group, Bytes::from(value.to_le_bytes().to_vec()))
                .unwrap();
            // Requirement (e): monotonically increasing sequence numbers.
            prop_assert!(seq > last_seq);
            last_seq = seq;
            expected.entry(group).or_default().push(*value);
        }

        let visibility = Duration::from_secs(60);
        let mut processed: HashMap<String, Vec<u16>> = HashMap::new();
        let record = |batch: &fk_cloud::Batch, upto: usize, processed: &mut HashMap<String, Vec<u16>>| {
            for msg in batch.messages.iter().take(upto) {
                let value = u16::from_le_bytes([msg.body[0], msg.body[1]]);
                processed.entry(msg.group.to_string()).or_default().push(value);
            }
        };

        for step in schedule {
            match step {
                Step::ReceiveAck(n) => {
                    if let Some(batch) = queue.receive(n, visibility) {
                        record(&batch, batch.messages.len(), &mut processed);
                        queue.ack(batch.receipt);
                    }
                }
                Step::ReceiveNack(n, idx) => {
                    if let Some(batch) = queue.receive(n, visibility) {
                        // Messages before idx are processed, the rest
                        // return to the queue for redelivery.
                        let upto = idx.min(batch.messages.len());
                        record(&batch, upto, &mut processed);
                        queue.nack(batch.receipt, upto);
                    }
                }
            }
        }
        // Drain whatever remains.
        while let Some(batch) = queue.receive(10, visibility) {
            record(&batch, batch.messages.len(), &mut processed);
            queue.ack(batch.receipt);
        }

        // Messages that exhausted their redelivery budget moved to the
        // dead-letter queue (by design); everything else must be processed
        // exactly once, in order. Per group: processed ∪ dead-lettered =
        // sent, and the processed sequence is an in-order subsequence.
        let mut dead: HashMap<String, Vec<u16>> = HashMap::new();
        for msg in queue.dead_letters() {
            let value = u16::from_le_bytes([msg.body[0], msg.body[1]]);
            dead.entry(msg.group.to_string()).or_default().push(value);
        }
        for (group, sent) in &expected {
            let got = processed.get(group).cloned().unwrap_or_default();
            let lost = dead.get(group).cloned().unwrap_or_default();
            prop_assert_eq!(
                got.len() + lost.len(),
                sent.len(),
                "group {}: every message is processed or dead-lettered", group
            );
            // In-order subsequence check.
            let mut it = sent.iter();
            for v in &got {
                prop_assert!(
                    it.any(|s| s == v),
                    "group {}: {:?} is not an in-order subsequence of {:?}",
                    group, got, sent
                );
            }
        }
    }

    /// A consumer that dies mid-handler (receives, processes nothing,
    /// never acks) loses only its visibility claim: once the timeout
    /// expires the whole batch returns to the *front* of its group and
    /// redelivers in the original order, with the attempt counter
    /// recording the extra delivery.
    #[test]
    fn visibility_expiry_redelivers_in_order(
        values in proptest::collection::vec(0u16..1000, 1..8),
    ) {
        let queue = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Default::default());
        let ctx = Ctx::disabled();
        for value in &values {
            queue
                .send(&ctx, "g", Bytes::from(value.to_le_bytes().to_vec()))
                .unwrap();
        }
        // First delivery: claim the batch with a tiny visibility window
        // and crash (drop the receipt without ack or nack).
        let crashed = queue.receive(10, Duration::from_millis(5)).unwrap();
        let first: Vec<u64> = crashed.messages.iter().map(|m| m.seq).collect();
        prop_assert!(crashed.messages.iter().all(|m| m.attempt == 1));
        std::thread::sleep(Duration::from_millis(10));

        // Redelivery: same messages, same order, attempt bumped.
        let redelivered = queue.receive(10, Duration::from_secs(60)).unwrap();
        let second: Vec<u64> = redelivered.messages.iter().map(|m| m.seq).collect();
        prop_assert_eq!(&second, &first);
        prop_assert!(redelivered.messages.iter().all(|m| m.attempt == 2));
        queue.ack(redelivered.receipt);
        prop_assert!(queue.dead_letters().is_empty());
    }

    /// At-least-once duplication (chaos `QueueDuplicate` armed at 100%):
    /// every sent message lands twice with the *same* sequence number, so
    /// a consumer deduplicating on `seq` — as the follower and leader do
    /// on their message ids — recovers exactly the sent stream in order.
    #[test]
    fn duplicate_delivery_dedupes_on_seq(
        values in proptest::collection::vec(0u16..1000, 1..12),
    ) {
        use fk_cloud::{Chaos, FaultPlan, FaultSpec};
        let queue = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Default::default());
        let mut plan = FaultPlan::disabled();
        plan.queue_duplicate = FaultSpec::new(1.0, values.len() as u64);
        queue.install_chaos(Chaos::from_plan(plan).unwrap());
        let ctx = Ctx::disabled();
        let mut sent = Vec::new();
        for value in &values {
            let seq = queue
                .send(&ctx, "g", Bytes::from(value.to_le_bytes().to_vec()))
                .unwrap();
            sent.push((seq, *value));
        }
        let mut delivered: Vec<(u64, u16)> = Vec::new();
        while let Some(batch) = queue.receive(10, Duration::from_secs(60)) {
            for msg in &batch.messages {
                delivered.push((msg.seq, u16::from_le_bytes([msg.body[0], msg.body[1]])));
            }
            queue.ack(batch.receipt);
        }
        // Twice the traffic, but dedup-by-seq restores the exact stream.
        prop_assert_eq!(delivered.len(), sent.len() * 2);
        let mut deduped = Vec::new();
        for entry in delivered {
            if deduped.last() != Some(&entry) {
                deduped.push(entry);
            }
        }
        prop_assert_eq!(deduped, sent);
    }

    /// `nack_deferred` (the "can't process this *yet*" path behind the
    /// follower's cross-shard hold-back) must never burn redelivery
    /// attempts: arbitrarily many deferrals keep the message out of the
    /// dead-letter queue, while the same number of plain nacks would
    /// have killed it several times over.
    #[test]
    fn nack_deferred_never_burns_attempts(defers in 6usize..30) {
        let queue = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Default::default());
        let ctx = Ctx::disabled();
        queue.send(&ctx, "g", Bytes::from_static(b"held-back")).unwrap();
        for _ in 0..defers {
            let batch = queue.receive(1, Duration::from_secs(60)).unwrap();
            // Every delivery arrives as attempt 1: the deferral handed
            // the attempt back.
            prop_assert_eq!(batch.messages[0].attempt, 1);
            queue.nack_deferred(batch.receipt, 0);
        }
        prop_assert!(queue.dead_letters().is_empty());
        let batch = queue.receive(1, Duration::from_secs(60)).unwrap();
        prop_assert_eq!(batch.messages[0].attempt, 1);
        queue.ack(batch.receipt);
        prop_assert_eq!(queue.pending(), 0);
    }

    /// Plain nacks *do* burn attempts: after `max_receive_count` failed
    /// deliveries the message lands in the DLQ, the depth gauge rises,
    /// and `drain_dead_letters` hands it to the operator while lowering
    /// the gauge back — nothing accumulates silently.
    #[test]
    fn repeated_nack_dead_letters_and_drains(extra in 0usize..4) {
        let meter = fk_cloud::Meter::new();
        let queue = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, meter.clone());
        let ctx = Ctx::disabled();
        queue.send(&ctx, "g", Bytes::from_static(b"poison")).unwrap();
        let mut deliveries = 0;
        for _ in 0..(5 + extra) {
            let Some(batch) = queue.receive(1, Duration::from_secs(60)) else {
                break;
            };
            deliveries += 1;
            queue.nack(batch.receipt, 0);
        }
        // max_receive_count = 5: exactly five failed deliveries, then the
        // DLQ.
        prop_assert_eq!(deliveries, 5);
        prop_assert_eq!(queue.dead_letters().len(), 1);
        prop_assert_eq!(meter.snapshot().queue_dead_letters, 1);
        let drained = queue.drain_dead_letters();
        prop_assert_eq!(drained.len(), 1);
        prop_assert_eq!(&*drained[0].body, b"poison".as_slice());
        prop_assert_eq!(meter.snapshot().queue_dead_letters, 0);
        prop_assert!(queue.dead_letters().is_empty());
    }

    /// Standard queues also never lose or duplicate acked messages, even
    /// without ordering guarantees.
    #[test]
    fn standard_queue_is_lossless(
        sends in proptest::collection::vec(0u16..1000, 1..40),
    ) {
        let queue = Queue::new("q", QueueKind::Standard, Region::US_EAST_1, Default::default());
        let ctx = Ctx::disabled();
        for value in &sends {
            queue
                .send(&ctx, "g", Bytes::from(value.to_le_bytes().to_vec()))
                .unwrap();
        }
        let mut got = Vec::new();
        while let Some(batch) = queue.receive(7, Duration::from_secs(60)) {
            for msg in &batch.messages {
                got.push(u16::from_le_bytes([msg.body[0], msg.body[1]]));
            }
            queue.ack(batch.receipt);
        }
        let mut sent = sends.clone();
        sent.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, sent);
    }
}
