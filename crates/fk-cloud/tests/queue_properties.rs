//! Property-based tests of the queue guarantees FaaSKeeper's consistency
//! proof rests on (§3.1 requirements (b), (c), (e)): per-group FIFO under
//! arbitrary interleavings of receive/ack/nack, global sequence-number
//! monotonicity, and no message loss or duplication.

use bytes::Bytes;
use fk_cloud::trace::Ctx;
use fk_cloud::{Queue, QueueKind, Region};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// A consumer step in the random schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Receive up to n messages, then ack.
    ReceiveAck(usize),
    /// Receive up to n messages, then nack from the given index.
    ReceiveNack(usize, usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1usize..5).prop_map(Step::ReceiveAck),
        (1usize..5, 0usize..3).prop_map(|(n, idx)| Step::ReceiveNack(n, idx)),
    ]
}

proptest! {
    /// Random receive/ack/nack interleavings preserve per-group FIFO and
    /// exactly-once-on-ack semantics.
    #[test]
    fn fifo_exactly_once_in_order(
        sends in proptest::collection::vec((0u8..3, 0u16..1000), 1..40),
        schedule in proptest::collection::vec(step_strategy(), 0..25),
    ) {
        let queue = Queue::new("q", QueueKind::Fifo, Region::US_EAST_1, Default::default());
        let ctx = Ctx::disabled();
        let mut expected: HashMap<String, Vec<u16>> = HashMap::new();
        let mut last_seq = 0;
        for (group, value) in &sends {
            let group = format!("g{group}");
            let seq = queue
                .send(&ctx, &group, Bytes::from(value.to_le_bytes().to_vec()))
                .unwrap();
            // Requirement (e): monotonically increasing sequence numbers.
            prop_assert!(seq > last_seq);
            last_seq = seq;
            expected.entry(group).or_default().push(*value);
        }

        let visibility = Duration::from_secs(60);
        let mut processed: HashMap<String, Vec<u16>> = HashMap::new();
        let record = |batch: &fk_cloud::Batch, upto: usize, processed: &mut HashMap<String, Vec<u16>>| {
            for msg in batch.messages.iter().take(upto) {
                let value = u16::from_le_bytes([msg.body[0], msg.body[1]]);
                processed.entry(msg.group.to_string()).or_default().push(value);
            }
        };

        for step in schedule {
            match step {
                Step::ReceiveAck(n) => {
                    if let Some(batch) = queue.receive(n, visibility) {
                        record(&batch, batch.messages.len(), &mut processed);
                        queue.ack(batch.receipt);
                    }
                }
                Step::ReceiveNack(n, idx) => {
                    if let Some(batch) = queue.receive(n, visibility) {
                        // Messages before idx are processed, the rest
                        // return to the queue for redelivery.
                        let upto = idx.min(batch.messages.len());
                        record(&batch, upto, &mut processed);
                        queue.nack(batch.receipt, upto);
                    }
                }
            }
        }
        // Drain whatever remains.
        while let Some(batch) = queue.receive(10, visibility) {
            record(&batch, batch.messages.len(), &mut processed);
            queue.ack(batch.receipt);
        }

        // Messages that exhausted their redelivery budget moved to the
        // dead-letter queue (by design); everything else must be processed
        // exactly once, in order. Per group: processed ∪ dead-lettered =
        // sent, and the processed sequence is an in-order subsequence.
        let mut dead: HashMap<String, Vec<u16>> = HashMap::new();
        for msg in queue.dead_letters() {
            let value = u16::from_le_bytes([msg.body[0], msg.body[1]]);
            dead.entry(msg.group.to_string()).or_default().push(value);
        }
        for (group, sent) in &expected {
            let got = processed.get(group).cloned().unwrap_or_default();
            let lost = dead.get(group).cloned().unwrap_or_default();
            prop_assert_eq!(
                got.len() + lost.len(),
                sent.len(),
                "group {}: every message is processed or dead-lettered", group
            );
            // In-order subsequence check.
            let mut it = sent.iter();
            for v in &got {
                prop_assert!(
                    it.any(|s| s == v),
                    "group {}: {:?} is not an in-order subsequence of {:?}",
                    group, got, sent
                );
            }
        }
    }

    /// Standard queues also never lose or duplicate acked messages, even
    /// without ordering guarantees.
    #[test]
    fn standard_queue_is_lossless(
        sends in proptest::collection::vec(0u16..1000, 1..40),
    ) {
        let queue = Queue::new("q", QueueKind::Standard, Region::US_EAST_1, Default::default());
        let ctx = Ctx::disabled();
        for value in &sends {
            queue
                .send(&ctx, "g", Bytes::from(value.to_le_bytes().to_vec()))
                .unwrap();
        }
        let mut got = Vec::new();
        while let Some(batch) = queue.receive(7, Duration::from_secs(60)) {
            for msg in &batch.messages {
                got.push(u16::from_le_bytes([msg.body[0], msg.body[1]]));
            }
            queue.ack(batch.receipt);
        }
        let mut sent = sends.clone();
        sent.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, sent);
    }
}
