//! ZooKeeper-compatible API types.
//!
//! FaaSKeeper "implements the same standard read and write operations as
//! ZooKeeper and offers clients an API similar to ZooKeeper" (§3.5),
//! modelled after the kazoo client library (§4.4). These are the shared
//! request/response types of that API.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Node creation modes (ZooKeeper semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CreateMode {
    /// Plain persistent node.
    Persistent,
    /// Deleted automatically when the owning session ends.
    Ephemeral,
    /// Persistent with a monotonically increasing suffix assigned by the
    /// service (`/lock-` → `/lock-0000000007`).
    PersistentSequential,
    /// Ephemeral and sequential.
    EphemeralSequential,
}

impl CreateMode {
    /// True for ephemeral variants.
    pub fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    /// True for sequential variants.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// Node metadata returned by read operations (ZooKeeper's `Stat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Stat {
    /// Transaction id that created the node (`czxid`).
    pub created_txid: u64,
    /// Transaction id of the last data change (`mzxid`).
    pub modified_txid: u64,
    /// Number of data changes (`version`).
    pub version: i32,
    /// Number of children (`numChildren`).
    pub num_children: u32,
    /// Length of the data in bytes.
    pub data_length: u32,
    /// `true` if the node is ephemeral.
    pub ephemeral: bool,
}

/// Types of watch events (ZooKeeper semantics; one-shot triggers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WatchEventType {
    /// Node created (fires exists watches).
    NodeCreated,
    /// Node data changed (fires data + exists watches).
    NodeDataChanged,
    /// Node deleted (fires data + exists + child watches).
    NodeDeleted,
    /// Children list changed (fires child watches on the parent).
    NodeChildrenChanged,
    /// Something changed anywhere in the subtree rooted at the watched
    /// path — a create, data change or delete of the path itself or any
    /// descendant (fires subtree watches). The event's `path` is the
    /// *watch root*, not the changed descendant: one event summarizes
    /// the change, the watcher re-scans to observe it (the recursive
    /// watch contract of [`WatchKind::Subtree`]).
    SubtreeChanged,
}

/// A delivered watch notification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WatchEvent {
    /// Watch instance id (unique; shared by all subscribed sessions).
    pub watch_id: u64,
    /// The path the event concerns.
    pub path: String,
    /// What happened.
    pub event_type: WatchEventType,
    /// Transaction that triggered the event.
    pub txid: u64,
    /// For [`WatchEventType::NodeChildrenChanged`]: the full children
    /// list of `path` as of `txid`, when the leader had it at hand.
    /// Carries the delta a cache needs to patch a resident parent
    /// record *in place* instead of invalidating it (idempotent: the
    /// list is absolute, not incremental). `None` on other event types
    /// and on events from pre-upgrade leaders.
    pub children: Option<Vec<String>>,
}

// Manual Deserialize: `children` is tolerated-missing so notifications
// serialized by a pre-upgrade deployment (legacy JSON without the
// field) keep decoding — the same no-flag-day contract the binary
// codec keeps via its version header.
impl<'de> serde::Deserialize<'de> for WatchEvent {
    fn from_json(value: &serde::Json) -> Result<Self, serde::JsonError> {
        use serde::__private::field;
        let obj = value
            .as_obj()
            .ok_or_else(|| serde::JsonError::expected("WatchEvent object"))?;
        Ok(WatchEvent {
            watch_id: u64::from_json(field(obj, "watch_id")?)?,
            path: String::from_json(field(obj, "path")?)?,
            event_type: WatchEventType::from_json(field(obj, "event_type")?)?,
            txid: u64::from_json(field(obj, "txid")?)?,
            children: match value.get("children") {
                Some(json) => Option::<Vec<String>>::from_json(json)?,
                None => None,
            },
        })
    }
}

/// Kinds of watches a client can register (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WatchKind {
    /// Fires on data change / deletion of an existing node.
    Data,
    /// Fires on creation / deletion (registered via `exists`).
    Exists,
    /// Fires on child-list changes (registered via `get_children`).
    Children,
    /// Fires on any change in the subtree rooted at the watched path —
    /// creates, data changes and deletes of the path or any descendant
    /// (registered via `get_subtree`; ZooKeeper 3.6 `PERSISTENT_RECURSIVE`
    /// minus persistence — FaaSKeeper watches stay one-shot, §3.4).
    Subtree,
}

/// Errors surfaced through the client API (ZooKeeper error codes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FkError {
    /// The node already exists (create).
    NodeExists,
    /// The node does not exist.
    NoNode,
    /// Conditional operation: version mismatch.
    BadVersion,
    /// Delete on a node that still has children.
    NotEmpty,
    /// Ephemeral nodes cannot have children.
    NoChildrenForEphemerals,
    /// The session is closed or expired.
    SessionExpired,
    /// Malformed path.
    BadArguments {
        /// Why the arguments were rejected.
        detail: String,
    },
    /// Payload exceeds node size limits (§4.4).
    TooLarge {
        /// Attempted size.
        size: usize,
        /// Limit.
        limit: usize,
    },
    /// Internal system failure (queue/storage/function error).
    SystemError {
        /// Failure description.
        detail: String,
    },
    /// The request timed out waiting for a result.
    Timeout,
    /// A `multi` transaction was rejected: the op at `index` failed with
    /// `cause` and every other op rolled back (ZooKeeper's partial-
    /// failure reporting — the whole transaction is all-or-nothing, so
    /// no op left any state behind).
    MultiFailed {
        /// Index of the failing op within the submitted `Vec<Op>`.
        index: u32,
        /// Why that op failed validation.
        cause: Box<FkError>,
    },
}

impl fmt::Display for FkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FkError::NodeExists => write!(f, "node already exists"),
            FkError::NoNode => write!(f, "no such node"),
            FkError::BadVersion => write!(f, "version mismatch"),
            FkError::NotEmpty => write!(f, "node has children"),
            FkError::NoChildrenForEphemerals => {
                write!(f, "ephemeral nodes cannot have children")
            }
            FkError::SessionExpired => write!(f, "session expired"),
            FkError::BadArguments { detail } => write!(f, "bad arguments: {detail}"),
            FkError::TooLarge { size, limit } => {
                write!(f, "data too large: {size} bytes (limit {limit})")
            }
            FkError::SystemError { detail } => write!(f, "system error: {detail}"),
            FkError::Timeout => write!(f, "request timed out"),
            FkError::MultiFailed { index, cause } => {
                write!(f, "multi failed at op {index}: {cause}")
            }
        }
    }
}

impl std::error::Error for FkError {}

/// Result alias for client API calls.
pub type FkResult<T> = Result<T, FkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_mode_classification() {
        assert!(CreateMode::Ephemeral.is_ephemeral());
        assert!(CreateMode::EphemeralSequential.is_ephemeral());
        assert!(!CreateMode::Persistent.is_ephemeral());
        assert!(CreateMode::PersistentSequential.is_sequential());
        assert!(!CreateMode::Ephemeral.is_sequential());
    }

    #[test]
    fn error_display() {
        assert_eq!(FkError::NoNode.to_string(), "no such node");
        assert_eq!(
            FkError::TooLarge { size: 10, limit: 5 }.to_string(),
            "data too large: 10 bytes (limit 5)"
        );
    }

    #[test]
    fn stat_roundtrips_through_serde() {
        let stat = Stat {
            created_txid: 1,
            modified_txid: 5,
            version: 3,
            num_children: 2,
            data_length: 100,
            ephemeral: true,
        };
        let json = serde_json::to_string(&stat).unwrap();
        let back: Stat = serde_json::from_str(&json).unwrap();
        assert_eq!(stat, back);
    }
}
