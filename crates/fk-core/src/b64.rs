//! Minimal base64 (RFC 4648, with padding).
//!
//! The paper's client library transfers node payloads base64-encoded
//! through the cloud queue (§5.3.2 measures `set_data` "with
//! base64-encoded data of different sizes"), so we do the same — it also
//! sizes the queue messages the way the cost model expects.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a') as u32 + 26),
        b'0'..=b'9' => Some((c - b'0') as u32 + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes base64 back to bytes; `None` on malformed input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return None;
        }
        let mut triple: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if i < chunk.len() - pad {
                    return None; // padding only at the end
                }
                0
            } else {
                decode_char(c)?
            };
            triple |= v << (18 - 6 * i);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_known_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), b"");
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode("a").is_none());
        assert!(decode("ab=c").is_none());
        assert!(decode("a!==").is_none());
        assert!(decode("====").is_none());
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_various_lengths() {
        for len in 0..50 {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }
}
