//! The FaaSKeeper client library (§3.5).
//!
//! Reads go *directly* to cloud storage — no server, no function — which
//! is what makes reads cheap (Cost_R = R_S3(s), §5.3.4). Writes are
//! submitted to the session's FIFO queue and answered by a push
//! notification from the leader. Because reads and writes travel
//! different paths, the client re-creates ZooKeeper's session ordering
//! itself: two background threads (request sender, response handler),
//! an MRD (most-recent-data) timestamp, and the epoch
//! stall — a read whose node carries epoch marks for one of this client's
//! undelivered watches blocks until those notifications arrive (Z4,
//! Appendix B).
//!
//! Reads first consult a session-local, watermark-validated cache
//! ([`crate::read_cache`]): a valid entry answers without any storage
//! round trip, concurrent reads of one cold path coalesce into a single
//! fetch, and the response-handler thread evicts paths named by write
//! results and watch events as they arrive.

use crate::api::{CreateMode, FkError, FkResult, Stat, WatchEvent, WatchKind};
use crate::consistency::{HEvent, HistoryRecorder};
use crate::messages::{ClientNotification, ClientRequest, Payload, WriteOp, WriteResultData};
use crate::notify::ClientBus;
use crate::path as zkpath;
use crate::read_cache::{CacheStats, ReadCache, ReadCacheConfig};
use crate::system_store::SystemStore;
use crate::user_store::{NodeRecord, UserStore};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use fk_cloud::metering::Meter;
use fk_cloud::objectstore::ObjectStore;
use fk_cloud::ops::Op;
use fk_cloud::queue::Queue;
use fk_cloud::trace::Ctx;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// Session identifier (unique per client).
    pub session_id: String,
    /// How long API calls wait for results.
    pub timeout: Duration,
    /// Payloads whose on-the-wire size exceeds this are staged through
    /// the temporary-object bucket instead of the queue (§4.4). The
    /// binary queue frame carries raw bytes, so this compares the
    /// payload's actual length — not a base64-inflated form.
    pub stage_threshold: usize,
    /// Optional consistency-history sink (tests).
    pub recorder: Option<HistoryRecorder>,
    /// Read-cache bounds. `None` means "unset": a deployment's
    /// `connect_with` fills in its default, and a bare `FkClient::connect`
    /// runs uncached. An explicit `Some` — including an explicitly
    /// *disabled* config — always wins, so a test can pin an uncached
    /// control client against a cache-enabled deployment.
    pub read_cache: Option<ReadCacheConfig>,
    /// Usage meter the read cache reports hit/miss counters to (wired by
    /// [`crate::deploy::Deployment::connect_with`]).
    pub cache_meter: Option<Meter>,
}

impl ClientConfig {
    /// Defaults: 30 s timeout, 192 kB staging threshold (raw payload
    /// bytes; leaves 64 kB of headroom for the rest of the record under
    /// the 256 kB SQS message cap).
    pub fn new(session_id: impl Into<String>) -> Self {
        ClientConfig {
            session_id: session_id.into(),
            timeout: Duration::from_secs(30),
            stage_threshold: 192 * 1024,
            recorder: None,
            read_cache: None,
            cache_meter: None,
        }
    }

    /// Builder: attach a consistency-history recorder.
    pub fn with_recorder(mut self, recorder: HistoryRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builder: pin the client read cache to the given bounds (an
    /// explicitly disabled config stays disabled even when the
    /// deployment enables caching by default).
    pub fn with_read_cache(mut self, cache: ReadCacheConfig) -> Self {
        self.read_cache = Some(cache);
        self
    }

    /// Builder: report cache hit/miss counters to a usage meter.
    pub fn with_cache_meter(mut self, meter: Meter) -> Self {
        self.cache_meter = Some(meter);
        self
    }
}

/// `(result, txid)` delivered to a caller blocked on a write.
type WriteOutcome = (Result<WriteResultData, FkError>, u64);

struct Shared {
    session_id: String,
    /// Callers blocked on write results, by request id.
    pending: Mutex<HashMap<u64, Sender<WriteOutcome>>>,
    /// Watch ids this client registered.
    my_watches: Mutex<HashSet<u64>>,
    /// Watch ids whose notifications have been delivered to this client.
    delivered: Mutex<HashSet<u64>>,
    delivered_cv: Condvar,
    /// Most-recent-data timestamp: highest txid observed.
    mrd: AtomicU64,
    closed: AtomicBool,
}

/// A connected FaaSKeeper client session.
pub struct FkClient {
    shared: Arc<Shared>,
    config: ClientConfig,
    ctx: Ctx,
    system: SystemStore,
    user_store: Arc<dyn UserStore>,
    staging: ObjectStore,
    sender_tx: Sender<ClientRequest>,
    events_rx: Receiver<WatchEvent>,
    next_request: AtomicU64,
    cache: Arc<ReadCache>,
    threads: Vec<std::thread::JoinHandle<()>>,
    bus: ClientBus,
    /// Heartbeat responsiveness flag (tests flip it to simulate death).
    responsive: Arc<AtomicBool>,
}

impl FkClient {
    /// Connects a new session: registers it in system storage and on the
    /// notification bus, then starts the three background threads.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        config: ClientConfig,
        ctx: Ctx,
        system: SystemStore,
        user_store: Arc<dyn UserStore>,
        staging: ObjectStore,
        write_queue: Queue,
        bus: ClientBus,
    ) -> FkResult<Self> {
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_millis() as i64;
        system
            .register_session(&ctx, &config.session_id, now_ms)
            .map_err(|e| FkError::SystemError {
                detail: e.to_string(),
            })?;
        let (notifications, responsive) = bus.register(&config.session_id);

        let mut cache = ReadCache::new(config.read_cache.unwrap_or_default());
        if let Some(meter) = &config.cache_meter {
            cache = cache.with_meter(meter.clone());
        }
        let cache = Arc::new(cache);

        let shared = Arc::new(Shared {
            session_id: config.session_id.clone(),
            pending: Mutex::new(HashMap::new()),
            my_watches: Mutex::new(HashSet::new()),
            delivered: Mutex::new(HashSet::new()),
            delivered_cv: Condvar::new(),
            mrd: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });

        // Thread 1: request sender — preserves submission order into the
        // session's FIFO queue group.
        let (sender_tx, sender_rx) = unbounded::<ClientRequest>();
        let send_shared = Arc::clone(&shared);
        let send_queue = write_queue.clone();
        let send_ctx = ctx.fork();
        let sender = std::thread::spawn(move || {
            while let Ok(request) = sender_rx.recv() {
                let body = request.encode();
                if let Err(e) = send_queue.send(&send_ctx, &request.session_id, body) {
                    if let Some(tx) = send_shared.pending.lock().remove(&request.request_id) {
                        let _ = tx.send((
                            Err(FkError::SystemError {
                                detail: e.to_string(),
                            }),
                            0,
                        ));
                    }
                }
            }
        });

        // Watch events flow to the application in arrival order. With a
        // single leader, arrival order equals txid order; with a
        // multi-leader tier, events for *unrelated* paths may interleave
        // across shard groups (per-path and per-session order still hold
        // — the Z4 stall works off the delivered-id set, not this
        // stream's global order), so no re-ordering stage exists between
        // the response handler and the application.
        let (events_tx, events_rx) = unbounded::<WatchEvent>();

        // Thread 2: response handler — completes pending writes, records
        // delivered watches, maintains the MRD timestamp.
        let resp_shared = Arc::clone(&shared);
        let resp_recorder = config.recorder.clone();
        let resp_session = config.session_id.clone();
        let resp_cache = Arc::clone(&cache);
        let responder = std::thread::spawn(move || {
            while let Ok(notification) = notifications.recv() {
                match notification {
                    ClientNotification::WriteResult {
                        request_id,
                        result,
                        txid,
                    } => {
                        // Evict the written path *before* the MRD bump:
                        // a racing reader either misses the entry or
                        // fails the watermark check — never both stale
                        // and valid. (The watermark rule alone already
                        // guarantees correctness; see `read_cache`.)
                        if let Ok(data) = &result {
                            if let Some(path) = data.invalidates() {
                                resp_cache.invalidate(path);
                            }
                        }
                        if txid > 0 {
                            resp_shared.mrd.fetch_max(txid, Ordering::SeqCst);
                        }
                        if let Some(tx) = resp_shared.pending.lock().remove(&request_id) {
                            let _ = tx.send((result, txid));
                        }
                    }
                    ClientNotification::Watch(event) => {
                        // The notification stream doubles as the cache
                        // invalidation stream: the event names exactly
                        // the path whose cached (or cached-absent) state
                        // it obsoletes.
                        resp_cache.invalidate(&event.path);
                        // Record the delivery *before* unblocking stalled
                        // readers: marking the id delivered wakes reads
                        // waiting in `stall_for_epoch`, so the delivery
                        // must already precede them in the recorded
                        // history (Z4's linearization point).
                        if let Some(rec) = &resp_recorder {
                            rec.record(HEvent::WatchDelivered {
                                session: resp_session.clone(),
                                watch_id: event.watch_id,
                                txid: event.txid,
                            });
                        }
                        resp_shared.mrd.fetch_max(event.txid, Ordering::SeqCst);
                        resp_shared.delivered.lock().insert(event.watch_id);
                        resp_shared.delivered_cv.notify_all();
                        let _ = events_tx.send(event);
                    }
                    ClientNotification::Ping { .. } => {
                        // Liveness is answered via the bus's responsive
                        // flag; nothing to do here.
                    }
                }
            }
        });

        Ok(FkClient {
            shared,
            config,
            ctx,
            system,
            user_store,
            staging,
            sender_tx,
            events_rx,
            next_request: AtomicU64::new(1),
            cache,
            threads: vec![sender, responder],
            bus,
            responsive,
        })
    }

    /// The session id.
    pub fn session_id(&self) -> &str {
        &self.shared.session_id
    }

    /// Virtual time accumulated by this client's context.
    pub fn elapsed(&self) -> Duration {
        self.ctx.now()
    }

    /// The client's trace context.
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// Stream of watch events, in delivery order.
    pub fn watch_events(&self) -> &Receiver<WatchEvent> {
        &self.events_rx
    }

    /// The heartbeat responsiveness flag (simulate client death by
    /// storing `false`).
    pub fn responsive_flag(&self) -> &Arc<AtomicBool> {
        &self.responsive
    }

    /// Most-recent-data timestamp observed so far.
    pub fn mrd(&self) -> u64 {
        self.shared.mrd.load(Ordering::SeqCst)
    }

    /// Watch instance ids this client registered (for Z4 validation).
    pub fn my_watch_ids(&self) -> HashSet<u64> {
        self.shared.my_watches.lock().clone()
    }

    /// Read-cache counters (hits, misses, coalesced round trips).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The client's read cache.
    pub fn read_cache(&self) -> &Arc<ReadCache> {
        &self.cache
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    fn make_payload(&self, data: &[u8]) -> FkResult<Payload> {
        self.ctx.charge(Op::ClientWork, data.len());
        // The binary queue frame carries raw bytes, so the staging
        // threshold compares the payload's actual length (the old base64
        // encoding paid the comparison on inflated bytes). Staged
        // payloads never materialize an inline copy.
        if data.len() > self.config.stage_threshold {
            let key = format!(
                "staging/{}/{}",
                self.shared.session_id,
                self.next_request.load(Ordering::SeqCst)
            );
            self.staging
                .put(&self.ctx, &key, Bytes::from(data.to_vec()))
                .map_err(|e| FkError::SystemError {
                    detail: e.to_string(),
                })?;
            Ok(Payload::Staged {
                key,
                len: data.len(),
            })
        } else {
            Ok(Payload::inline(data))
        }
    }

    fn submit(&self, op: WriteOp) -> FkResult<(WriteResultData, u64)> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(FkError::SessionExpired);
        }
        let request_id = self.next_request.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(request_id, tx);
        let request = ClientRequest {
            session_id: self.shared.session_id.clone(),
            request_id,
            op,
        };
        if let Some(rec) = &self.config.recorder {
            rec.record(HEvent::WriteSubmitted {
                session: self.shared.session_id.clone(),
                request_id,
                path: request.op.path().to_owned(),
            });
        }
        self.sender_tx
            .send(request)
            .map_err(|_| FkError::SessionExpired)?;
        let outcome = match rx.recv_timeout(self.config.timeout) {
            Ok((Ok(data), txid)) => {
                self.shared.mrd.fetch_max(txid, Ordering::SeqCst);
                Ok((data, txid))
            }
            Ok((Err(err), _)) => Err(err),
            Err(_) => {
                self.shared.pending.lock().remove(&request_id);
                Err(FkError::Timeout)
            }
        };
        if let Some(rec) = &self.config.recorder {
            match &outcome {
                Ok((_, txid)) => rec.record(HEvent::WriteCommitted {
                    session: self.shared.session_id.clone(),
                    request_id,
                    txid: *txid,
                }),
                Err(_) => rec.record(HEvent::WriteFailed {
                    session: self.shared.session_id.clone(),
                    request_id,
                }),
            }
        }
        outcome
    }

    /// Creates a node; returns the final path (sequential creates return
    /// the generated name).
    pub fn create(&self, path: &str, data: &[u8], mode: CreateMode) -> FkResult<String> {
        zkpath::validate(path)?;
        let payload = self.make_payload(data)?;
        let (result, _) = self.submit(WriteOp::Create {
            path: path.to_owned(),
            payload,
            mode,
        })?;
        Ok(result.path)
    }

    /// Replaces a node's data; `expected_version = -1` is unconditional.
    pub fn set_data(&self, path: &str, data: &[u8], expected_version: i32) -> FkResult<Stat> {
        zkpath::validate(path)?;
        let payload = self.make_payload(data)?;
        let (result, _) = self.submit(WriteOp::SetData {
            path: path.to_owned(),
            payload,
            expected_version,
        })?;
        Ok(result.stat)
    }

    /// Deletes a node; `expected_version = -1` is unconditional.
    pub fn delete(&self, path: &str, expected_version: i32) -> FkResult<()> {
        zkpath::validate(path)?;
        self.submit(WriteOp::Delete {
            path: path.to_owned(),
            expected_version,
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read path (direct storage access)
    // ------------------------------------------------------------------

    /// Reads a node through the read cache: a valid cached entry (see
    /// `read_cache` module docs for the watermark rule) costs no storage
    /// round trip, concurrent reads of one cold path coalesce into a
    /// single fetch, and a confirmed-absent path can be answered from a
    /// negative entry. The Z4 epoch stall and the history recording run
    /// on *every* serve path — hit, fetch or coalesced — so a cache hit
    /// is observationally a legal storage read.
    ///
    /// `fresh` forces a storage read that bypasses the cache entry *and*
    /// any in-progress flight (refreshing the entry with the result).
    /// Watch-arming reads must be fresh: the registration promises to
    /// report every change after the returned version, so the read has
    /// to postdate the registration — a hit could serve a version from
    /// before it, and a change landing in between would neither be
    /// returned nor ever fire the watch.
    fn read_record(&self, path: &str, fresh: bool) -> FkResult<Option<Arc<NodeRecord>>> {
        let mrd = self.shared.mrd.load(Ordering::SeqCst);
        let fetch = || {
            self.user_store
                .read_node(&self.ctx, path)
                .map_err(|e| FkError::SystemError {
                    detail: e.to_string(),
                })
        };
        let read = if fresh {
            self.cache.fetch_fresh(path, mrd, fetch)?
        } else {
            self.cache
                .get_or_fetch(path, mrd, self.config.timeout, fetch)?
        };
        if let Some(rec) = &read.record {
            self.stall_for_epoch(rec)?;
            self.shared
                .mrd
                .fetch_max(rec.modified_txid, Ordering::SeqCst);
            // Client-library bookkeeping: deserialization, sorting results,
            // watch checks (1.9–2.5 % of read time, §5.3.1).
            self.ctx.charge(Op::ClientWork, rec.data.len());
            if let Some(recorder) = &self.config.recorder {
                recorder.record(HEvent::ReadReturned {
                    session: self.shared.session_id.clone(),
                    path: rec.path.clone(),
                    modified_txid: rec.modified_txid,
                    epoch_marks: (*rec.epoch_marks).clone(),
                });
            }
        }
        Ok(read.record)
    }

    /// Z4 stall: if this version was written while notifications for one
    /// of *our* watches were in flight, wait until they are delivered.
    fn stall_for_epoch(&self, record: &NodeRecord) -> FkResult<()> {
        if record.epoch_marks.is_empty()
            || record.modified_txid < self.shared.mrd.load(Ordering::SeqCst)
        {
            return Ok(());
        }
        let mine = self.shared.my_watches.lock();
        let relevant: Vec<u64> = record
            .epoch_marks
            .iter()
            .copied()
            .filter(|id| mine.contains(id))
            .collect();
        drop(mine);
        if relevant.is_empty() {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + self.config.timeout;
        let mut delivered = self.shared.delivered.lock();
        while !relevant.iter().all(|id| delivered.contains(id)) {
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero() {
                return Err(FkError::Timeout);
            }
            self.shared
                .delivered_cv
                .wait_for(&mut delivered, timeout.min(Duration::from_millis(50)));
        }
        Ok(())
    }

    fn register_watch(&self, path: &str, kind: WatchKind) -> FkResult<()> {
        let id = self
            .system
            .register_watch(&self.ctx, path, kind, &self.shared.session_id)
            .map_err(|e| FkError::SystemError {
                detail: e.to_string(),
            })?;
        self.shared.my_watches.lock().insert(id);
        Ok(())
    }

    /// Reads a node's data, optionally registering a data watch.
    pub fn get_data(&self, path: &str, watch: bool) -> FkResult<(Bytes, Stat)> {
        zkpath::validate(path)?;
        if watch {
            self.register_watch(path, WatchKind::Data)?;
        }
        match self.read_record(path, watch)? {
            Some(rec) => Ok((rec.data.clone(), rec.stat())),
            None => Err(FkError::NoNode),
        }
    }

    /// Checks node existence, optionally registering an exists watch
    /// (which fires on later creation).
    pub fn exists(&self, path: &str, watch: bool) -> FkResult<Option<Stat>> {
        zkpath::validate(path)?;
        if watch {
            self.register_watch(path, WatchKind::Exists)?;
        }
        Ok(self.read_record(path, watch)?.map(|rec| rec.stat()))
    }

    /// Lists a node's children, optionally registering a child watch.
    /// Served from the parent's metadata — no scan (§4.2).
    pub fn get_children(&self, path: &str, watch: bool) -> FkResult<Vec<String>> {
        zkpath::validate(path)?;
        if watch {
            self.register_watch(path, WatchKind::Children)?;
        }
        match self.read_record(path, watch)? {
            Some(rec) => {
                // The record's list is shared with the cache; sorting
                // works on the caller's own copy.
                let mut children = (*rec.children).clone();
                children.sort();
                Ok(children)
            }
            None => Err(FkError::NoNode),
        }
    }

    /// Closes the session: ephemeral nodes are deleted through the
    /// ordered write path, then the session is deregistered.
    pub fn close(mut self) -> FkResult<()> {
        let result = self.submit(WriteOp::CloseSession).map(|_| ());
        self.shared.closed.store(true, Ordering::SeqCst);
        self.bus.deregister(&self.shared.session_id);
        // Dropping the sender ends thread 1; deregistering ends thread 2.
        let (sender_tx, _) = unbounded();
        drop(std::mem::replace(&mut self.sender_tx, sender_tx));
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        result
    }
}

impl Drop for FkClient {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.bus.deregister(&self.shared.session_id);
    }
}
