//! The FaaSKeeper client library (§3.5).
//!
//! Reads go *directly* to cloud storage — no server, no function — which
//! is what makes reads cheap (Cost_R = R_S3(s), §5.3.4). Writes are
//! submitted to the session's FIFO queue and answered by a push
//! notification from the leader. Because reads and writes travel
//! different paths, the client re-creates ZooKeeper's session ordering
//! itself: two background threads (request sender, response handler),
//! an MRD (most-recent-data) timestamp, and the epoch
//! stall — a read whose node carries epoch marks for one of this client's
//! undelivered watches blocks until those notifications arrive (Z4,
//! Appendix B).
//!
//! # Pipelined submission (the handle-based API)
//!
//! Like ZooKeeper's real client, the API is **asynchronous at the
//! core**: every operation has a `submit_*` variant returning an
//! [`OpHandle`] that can be polled, waited on, or given a completion
//! callback, and the historical blocking methods are thin
//! `submit_*(...).wait()` wrappers. A session may keep any number of
//! writes in flight; they enter the session's FIFO queue in submission
//! order (one sender thread preserves it) and their completions are
//! released by the per-session pending-op table
//! (`fk_core::ops`'s pending-write table) **strictly in submission order**,
//! even when a multi-leader tier delivers the results out of order —
//! this is Z1's FIFO pipeline made observable at the API. Reads run on
//! a small worker pool and may overtake in-flight writes, which Z3
//! explicitly permits (they still re-run the Z4 epoch stall and the MRD
//! watermark rule on every serve).
//!
//! [`FkClient::multi`] submits a ZooKeeper-style atomic multi-op
//! transaction: all ops commit under one txid or none do, with per-op
//! results ([`crate::ops::OpResult`]) and partial-failure reporting at
//! the failing index.
//!
//! Reads first consult a session-local, watermark-validated cache
//! ([`crate::read_cache`]): a valid entry answers without any storage
//! round trip, concurrent reads of one cold path coalesce into a single
//! fetch, and the response-handler thread evicts paths named by write
//! results and watch events as they arrive.

use crate::api::{CreateMode, FkError, FkResult, Stat, WatchEvent, WatchEventType, WatchKind};
use crate::consistency::{HEvent, HistoryRecorder};
use crate::messages::{
    ClientNotification, ClientRequest, MultiOp, Payload, WriteOp, WriteResultData,
};
use crate::notify::ClientBus;
use crate::ops::{self, Op, OpHandle, OpResult, PendingWrites, RawWrite};
use crate::path as zkpath;
use crate::read_cache::{CacheStats, ReadCache, ReadCacheConfig};
use crate::system_store::SystemStore;
use crate::user_store::{NodeRecord, ScanEntry, UserStore};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fk_cloud::metering::Meter;
use fk_cloud::objectstore::ObjectStore;
use fk_cloud::ops::Op as CloudOp;
use fk_cloud::queue::Queue;
use fk_cloud::retry::{with_retry, RetryPolicy};
use fk_cloud::trace::Ctx;
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// Session identifier (unique per client).
    pub session_id: String,
    /// How long API calls wait for results.
    pub timeout: Duration,
    /// Payloads whose on-the-wire size exceeds this are staged through
    /// the temporary-object bucket instead of the queue (§4.4). The
    /// binary queue frame carries raw bytes, so this compares the
    /// payload's actual length — not a base64-inflated form.
    pub stage_threshold: usize,
    /// Worker threads executing submitted reads (`submit_get_data` /
    /// `submit_exists` / `submit_get_children`). Reads are independent
    /// storage round trips, so this bounds a session's read
    /// concurrency; writes need no workers (they ride the notification
    /// channel).
    pub read_workers: usize,
    /// Optional consistency-history sink (tests).
    pub recorder: Option<HistoryRecorder>,
    /// Read-cache bounds. `None` means "unset": a deployment's
    /// `connect_with` fills in its default, and a bare `FkClient::connect`
    /// runs uncached. An explicit `Some` — including an explicitly
    /// *disabled* config — always wins, so a test can pin an uncached
    /// control client against a cache-enabled deployment.
    pub read_cache: Option<ReadCacheConfig>,
    /// Usage meter the read cache reports hit/miss counters to (wired by
    /// [`crate::deploy::Deployment::connect_with`]).
    pub cache_meter: Option<Meter>,
    /// Shared regional read replica this session reads through (wired by
    /// [`crate::deploy::Deployment::connect_with`] when the deployment
    /// runs a replica tier). Consulted *between* the private cache and
    /// backing storage: a cache miss first asks the replica, and only a
    /// watermark-ineligible or non-resident path falls through to
    /// storage. `None` reads exactly as before the replica tier existed.
    pub replica: Option<Arc<crate::replica::ReadReplica>>,
}

impl ClientConfig {
    /// Defaults: 30 s timeout, 192 kB staging threshold (raw payload
    /// bytes; leaves 64 kB of headroom for the rest of the record under
    /// the 256 kB SQS message cap), 4 read workers.
    pub fn new(session_id: impl Into<String>) -> Self {
        ClientConfig {
            session_id: session_id.into(),
            timeout: Duration::from_secs(30),
            stage_threshold: 192 * 1024,
            read_workers: 4,
            recorder: None,
            read_cache: None,
            cache_meter: None,
            replica: None,
        }
    }

    /// Builder: attach a consistency-history recorder.
    pub fn with_recorder(mut self, recorder: HistoryRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builder: pin the client read cache to the given bounds (an
    /// explicitly disabled config stays disabled even when the
    /// deployment enables caching by default).
    pub fn with_read_cache(mut self, cache: ReadCacheConfig) -> Self {
        self.read_cache = Some(cache);
        self
    }

    /// Builder: report cache hit/miss counters to a usage meter.
    pub fn with_cache_meter(mut self, meter: Meter) -> Self {
        self.cache_meter = Some(meter);
        self
    }

    /// Builder: read through a shared regional read replica (tier two of
    /// the read path; see [`crate::replica`]).
    pub fn with_replica(mut self, replica: Arc<crate::replica::ReadReplica>) -> Self {
        self.replica = Some(replica);
        self
    }

    /// Builder: size of the read worker pool.
    pub fn with_read_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one read worker");
        self.read_workers = workers;
        self
    }
}

struct Shared {
    session_id: String,
    /// The per-session pending-op table: in-flight writes in submission
    /// order, completed in submission order (Z1).
    pending: Mutex<PendingWrites>,
    /// Watch ids this client registered.
    my_watches: Mutex<HashSet<u64>>,
    /// Watch ids whose notifications have been delivered to this client.
    delivered: Mutex<HashSet<u64>>,
    delivered_cv: Condvar,
    /// Most-recent-data timestamp: highest txid observed.
    mrd: AtomicU64,
    closed: AtomicBool,
    /// Optional consistency-history sink; write completions are recorded
    /// here at *release* time, so the recorded per-session order is the
    /// submission order (Z1's linearization of the pipeline).
    recorder: Option<HistoryRecorder>,
}

impl Shared {
    /// Routes one write result through the pending-op table and runs
    /// every completion it releases, recording history events in order.
    fn deliver_write(&self, request_id: u64, result: RawWrite) {
        let ready = self.pending.lock().settle(request_id, result);
        for (rid, completer, result) in ready {
            if let Some(rec) = &self.recorder {
                match &result {
                    Ok((_, txid)) => rec.record(HEvent::WriteCommitted {
                        session: self.session_id.clone(),
                        request_id: rid,
                        txid: *txid,
                    }),
                    Err(_) => rec.record(HEvent::WriteFailed {
                        session: self.session_id.clone(),
                        request_id: rid,
                    }),
                }
            }
            completer(result);
        }
    }
}

/// The read-path state shared with the read worker pool: everything a
/// worker needs to serve `get_data` / `exists` / `get_children`
/// off-thread with full Z3/Z4 semantics.
struct ReadCore {
    shared: Arc<Shared>,
    system: SystemStore,
    user_store: Arc<dyn UserStore>,
    cache: Arc<ReadCache>,
    /// Tier two of the read path: the shared regional replica, consulted
    /// on a private-cache miss before paying a storage round trip.
    replica: Option<Arc<crate::replica::ReadReplica>>,
    /// Meter retries on storage reads are reported to.
    meter: Meter,
    timeout: Duration,
}

impl ReadCore {
    /// Reads a node through the read cache: a valid cached entry (see
    /// `read_cache` module docs for the watermark rule) costs no storage
    /// round trip, concurrent reads of one cold path coalesce into a
    /// single fetch, and a confirmed-absent path can be answered from a
    /// negative entry. The Z4 epoch stall and the history recording run
    /// on *every* serve path — hit, fetch or coalesced — so a cache hit
    /// is observationally a legal storage read.
    ///
    /// `fresh` forces a storage read that bypasses the cache entry *and*
    /// any in-progress flight (refreshing the entry with the result).
    /// Watch-arming reads must be fresh: the registration promises to
    /// report every change after the returned version, so the read has
    /// to postdate the registration — a hit could serve a version from
    /// before it, and a change landing in between would neither be
    /// returned nor ever fire the watch.
    fn read_record(&self, ctx: &Ctx, path: &str, fresh: bool) -> FkResult<Option<Arc<NodeRecord>>> {
        let mrd = self.shared.mrd.load(Ordering::SeqCst);
        let fetch = || {
            // Tier two: on a private-cache miss, ask the shared regional
            // replica before paying a storage round trip. The replica
            // applies the same MRD watermark gate the cache does (see
            // `replica` module docs), so a hit is observationally a legal
            // storage read; a miss — non-resident, stale, or lagging —
            // falls through to storage exactly as before. Fresh
            // (watch-arming) reads never get here: they bypass both tiers.
            if !fresh {
                if let Some(replica) = &self.replica {
                    if let Some(record) = replica.serve(ctx, path, mrd) {
                        return Ok(Some((*record).clone()));
                    }
                }
            }
            // Reads are idempotent, so transient storage errors (object
            // store 503s, injected faults) are retried in place instead
            // of surfacing to the application.
            with_retry(
                ctx,
                &self.meter,
                &RetryPolicy::standard(),
                "client.read_node",
                || self.user_store.read_node(ctx, path),
            )
            .map_err(|e| FkError::SystemError {
                detail: e.to_string(),
            })
        };
        let read = if fresh {
            self.cache.fetch_fresh(path, mrd, fetch)?
        } else {
            self.cache.get_or_fetch(path, mrd, self.timeout, fetch)?
        };
        if let Some(rec) = &read.record {
            self.stall_for_epoch(rec)?;
            self.shared
                .mrd
                .fetch_max(rec.modified_txid, Ordering::SeqCst);
            // Client-library bookkeeping: deserialization, sorting results,
            // watch checks (1.9–2.5 % of read time, §5.3.1).
            ctx.charge(CloudOp::ClientWork, rec.data.len());
            if let Some(recorder) = &self.shared.recorder {
                recorder.record(HEvent::ReadReturned {
                    session: self.shared.session_id.clone(),
                    path: rec.path.clone(),
                    modified_txid: rec.modified_txid,
                    epoch_marks: (*rec.epoch_marks).clone(),
                });
            }
        }
        Ok(read.record)
    }

    /// Z4 stall: if this version was written while notifications for one
    /// of *our* watches were in flight, wait until they are delivered.
    ///
    /// No MRD-based early-out here: the MRD can run *ahead* of this
    /// record's txid through channels that say nothing about its marks —
    /// a heartbeat-piggybacked committed floor, or a later write on an
    /// unrelated path — so `modified_txid < mrd` does not imply the
    /// marked notifications were delivered. The delivered-id check below
    /// is the only sound gate (and it is O(1) when the record carries no
    /// marks, which is the common case).
    fn stall_for_epoch(&self, record: &NodeRecord) -> FkResult<()> {
        self.stall_for_marks(&record.epoch_marks)
    }

    /// The mark-slice form of [`Self::stall_for_epoch`] — subtree scans
    /// run it per returned entry.
    fn stall_for_marks(&self, marks: &[u64]) -> FkResult<()> {
        if marks.is_empty() {
            return Ok(());
        }
        let mine = self.shared.my_watches.lock();
        let relevant: Vec<u64> = marks
            .iter()
            .copied()
            .filter(|id| mine.contains(id))
            .collect();
        drop(mine);
        if relevant.is_empty() {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + self.timeout;
        let mut delivered = self.shared.delivered.lock();
        while !relevant.iter().all(|id| delivered.contains(id)) {
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero() {
                return Err(FkError::Timeout);
            }
            self.shared
                .delivered_cv
                .wait_for(&mut delivered, timeout.min(Duration::from_millis(50)));
        }
        Ok(())
    }

    /// Enumerates the subtree rooted at `root` with full Z3/Z4
    /// semantics: the shared regional replica is consulted first (its
    /// walk proves both freshness *and* completeness, see
    /// [`crate::replica::ReadReplica::serve_subtree`]); a miss falls
    /// through to one storage prefix scan. The private read cache is
    /// bypassed — it is per-path and cannot prove a subtree complete.
    /// Every returned entry runs the Z4 epoch stall and advances the
    /// MRD, exactly as if it had been point-read.
    fn scan_subtree_entries(&self, ctx: &Ctx, root: &str, fresh: bool) -> FkResult<Vec<ScanEntry>> {
        let mrd = self.shared.mrd.load(Ordering::SeqCst);
        let served: Option<Vec<ScanEntry>> = if fresh {
            // Watch-arming scans must postdate the registration, so they
            // bypass the replica tier just like fresh point reads.
            None
        } else {
            self.replica
                .as_ref()
                .and_then(|replica| replica.serve_subtree(ctx, root, mrd))
                .map(|records| {
                    records
                        .iter()
                        .map(|record| ScanEntry {
                            path: record.path.clone(),
                            data: record.data.clone(),
                            stat: record.stat(),
                            epoch_marks: Arc::clone(&record.epoch_marks),
                        })
                        .collect()
                })
        };
        let entries = match served {
            Some(entries) => entries,
            None => with_retry(
                ctx,
                &self.meter,
                &RetryPolicy::standard(),
                "client.scan_subtree",
                || self.user_store.scan_subtree(ctx, root),
            )
            .map_err(|e| FkError::SystemError {
                detail: e.to_string(),
            })?,
        };
        for entry in &entries {
            self.stall_for_marks(&entry.epoch_marks)?;
            self.shared
                .mrd
                .fetch_max(entry.stat.modified_txid, Ordering::SeqCst);
            ctx.charge(CloudOp::ClientWork, entry.data.len());
            if let Some(recorder) = &self.shared.recorder {
                recorder.record(HEvent::ReadReturned {
                    session: self.shared.session_id.clone(),
                    path: entry.path.clone(),
                    modified_txid: entry.stat.modified_txid,
                    epoch_marks: (*entry.epoch_marks).clone(),
                });
            }
        }
        Ok(entries)
    }

    fn register_watch(&self, ctx: &Ctx, path: &str, kind: WatchKind) -> FkResult<()> {
        // The fault point rolls before the registry update: a failed
        // attempt registered nothing, so a retry cannot double-arm.
        let id = with_retry(
            ctx,
            &self.meter,
            &RetryPolicy::standard(),
            "client.arm_watch",
            || {
                self.system
                    .register_watch(ctx, path, kind, &self.shared.session_id)
            },
        )
        .map_err(|e| FkError::SystemError {
            detail: e.to_string(),
        })?;
        self.shared.my_watches.lock().insert(id);
        Ok(())
    }
}

/// Fixed pool of read workers. Jobs are executed in submission order
/// per worker pick-up; independent reads overlap up to the pool width.
struct ReadPool {
    tx: Option<Sender<Box<dyn FnOnce() + Send>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ReadPool {
    fn new(workers: usize) -> Self {
        let (tx, rx) = unbounded::<Box<dyn FnOnce() + Send>>();
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx: Receiver<Box<dyn FnOnce() + Send>> = rx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
            })
            .collect();
        ReadPool {
            tx: Some(tx),
            workers,
        }
    }

    fn execute(&self, job: Box<dyn FnOnce() + Send>) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
    }

    /// Stops accepting jobs and joins the workers (in-flight jobs run to
    /// completion).
    fn shutdown(&mut self) {
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A connected FaaSKeeper client session.
pub struct FkClient {
    core: Arc<ReadCore>,
    config: ClientConfig,
    ctx: Ctx,
    staging: ObjectStore,
    sender_tx: Sender<ClientRequest>,
    events_rx: Receiver<WatchEvent>,
    next_request: AtomicU64,
    /// Staging-object key counter (distinct from request ids so pipelined
    /// submissions never collide on a staging key).
    staging_seq: AtomicU64,
    pool: Mutex<ReadPool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    bus: ClientBus,
    /// Heartbeat responsiveness flag (tests flip it to simulate death).
    responsive: Arc<AtomicBool>,
}

impl FkClient {
    /// Connects a new session: registers it in system storage and on the
    /// notification bus, then starts the background threads (request
    /// sender, response handler, read workers).
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        config: ClientConfig,
        ctx: Ctx,
        system: SystemStore,
        user_store: Arc<dyn UserStore>,
        staging: ObjectStore,
        write_queue: Queue,
        bus: ClientBus,
    ) -> FkResult<Self> {
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_millis() as i64;
        // Registration retries its legs internally — an outer retry would
        // replay the duplicate-session guard against its own first
        // attempt and misreport a transient fault as a duplicate.
        system
            .register_session(&ctx, &config.session_id, now_ms)
            .map_err(|e| FkError::SystemError {
                detail: e.to_string(),
            })?;
        let (notifications, responsive) = bus.register(&config.session_id);

        let mut cache = ReadCache::new(config.read_cache.unwrap_or_default());
        if let Some(meter) = &config.cache_meter {
            cache = cache.with_meter(meter.clone());
        }
        let cache = Arc::new(cache);

        let shared = Arc::new(Shared {
            session_id: config.session_id.clone(),
            pending: Mutex::new(PendingWrites::default()),
            my_watches: Mutex::new(HashSet::new()),
            delivered: Mutex::new(HashSet::new()),
            delivered_cv: Condvar::new(),
            mrd: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            recorder: config.recorder.clone(),
        });

        // Thread 1: request sender — preserves submission order into the
        // session's FIFO queue group (the write half of Z1's pipeline).
        // Pipelined submissions that pile up while a previous send is in
        // flight drain as one `SendMessageBatch` request (≤ 10 entries,
        // one round trip): billing stays per message, but the latency
        // amortizes and the queue still assigns consecutive sequence
        // numbers in submission order. An idle channel degenerates to the
        // old one-send-per-request behavior (the greedy drain finds
        // nothing to coalesce), so unpipelined callers are unchanged.
        let (sender_tx, sender_rx) = unbounded::<ClientRequest>();
        let send_shared = Arc::clone(&shared);
        let send_queue = write_queue.clone();
        let send_ctx = ctx.fork();
        let sender = std::thread::spawn(move || {
            const BATCH_LIMIT: usize = 10;
            while let Ok(first) = sender_rx.recv() {
                // Greedy drain: everything already queued behind `first`
                // (flushing on idle — never waiting for more).
                let mut requests = vec![first];
                while requests.len() < BATCH_LIMIT {
                    match sender_rx.try_recv() {
                        Ok(request) => requests.push(request),
                        Err(_) => break,
                    }
                }
                // All of this session's requests share its FIFO group.
                let session_id = requests[0].session_id.clone();
                let bodies: Vec<Bytes> = requests.iter().map(ClientRequest::encode).collect();
                // Transient send failures (throttling, injected faults)
                // are retried with backoff rather than failing the whole
                // pipeline on the first 503. Safe to repeat: the batch
                // lands whole or not at all (send_batch validates — and
                // rolls its fault point — before enqueuing anything), so
                // a failed attempt left no messages behind.
                let sent = with_retry(
                    &send_ctx,
                    send_queue.meter(),
                    &RetryPolicy::standard(),
                    "client.send_batch",
                    || send_queue.send_batch(&send_ctx, &session_id, bodies.clone()),
                );
                if let Err(e) = sent {
                    // Every member fails (all-or-nothing batch).
                    for request in &requests {
                        send_shared.deliver_write(
                            request.request_id,
                            Err(FkError::SystemError {
                                detail: e.to_string(),
                            }),
                        );
                    }
                }
            }
        });

        // Watch events flow to the application in arrival order. With a
        // single leader, arrival order equals txid order; with a
        // multi-leader tier, events for *unrelated* paths may interleave
        // across shard groups (per-path and per-session order still hold
        // — the Z4 stall works off the delivered-id set, not this
        // stream's global order), so no re-ordering stage exists between
        // the response handler and the application.
        let (events_tx, events_rx) = unbounded::<WatchEvent>();

        // Thread 2: response handler — feeds write results through the
        // pending-op table (which releases completions in submission
        // order), records delivered watches, maintains the MRD timestamp.
        let resp_shared = Arc::clone(&shared);
        let resp_cache = Arc::clone(&cache);
        let responder = std::thread::spawn(move || {
            while let Ok(notification) = notifications.recv() {
                match notification {
                    ClientNotification::WriteResult {
                        request_id,
                        result,
                        txid,
                    } => {
                        // Evict the written paths *before* the MRD bump:
                        // a racing reader either misses the entry or
                        // fails the watermark check — never both stale
                        // and valid. (The watermark rule alone already
                        // guarantees correctness; see `read_cache`.)
                        if let Ok(data) = &result {
                            for path in data.invalidates() {
                                resp_cache.invalidate(path);
                            }
                        }
                        if txid > 0 {
                            resp_shared.mrd.fetch_max(txid, Ordering::SeqCst);
                        }
                        resp_shared.deliver_write(request_id, result.map(|data| (data, txid)));
                    }
                    ClientNotification::Watch(event) => {
                        // The notification stream doubles as the cache
                        // maintenance stream. A children event that
                        // carries the full post-change list *patches* the
                        // resident entry in place (the delta names the
                        // complete new children set, so the entry stays
                        // servable without a refetch); every other event
                        // names exactly the path whose cached (or
                        // cached-absent) state it obsoletes.
                        match (&event.event_type, &event.children) {
                            (WatchEventType::NodeChildrenChanged, Some(children)) => {
                                resp_cache.apply_children(&event.path, children, event.txid);
                            }
                            // `SubtreeChanged` names only the watch root,
                            // not the changed descendant; invalidating the
                            // root plus the MRD bump below suffices — any
                            // cached descendant older than the event's
                            // txid now fails the watermark gate and falls
                            // through to storage on its next read.
                            _ => resp_cache.invalidate(&event.path),
                        }
                        // Record the delivery *before* unblocking stalled
                        // readers: marking the id delivered wakes reads
                        // waiting in `stall_for_epoch`, so the delivery
                        // must already precede them in the recorded
                        // history (Z4's linearization point).
                        if let Some(rec) = &resp_shared.recorder {
                            rec.record(HEvent::WatchDelivered {
                                session: resp_shared.session_id.clone(),
                                watch_id: event.watch_id,
                                txid: event.txid,
                            });
                        }
                        resp_shared.mrd.fetch_max(event.txid, Ordering::SeqCst);
                        resp_shared.delivered.lock().insert(event.watch_id);
                        resp_shared.delivered_cv.notify_all();
                        let _ = events_tx.send(event);
                    }
                    ClientNotification::Ping { committed, .. } => {
                        // Liveness is answered via the bus's responsive
                        // flag; the payload advances the MRD with the
                        // leaders' committed floor, so an *idle* session's
                        // cache and replica hits stay watermark-eligible.
                        // Sound because the floor only covers txids whose
                        // epochs finished distribution: anything the
                        // session later reads at or below it is already
                        // durable in every region.
                        if committed > 0 {
                            resp_shared.mrd.fetch_max(committed, Ordering::SeqCst);
                        }
                    }
                }
            }
        });

        let core = Arc::new(ReadCore {
            shared,
            system,
            user_store,
            cache,
            replica: config.replica.clone(),
            meter: staging.meter().clone(),
            timeout: config.timeout,
        });
        let pool = Mutex::new(ReadPool::new(config.read_workers));

        Ok(FkClient {
            core,
            config,
            ctx,
            staging,
            sender_tx,
            events_rx,
            next_request: AtomicU64::new(1),
            staging_seq: AtomicU64::new(1),
            pool,
            threads: vec![sender, responder],
            bus,
            responsive,
        })
    }

    /// The session id.
    pub fn session_id(&self) -> &str {
        &self.core.shared.session_id
    }

    /// Virtual time accumulated by this client's context.
    pub fn elapsed(&self) -> Duration {
        self.ctx.now()
    }

    /// The client's trace context.
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// Stream of watch events, in delivery order.
    pub fn watch_events(&self) -> &Receiver<WatchEvent> {
        &self.events_rx
    }

    /// The heartbeat responsiveness flag (simulate client death by
    /// storing `false`).
    pub fn responsive_flag(&self) -> &Arc<AtomicBool> {
        &self.responsive
    }

    /// Most-recent-data timestamp observed so far.
    pub fn mrd(&self) -> u64 {
        self.core.shared.mrd.load(Ordering::SeqCst)
    }

    /// Watch instance ids this client registered (for Z4 validation).
    pub fn my_watch_ids(&self) -> HashSet<u64> {
        self.core.shared.my_watches.lock().clone()
    }

    /// Read-cache counters (hits, misses, coalesced round trips).
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// The client's read cache.
    pub fn read_cache(&self) -> &Arc<ReadCache> {
        &self.core.cache
    }

    /// Number of writes currently in flight (submitted, not completed).
    pub fn in_flight(&self) -> usize {
        self.core.shared.pending.lock().len()
    }

    /// How many write results *arrived* ahead of an uncompleted
    /// predecessor and were re-ordered by the pending-op table. Non-zero
    /// values are expected under a multi-leader tier; the completions a
    /// caller observes are in submission order regardless.
    pub fn reordered_results(&self) -> u64 {
        self.core.shared.pending.lock().reordered()
    }

    // ------------------------------------------------------------------
    // Write path (pipelined submission)
    // ------------------------------------------------------------------

    fn make_payload(&self, data: &[u8]) -> FkResult<Payload> {
        self.ctx.charge(CloudOp::ClientWork, data.len());
        // The binary queue frame carries raw bytes, so the staging
        // threshold compares the payload's actual length (the old base64
        // encoding paid the comparison on inflated bytes). Staged
        // payloads never materialize an inline copy.
        if data.len() > self.config.stage_threshold {
            let key = format!(
                "staging/{}/{}",
                self.core.shared.session_id,
                self.staging_seq.fetch_add(1, Ordering::SeqCst)
            );
            // A staged PUT is a whole-object replace to a fresh key:
            // repeating it after a transient failure is idempotent.
            let payload = Bytes::from(data.to_vec());
            with_retry(
                &self.ctx,
                self.staging.meter(),
                &RetryPolicy::standard(),
                "client.stage_put",
                || self.staging.put(&self.ctx, &key, payload.clone()),
            )
            .map_err(|e| FkError::SystemError {
                detail: e.to_string(),
            })?;
            Ok(Payload::Staged {
                key,
                len: data.len(),
            })
        } else {
            Ok(Payload::inline(data))
        }
    }

    /// Submits one write to the session pipeline: registers it in the
    /// pending-op table (which will release its completion in submission
    /// order) and hands it to the sender thread. `map` shapes the raw
    /// `(result, txid)` into the typed handle value.
    ///
    /// Id allocation, the table push and the channel send happen under
    /// **one lock**: `FkClient` is `&self`-shared across threads, and an
    /// interleaving where thread B's later-allocated id reaches the
    /// sender channel before thread A's earlier one would make wire
    /// order diverge from pending-table order — the server would then
    /// assign txids against one order while completions release in the
    /// other, breaking the txid-monotone Z1 contract.
    fn submit_write<T, F>(&self, op: WriteOp, map: F) -> FkResult<OpHandle<T>>
    where
        T: Clone + Send + Sync + 'static,
        F: FnOnce(WriteResultData, u64) -> T + Send + 'static,
    {
        if self.core.shared.closed.load(Ordering::SeqCst) {
            return Err(FkError::SessionExpired);
        }
        let (handle, completer) = ops::handle_pair(self.config.timeout);
        let send_failed = {
            let mut pending = self.core.shared.pending.lock();
            let request_id = self.next_request.fetch_add(1, Ordering::SeqCst);
            pending.push(
                request_id,
                Box::new(move |raw: RawWrite| {
                    completer.complete(raw.map(|(data, txid)| map(data, txid)));
                }),
            );
            let request = ClientRequest {
                session_id: self.core.shared.session_id.clone(),
                request_id,
                op,
            };
            if let Some(rec) = &self.core.shared.recorder {
                rec.record(HEvent::WriteSubmitted {
                    session: self.core.shared.session_id.clone(),
                    request_id,
                    path: request.op.path().to_owned(),
                });
            }
            // Non-blocking (unbounded channel), so holding the table
            // lock across it is cheap and gives wire order = table order.
            self.sender_tx.send(request).is_err().then_some(request_id)
        };
        if let Some(request_id) = send_failed {
            self.core
                .shared
                .deliver_write(request_id, Err(FkError::SessionExpired));
        }
        Ok(handle)
    }

    /// Submits a create; the handle resolves to the final path
    /// (sequential creates return the generated name).
    pub fn submit_create(
        &self,
        path: &str,
        data: &[u8],
        mode: CreateMode,
    ) -> FkResult<OpHandle<String>> {
        zkpath::validate(path)?;
        let payload = self.make_payload(data)?;
        self.submit_write(
            WriteOp::Create {
                path: path.to_owned(),
                payload,
                mode,
            },
            |result, _| result.path,
        )
    }

    /// Submits a data replacement; `expected_version = -1` is
    /// unconditional. The handle resolves to the post-write stat.
    pub fn submit_set_data(
        &self,
        path: &str,
        data: &[u8],
        expected_version: i32,
    ) -> FkResult<OpHandle<Stat>> {
        zkpath::validate(path)?;
        let payload = self.make_payload(data)?;
        self.submit_write(
            WriteOp::SetData {
                path: path.to_owned(),
                payload,
                expected_version,
            },
            |result, _| result.stat,
        )
    }

    /// Submits a delete; `expected_version = -1` is unconditional.
    pub fn submit_delete(&self, path: &str, expected_version: i32) -> FkResult<OpHandle<()>> {
        zkpath::validate(path)?;
        self.submit_write(
            WriteOp::Delete {
                path: path.to_owned(),
                expected_version,
            },
            |_, _| (),
        )
    }

    /// Submits a ZooKeeper-style `multi`: every op commits under one
    /// transaction id or none does. The handle resolves to per-op
    /// results in op order; a failed multi resolves to
    /// [`FkError::MultiFailed`] naming the failing index (expand it with
    /// [`crate::ops::multi_error_results`] for the ZooKeeper-shaped
    /// per-op error vector).
    pub fn submit_multi(&self, ops: Vec<Op>) -> FkResult<OpHandle<Vec<OpResult>>> {
        if ops.is_empty() {
            return Ok(ops::ready(Ok(Vec::new())));
        }
        let mut wire = Vec::with_capacity(ops.len());
        for op in &ops {
            zkpath::validate(op.path())?;
        }
        for op in ops {
            wire.push(match op {
                Op::Create { path, data, mode } => MultiOp::Create {
                    path,
                    payload: self.make_payload(&data)?,
                    mode,
                },
                Op::SetData {
                    path,
                    data,
                    expected_version,
                } => MultiOp::SetData {
                    path,
                    payload: self.make_payload(&data)?,
                    expected_version,
                },
                Op::Delete {
                    path,
                    expected_version,
                } => MultiOp::Delete {
                    path,
                    expected_version,
                },
                Op::Check {
                    path,
                    expected_version,
                } => MultiOp::Check {
                    path,
                    expected_version,
                },
            });
        }
        self.submit_write(WriteOp::Multi { ops: wire }, |result, _| {
            result
                .op_results
                .into_iter()
                .map(ops::outcome_to_result)
                .collect()
        })
    }

    /// Creates a node; returns the final path (sequential creates return
    /// the generated name). Blocking wrapper over [`Self::submit_create`].
    pub fn create(&self, path: &str, data: &[u8], mode: CreateMode) -> FkResult<String> {
        self.submit_create(path, data, mode)?.wait()
    }

    /// Replaces a node's data; `expected_version = -1` is unconditional.
    /// Blocking wrapper over [`Self::submit_set_data`].
    pub fn set_data(&self, path: &str, data: &[u8], expected_version: i32) -> FkResult<Stat> {
        self.submit_set_data(path, data, expected_version)?.wait()
    }

    /// Deletes a node; `expected_version = -1` is unconditional.
    /// Blocking wrapper over [`Self::submit_delete`].
    pub fn delete(&self, path: &str, expected_version: i32) -> FkResult<()> {
        self.submit_delete(path, expected_version)?.wait()
    }

    /// Executes a `multi` transaction and waits for its per-op results.
    /// Blocking wrapper over [`Self::submit_multi`].
    pub fn multi(&self, ops: Vec<Op>) -> FkResult<Vec<OpResult>> {
        self.submit_multi(ops)?.wait()
    }

    // ------------------------------------------------------------------
    // Read path (direct storage access, off-thread)
    // ------------------------------------------------------------------

    /// Runs a read closure on the worker pool, on a virtual-time fork of
    /// the client context. The fork is stored in the handle; blocking
    /// wrappers join it back so sequential callers observe the same
    /// virtual latency as the pre-handle API.
    fn submit_read<T, F>(&self, run: F) -> OpHandle<T>
    where
        T: Clone + Send + Sync + 'static,
        F: FnOnce(&Ctx) -> FkResult<T> + Send + 'static,
    {
        let (handle, completer) = ops::handle_pair(self.config.timeout);
        let fork = self.ctx.fork();
        self.pool.lock().execute(Box::new(move || {
            let result = run(&fork);
            completer.complete_on(fork, result);
        }));
        handle
    }

    /// Waits on a read handle and merges its virtual-time fork into the
    /// client clock (the blocking-wrapper contract).
    fn wait_read<T: Clone>(&self, handle: OpHandle<T>) -> FkResult<T> {
        let result = handle.wait();
        if let Some(fork) = handle.take_fork() {
            self.ctx.join(std::slice::from_ref(&fork));
        }
        result
    }

    /// Submits a data read, optionally registering a data watch. Reads
    /// may overtake in-flight writes (Z3 permits it); the worker still
    /// runs the Z4 epoch stall and the MRD watermark rule.
    pub fn submit_get_data(&self, path: &str, watch: bool) -> FkResult<OpHandle<(Bytes, Stat)>> {
        zkpath::validate(path)?;
        let core = Arc::clone(&self.core);
        let path = path.to_owned();
        Ok(self.submit_read(move |ctx| {
            if watch {
                core.register_watch(ctx, &path, WatchKind::Data)?;
            }
            match core.read_record(ctx, &path, watch)? {
                Some(rec) => Ok((rec.data.clone(), rec.stat())),
                None => Err(FkError::NoNode),
            }
        }))
    }

    /// Submits an existence check, optionally registering an exists
    /// watch (which fires on later creation).
    pub fn submit_exists(&self, path: &str, watch: bool) -> FkResult<OpHandle<Option<Stat>>> {
        zkpath::validate(path)?;
        let core = Arc::clone(&self.core);
        let path = path.to_owned();
        Ok(self.submit_read(move |ctx| {
            if watch {
                core.register_watch(ctx, &path, WatchKind::Exists)?;
            }
            Ok(core.read_record(ctx, &path, watch)?.map(|rec| rec.stat()))
        }))
    }

    /// Submits a children listing, optionally registering a child watch.
    /// Served from the parent's metadata — no scan (§4.2).
    pub fn submit_get_children(&self, path: &str, watch: bool) -> FkResult<OpHandle<Vec<String>>> {
        zkpath::validate(path)?;
        let core = Arc::clone(&self.core);
        let path = path.to_owned();
        Ok(self.submit_read(move |ctx| {
            if watch {
                core.register_watch(ctx, &path, WatchKind::Children)?;
            }
            match core.read_record(ctx, &path, watch)? {
                Some(rec) => {
                    // The record's list is shared with the cache; sorting
                    // works on the caller's own copy.
                    let mut children = (*rec.children).clone();
                    children.sort();
                    Ok(children)
                }
                None => Err(FkError::NoNode),
            }
        }))
    }

    /// Submits a whole-subtree enumeration: the root node (if present)
    /// and every descendant, sorted by path, as [`ScanEntry`] summaries.
    /// One storage prefix scan (or one replica walk) instead of 1 + N
    /// point reads — the read path stays function-free even for bulk
    /// access. With `watch`, registers a one-shot subtree watch
    /// ([`WatchKind::Subtree`]) that fires on any later change in the
    /// subtree; the arming scan is fresh (bypasses the replica tier).
    pub fn submit_get_subtree(
        &self,
        path: &str,
        watch: bool,
    ) -> FkResult<OpHandle<Vec<ScanEntry>>> {
        zkpath::validate(path)?;
        let core = Arc::clone(&self.core);
        let path = path.to_owned();
        Ok(self.submit_read(move |ctx| {
            if watch {
                core.register_watch(ctx, &path, WatchKind::Subtree)?;
            }
            core.scan_subtree_entries(ctx, &path, watch)
        }))
    }

    /// Submits a children listing that also returns each child's data
    /// and `Stat` — one scan request instead of `get_children` plus one
    /// point read per child. Errors with [`FkError::NoNode`] when `path`
    /// itself is absent. With `watch`, registers a child watch exactly
    /// like [`Self::submit_get_children`].
    pub fn submit_get_children_with_data(
        &self,
        path: &str,
        watch: bool,
    ) -> FkResult<OpHandle<Vec<ScanEntry>>> {
        zkpath::validate(path)?;
        let core = Arc::clone(&self.core);
        let path = path.to_owned();
        Ok(self.submit_read(move |ctx| {
            if watch {
                core.register_watch(ctx, &path, WatchKind::Children)?;
            }
            let entries = core.scan_subtree_entries(ctx, &path, watch)?;
            if entries.first().map(|e| e.path != path).unwrap_or(true) {
                return Err(FkError::NoNode);
            }
            let depth = |p: &str| p.bytes().filter(|b| *b == b'/').count();
            let child_depth = if path == "/" { 1 } else { depth(&path) + 1 };
            Ok(entries
                .into_iter()
                .skip(1)
                .filter(|e| depth(&e.path) == child_depth)
                .collect())
        }))
    }

    /// Reads a node's data, optionally registering a data watch.
    /// Blocking wrapper over [`Self::submit_get_data`].
    pub fn get_data(&self, path: &str, watch: bool) -> FkResult<(Bytes, Stat)> {
        let handle = self.submit_get_data(path, watch)?;
        self.wait_read(handle)
    }

    /// Checks node existence, optionally registering an exists watch.
    /// Blocking wrapper over [`Self::submit_exists`].
    pub fn exists(&self, path: &str, watch: bool) -> FkResult<Option<Stat>> {
        let handle = self.submit_exists(path, watch)?;
        self.wait_read(handle)
    }

    /// Lists a node's children, optionally registering a child watch.
    /// Blocking wrapper over [`Self::submit_get_children`].
    pub fn get_children(&self, path: &str, watch: bool) -> FkResult<Vec<String>> {
        let handle = self.submit_get_children(path, watch)?;
        self.wait_read(handle)
    }

    /// Enumerates a whole subtree, optionally registering a subtree
    /// watch. Blocking wrapper over [`Self::submit_get_subtree`].
    pub fn get_subtree(&self, path: &str, watch: bool) -> FkResult<Vec<ScanEntry>> {
        let handle = self.submit_get_subtree(path, watch)?;
        self.wait_read(handle)
    }

    /// Lists children with their data and stats, optionally registering
    /// a child watch. Blocking wrapper over
    /// [`Self::submit_get_children_with_data`].
    pub fn get_children_with_data(&self, path: &str, watch: bool) -> FkResult<Vec<ScanEntry>> {
        let handle = self.submit_get_children_with_data(path, watch)?;
        self.wait_read(handle)
    }

    /// Closes the session: ephemeral nodes are deleted through the
    /// ordered write path, then the session is deregistered. Pending
    /// pipelined writes complete first (CloseSession sequences after
    /// them in the FIFO queue); outstanding handles that never received
    /// a result fail with `SessionExpired`.
    pub fn close(mut self) -> FkResult<()> {
        let result = self
            .submit_write(WriteOp::CloseSession, |_, _| ())
            .and_then(|handle| handle.wait());
        self.core.shared.closed.store(true, Ordering::SeqCst);
        self.bus.deregister(&self.core.shared.session_id);
        // Dropping the sender ends thread 1; deregistering ends thread 2.
        let (sender_tx, _) = unbounded();
        drop(std::mem::replace(&mut self.sender_tx, sender_tx));
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.pool.lock().shutdown();
        // Fail whatever is still in flight, in submission order.
        let stragglers = self
            .core
            .shared
            .pending
            .lock()
            .drain(FkError::SessionExpired);
        for (_, completer, result) in stragglers {
            completer(result);
        }
        result
    }
}

impl Drop for FkClient {
    fn drop(&mut self) {
        self.core.shared.closed.store(true, Ordering::SeqCst);
        self.bus.deregister(&self.core.shared.session_id);
    }
}
