//! Versioned, varint-framed binary codec for the hot-path records.
//!
//! Serverless billing rounds every storage write and queue message up to
//! fixed-size units, so encoded size is money (Baldini et al., "Serverless
//! Computing: Current Trends and Open Problems") — and FaaSKeeper's
//! dominant cost terms are exactly those per-request payload units
//! (FaaSKeeper §5.2). The seed encoding paid JSON field names plus a
//! base64-inflated data payload (~33 % on the bytes alone) on **every**
//! node read, node write, and queue message. This module replaces that
//! with a compact binary frame while keeping every old record readable:
//!
//! * **Self-describing frame** — `[0xFB, version, kind]` followed by the
//!   record body. `0xFB` can never begin a JSON document (JSON starts
//!   with whitespace, `{`, `[`, a digit, `-`, `"`, `t`, `f` or `n`), so
//!   [`is_binary`] classifies any stored byte string unambiguously and
//!   the decoders fall back to `serde_json` for legacy records: a store
//!   populated with JSON records mid-run keeps working with no flag day.
//! * **Varint framing** — unsigned integers are LEB128; signed integers
//!   are zigzag-mapped first. Strings, byte payloads and lists carry a
//!   varint length prefix; node payloads are **raw bytes**, never base64.
//! * **Coverage** — every serialization surface of the write/read path:
//!   [`NodeRecord`] (object/memory user-store backends and the staging
//!   of replicas), [`LeaderRecord`] and [`ClientRequest`] (queue message
//!   payloads), and [`crate::watch_fn::WatchTask`] (watch-function
//!   invocation payloads). System-storage records (node control items,
//!   `session:`/`seq:` marks, lock stamps) are *attribute-native* KV
//!   items — they are billed by item size, never serialized to JSON —
//!   so they need no codec; their write-request count is attacked by
//!   [`crate::system_store::SystemStore::advance_sessions_applied_batch`]
//!   instead.
//!
//! The decode direction is total: any truncated or corrupt frame returns
//! `None` rather than panicking, mirroring the `serde_json` error paths
//! it replaces.

use crate::api::{CreateMode, Stat, WatchEvent, WatchEventType};
use crate::messages::{
    ClientRequest, CommitItem, FiredWatch, LeaderRecord, MultiOp, MultiSub, OpOutcome, Payload,
    SerValue, SystemCommit, UserUpdate, WriteOp,
};
use crate::user_store::NodeRecord;
use bytes::Bytes;
use std::sync::Arc;

/// First byte of every binary frame. Never a legal first byte of JSON.
pub const MAGIC: u8 = 0xFB;

/// Current format version. Decoders reject newer versions (a rollback
/// reading records written by a newer deployment must not misparse them)
/// and accept older ones: version 2 added the `multi` surface — the
/// `Multi` client-request op and the leader record's `ops` sub-operation
/// list, which version-1 frames simply lack (decoded as empty); version
/// 3 added the optional children list on watch-task events (the
/// `get_children` delta caches patch in place), which older frames lack
/// (decoded as `None`); version 4 added the `SubtreeChanged` watch event
/// tag (recursive subtree watches) — a value-range extension, so older
/// frames decode unchanged and only frames actually carrying the new tag
/// are rejected by pre-4 decoders.
pub const VERSION: u8 = 4;

/// Record kinds carried in the frame header, so a frame is never decoded
/// as the wrong type even if keys get crossed.
mod kind {
    /// A [`super::NodeRecord`].
    pub const NODE: u8 = 1;
    /// A [`super::LeaderRecord`].
    pub const LEADER_RECORD: u8 = 2;
    /// A [`super::ClientRequest`].
    pub const CLIENT_REQUEST: u8 = 3;
    /// A [`crate::watch_fn::WatchTask`].
    pub const WATCH_TASK: u8 = 4;
    /// A checkpoint chunk (a batch of node frames) staged through the
    /// object store by [`crate::transfer`]. A new *kind*, not a new
    /// version: pre-existing decoders reject the kind byte cleanly.
    pub const CHECKPOINT_CHUNK: u8 = 5;
    /// A checkpoint manifest ([`crate::transfer::CheckpointManifest`]).
    pub const CHECKPOINT_MANIFEST: u8 = 6;
}

/// True if `bytes` is a binary frame (as opposed to a legacy JSON record).
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.first() == Some(&MAGIC)
}

// ----------------------------------------------------------------------
// Frame writer / reader
// ----------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8, capacity: usize) -> Self {
        let mut buf = Vec::with_capacity(capacity + 3);
        buf.extend_from_slice(&[MAGIC, VERSION, kind]);
        Writer { buf }
    }

    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn i64(&mut self, v: i64) {
        // Zigzag: small magnitudes of either sign stay short.
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    fn tag(&mut self, t: u8) {
        self.buf.push(t);
    }

    fn boolean(&mut self, b: bool) {
        self.buf.push(b as u8);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn opt_str(&mut self, s: &Option<String>) {
        match s {
            Some(s) => {
                self.tag(1);
                self.str(s);
            }
            None => self.tag(0),
        }
    }

    fn str_list(&mut self, l: &[String]) {
        self.u64(l.len() as u64);
        for s in l {
            self.str(s);
        }
    }

    fn u64_list(&mut self, l: &[u64]) {
        self.u64(l.len() as u64);
        for &v in l {
            self.u64(v);
        }
    }

    fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Frame format version (decoders gate fields added after v1 on it).
    version: u8,
}

impl<'a> Reader<'a> {
    /// Opens a frame, checking magic, version and kind.
    fn open(bytes: &'a [u8], kind: u8) -> Option<Self> {
        if bytes.len() < 3 || bytes[0] != MAGIC || bytes[1] > VERSION || bytes[2] != kind {
            return None;
        }
        Some(Reader {
            buf: bytes,
            pos: 3,
            version: bytes[1],
        })
    }

    fn byte(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
        }
        None // over-long varint
    }

    fn i64(&mut self) -> Option<i64> {
        let v = self.u64()?;
        Some(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.byte()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn raw(&mut self) -> Option<&'a [u8]> {
        let len = self.u64()? as usize;
        let slice = self.buf.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        Some(slice)
    }

    fn bytes(&mut self) -> Option<Bytes> {
        self.raw().map(Bytes::copy_from_slice)
    }

    fn str(&mut self) -> Option<String> {
        std::str::from_utf8(self.raw()?).ok().map(str::to_owned)
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.byte()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }

    /// Bounds list lengths by the bytes actually present, so a corrupt
    /// length prefix cannot trigger a huge allocation.
    fn list_len(&mut self) -> Option<usize> {
        let len = self.u64()? as usize;
        if len > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        Some(len)
    }

    fn str_list(&mut self) -> Option<Vec<String>> {
        let len = self.list_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.str()?);
        }
        Some(out)
    }

    fn u64_list(&mut self) -> Option<Vec<u64>> {
        let len = self.list_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ----------------------------------------------------------------------
// NodeRecord
// ----------------------------------------------------------------------

/// Encodes a node record as a binary frame (data payload as raw bytes).
pub fn encode_node(record: &NodeRecord) -> Bytes {
    let mut w = Writer::new(kind::NODE, 32 + record.path.len() + record.data.len());
    w.str(&record.path);
    w.bytes(&record.data);
    w.u64(record.created_txid);
    w.u64(record.modified_txid);
    w.i64(record.version as i64);
    w.str_list(&record.children);
    w.u64(record.children_txid);
    w.opt_str(&record.ephemeral_owner);
    w.u64_list(&record.epoch_marks);
    w.finish()
}

/// Decodes a node record from either encoding: the binary frame, or the
/// legacy JSON document (mixed-version stores decode transparently).
pub fn decode_node(bytes: &[u8]) -> Option<NodeRecord> {
    if !is_binary(bytes) {
        return serde_json::from_slice(bytes).ok();
    }
    let mut r = Reader::open(bytes, kind::NODE)?;
    let record = NodeRecord {
        path: r.str()?,
        data: r.bytes()?,
        created_txid: r.u64()?,
        modified_txid: r.u64()?,
        version: i32::try_from(r.i64()?).ok()?,
        children: Arc::new(r.str_list()?),
        children_txid: r.u64()?,
        ephemeral_owner: r.opt_str()?,
        epoch_marks: Arc::new(r.u64_list()?),
    };
    r.done().then_some(record)
}

/// The legacy JSON encoding of a node record (base64 data payload) —
/// kept callable for mixed-version tests and the `write_amplification`
/// size comparison; production writers use [`encode_node`].
pub fn encode_node_json(record: &NodeRecord) -> Bytes {
    Bytes::from(serde_json::to_vec(record).expect("record serializes"))
}

/// A node record's scan-surface view, decoded **partially** from a
/// stored frame: the stat fields are parsed, the data payload is a
/// zero-copy slice of the shared frame buffer, and the children list is
/// *skipped* — counted, never materialized. A prefix scan over N stored
/// records therefore allocates no per-child strings and copies no
/// payload bytes; only the epoch marks (needed for the Z4 stall check on
/// served reads) are decoded in full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSummary {
    /// Node path.
    pub path: String,
    /// Data payload — a slice of the stored frame, not a copy, when the
    /// record was binary-encoded.
    pub data: Bytes,
    /// Transaction that created the node (`czxid`).
    pub created_txid: u64,
    /// Transaction of the last data change (`mzxid`).
    pub modified_txid: u64,
    /// Data version counter.
    pub version: i32,
    /// Number of children (list skipped, only the count is read).
    pub num_children: usize,
    /// Transaction of the last children change.
    pub children_txid: u64,
    /// True if the node is ephemeral (owner string skipped).
    pub ephemeral: bool,
    /// Epoch marks for the Z4 watch-ordering stall check.
    pub epoch_marks: Arc<Vec<u64>>,
}

impl NodeSummary {
    /// The ZooKeeper `Stat` of this view.
    pub fn stat(&self) -> Stat {
        Stat {
            created_txid: self.created_txid,
            modified_txid: self.modified_txid,
            version: self.version,
            num_children: self.num_children as u32,
            data_length: self.data.len() as u32,
            ephemeral: self.ephemeral,
        }
    }

    /// Builds the view from a fully decoded record (the attribute-native
    /// KV backend has no frame to slice; `data` is shared, not copied).
    pub fn from_record(record: &NodeRecord) -> Self {
        NodeSummary {
            path: record.path.clone(),
            data: record.data.clone(),
            created_txid: record.created_txid,
            modified_txid: record.modified_txid,
            version: record.version,
            num_children: record.children.len(),
            children_txid: record.children_txid,
            ephemeral: record.ephemeral_owner.is_some(),
            epoch_marks: Arc::clone(&record.epoch_marks),
        }
    }
}

/// Partially decodes a stored node record into its scan view (see
/// [`NodeSummary`]). Binary frames are sliced zero-copy; legacy JSON
/// records fall back to the full decode. Returns `None` on corrupt
/// input, like [`decode_node`].
pub fn decode_node_summary(bytes: &Bytes) -> Option<NodeSummary> {
    if !is_binary(bytes) {
        return decode_node(bytes).map(|record| NodeSummary::from_record(&record));
    }
    let mut r = Reader::open(bytes, kind::NODE)?;
    let path = r.str()?;
    // Zero-copy data: note the payload's frame offsets, slice the shared
    // buffer instead of copying.
    let data_len = r.u64()? as usize;
    let data_start = r.pos;
    if data_start.checked_add(data_len)? > r.buf.len() {
        return None;
    }
    r.pos += data_len;
    let data = bytes.slice(data_start..data_start + data_len);
    let created_txid = r.u64()?;
    let modified_txid = r.u64()?;
    let version = i32::try_from(r.i64()?).ok()?;
    // Skip the children strings wholesale; keep the count.
    let num_children = r.list_len()?;
    for _ in 0..num_children {
        r.raw()?;
    }
    let children_txid = r.u64()?;
    let ephemeral = match r.byte()? {
        0 => false,
        1 => {
            r.raw()?;
            true
        }
        _ => return None,
    };
    let epoch_marks = Arc::new(r.u64_list()?);
    r.done().then_some(NodeSummary {
        path,
        data,
        created_txid,
        modified_txid,
        version,
        num_children,
        children_txid,
        ephemeral,
        epoch_marks,
    })
}

// ----------------------------------------------------------------------
// Shared message pieces
// ----------------------------------------------------------------------

fn write_payload(w: &mut Writer, payload: &Payload) {
    match payload {
        Payload::Inline { data } => {
            w.tag(0);
            w.bytes(data);
        }
        Payload::Staged { key, len } => {
            w.tag(1);
            w.str(key);
            w.u64(*len as u64);
        }
    }
}

fn read_payload(r: &mut Reader<'_>) -> Option<Payload> {
    match r.byte()? {
        0 => Some(Payload::Inline { data: r.bytes()? }),
        1 => Some(Payload::Staged {
            key: r.str()?,
            len: r.u64()? as usize,
        }),
        _ => None,
    }
}

fn write_create_mode(w: &mut Writer, mode: CreateMode) {
    w.tag(match mode {
        CreateMode::Persistent => 0,
        CreateMode::Ephemeral => 1,
        CreateMode::PersistentSequential => 2,
        CreateMode::EphemeralSequential => 3,
    });
}

fn read_create_mode(r: &mut Reader<'_>) -> Option<CreateMode> {
    Some(match r.byte()? {
        0 => CreateMode::Persistent,
        1 => CreateMode::Ephemeral,
        2 => CreateMode::PersistentSequential,
        3 => CreateMode::EphemeralSequential,
        _ => return None,
    })
}

fn write_event_type(w: &mut Writer, event: WatchEventType) {
    w.tag(match event {
        WatchEventType::NodeCreated => 0,
        WatchEventType::NodeDataChanged => 1,
        WatchEventType::NodeDeleted => 2,
        WatchEventType::NodeChildrenChanged => 3,
        WatchEventType::SubtreeChanged => 4,
    });
}

fn read_event_type(r: &mut Reader<'_>) -> Option<WatchEventType> {
    Some(match r.byte()? {
        0 => WatchEventType::NodeCreated,
        1 => WatchEventType::NodeDataChanged,
        2 => WatchEventType::NodeDeleted,
        3 => WatchEventType::NodeChildrenChanged,
        4 => WatchEventType::SubtreeChanged,
        _ => return None,
    })
}

fn write_ser_value(w: &mut Writer, value: &SerValue) {
    match value {
        SerValue::Num(n) => {
            w.tag(0);
            w.i64(*n);
        }
        SerValue::Str(s) => {
            w.tag(1);
            w.str(s);
        }
        SerValue::StrList(l) => {
            w.tag(2);
            w.str_list(l);
        }
        SerValue::NumList(l) => {
            w.tag(3);
            w.u64(l.len() as u64);
            for n in l {
                w.i64(*n);
            }
        }
        SerValue::Txid => w.tag(4),
        SerValue::TxidList => w.tag(5),
    }
}

fn read_ser_value(r: &mut Reader<'_>) -> Option<SerValue> {
    Some(match r.byte()? {
        0 => SerValue::Num(r.i64()?),
        1 => SerValue::Str(r.str()?),
        2 => SerValue::StrList(r.str_list()?),
        3 => {
            let len = r.list_len()?;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(r.i64()?);
            }
            SerValue::NumList(out)
        }
        4 => SerValue::Txid,
        5 => SerValue::TxidList,
        _ => return None,
    })
}

fn write_attr_values(w: &mut Writer, pairs: &[(String, SerValue)]) {
    w.u64(pairs.len() as u64);
    for (attr, value) in pairs {
        w.str(attr);
        write_ser_value(w, value);
    }
}

fn read_attr_values(r: &mut Reader<'_>) -> Option<Vec<(String, SerValue)>> {
    let len = r.list_len()?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push((r.str()?, read_ser_value(r)?));
    }
    Some(out)
}

fn write_commit(w: &mut Writer, commit: &SystemCommit) {
    w.u64(commit.items.len() as u64);
    for item in &commit.items {
        w.str(&item.key);
        w.i64(item.lock_ts);
        write_attr_values(w, &item.sets);
        write_attr_values(w, &item.appends);
        w.str_list(&item.removes);
        write_attr_values(w, &item.list_removes);
    }
}

fn read_commit(r: &mut Reader<'_>) -> Option<SystemCommit> {
    let len = r.list_len()?;
    let mut items = Vec::with_capacity(len);
    for _ in 0..len {
        items.push(CommitItem {
            key: r.str()?,
            lock_ts: r.i64()?,
            sets: read_attr_values(r)?,
            appends: read_attr_values(r)?,
            removes: r.str_list()?,
            list_removes: read_attr_values(r)?,
        });
    }
    Some(SystemCommit { items })
}

fn write_parent_children(w: &mut Writer, pc: &Option<(String, Vec<String>)>) {
    match pc {
        Some((parent, children)) => {
            w.tag(1);
            w.str(parent);
            w.str_list(children);
        }
        None => w.tag(0),
    }
}

fn read_parent_children(r: &mut Reader<'_>) -> Option<Option<(String, Vec<String>)>> {
    match r.byte()? {
        0 => Some(None),
        1 => Some(Some((r.str()?, r.str_list()?))),
        _ => None,
    }
}

fn write_user_update(w: &mut Writer, update: &UserUpdate) {
    match update {
        UserUpdate::WriteNode {
            path,
            payload,
            created_txid,
            version,
            children,
            ephemeral_owner,
            parent_children,
        } => {
            w.tag(0);
            w.str(path);
            write_payload(w, payload);
            w.u64(*created_txid);
            w.i64(*version as i64);
            w.str_list(children);
            w.opt_str(ephemeral_owner);
            write_parent_children(w, parent_children);
        }
        UserUpdate::DeleteNode {
            path,
            parent_children,
        } => {
            w.tag(1);
            w.str(path);
            write_parent_children(w, parent_children);
        }
        UserUpdate::None => w.tag(2),
    }
}

fn read_user_update(r: &mut Reader<'_>) -> Option<UserUpdate> {
    Some(match r.byte()? {
        0 => UserUpdate::WriteNode {
            path: r.str()?,
            payload: read_payload(r)?,
            created_txid: r.u64()?,
            version: i32::try_from(r.i64()?).ok()?,
            children: r.str_list()?,
            ephemeral_owner: r.opt_str()?,
            parent_children: read_parent_children(r)?,
        },
        1 => UserUpdate::DeleteNode {
            path: r.str()?,
            parent_children: read_parent_children(r)?,
        },
        2 => UserUpdate::None,
        _ => return None,
    })
}

fn write_stat(w: &mut Writer, stat: &Stat) {
    w.u64(stat.created_txid);
    w.u64(stat.modified_txid);
    w.i64(stat.version as i64);
    w.u64(stat.num_children as u64);
    w.u64(stat.data_length as u64);
    w.boolean(stat.ephemeral);
}

fn read_stat(r: &mut Reader<'_>) -> Option<Stat> {
    Some(Stat {
        created_txid: r.u64()?,
        modified_txid: r.u64()?,
        version: i32::try_from(r.i64()?).ok()?,
        num_children: u32::try_from(r.u64()?).ok()?,
        data_length: u32::try_from(r.u64()?).ok()?,
        ephemeral: r.boolean()?,
    })
}

fn write_multi_op(w: &mut Writer, op: &MultiOp) {
    match op {
        MultiOp::Create {
            path,
            payload,
            mode,
        } => {
            w.tag(0);
            w.str(path);
            write_payload(w, payload);
            write_create_mode(w, *mode);
        }
        MultiOp::SetData {
            path,
            payload,
            expected_version,
        } => {
            w.tag(1);
            w.str(path);
            write_payload(w, payload);
            w.i64(*expected_version as i64);
        }
        MultiOp::Delete {
            path,
            expected_version,
        } => {
            w.tag(2);
            w.str(path);
            w.i64(*expected_version as i64);
        }
        MultiOp::Check {
            path,
            expected_version,
        } => {
            w.tag(3);
            w.str(path);
            w.i64(*expected_version as i64);
        }
    }
}

fn read_multi_op(r: &mut Reader<'_>) -> Option<MultiOp> {
    Some(match r.byte()? {
        0 => MultiOp::Create {
            path: r.str()?,
            payload: read_payload(r)?,
            mode: read_create_mode(r)?,
        },
        1 => MultiOp::SetData {
            path: r.str()?,
            payload: read_payload(r)?,
            expected_version: i32::try_from(r.i64()?).ok()?,
        },
        2 => MultiOp::Delete {
            path: r.str()?,
            expected_version: i32::try_from(r.i64()?).ok()?,
        },
        3 => MultiOp::Check {
            path: r.str()?,
            expected_version: i32::try_from(r.i64()?).ok()?,
        },
        _ => return None,
    })
}

fn write_outcome(w: &mut Writer, outcome: &OpOutcome) {
    match outcome {
        OpOutcome::Created { path, stat } => {
            w.tag(0);
            w.str(path);
            write_stat(w, stat);
        }
        OpOutcome::Set { path, stat } => {
            w.tag(1);
            w.str(path);
            write_stat(w, stat);
        }
        OpOutcome::Deleted { path } => {
            w.tag(2);
            w.str(path);
        }
        OpOutcome::Checked { stat } => {
            w.tag(3);
            write_stat(w, stat);
        }
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Option<OpOutcome> {
    Some(match r.byte()? {
        0 => OpOutcome::Created {
            path: r.str()?,
            stat: read_stat(r)?,
        },
        1 => OpOutcome::Set {
            path: r.str()?,
            stat: read_stat(r)?,
        },
        2 => OpOutcome::Deleted { path: r.str()? },
        3 => OpOutcome::Checked {
            stat: read_stat(r)?,
        },
        _ => return None,
    })
}

fn write_fires(w: &mut Writer, fires: &[FiredWatch]) {
    w.u64(fires.len() as u64);
    for fw in fires {
        w.str(&fw.watch_path);
        write_event_type(w, fw.event_type);
    }
}

fn read_fires(r: &mut Reader<'_>) -> Option<Vec<FiredWatch>> {
    let len = r.list_len()?;
    let mut fires = Vec::with_capacity(len);
    for _ in 0..len {
        fires.push(FiredWatch {
            watch_path: r.str()?,
            event_type: read_event_type(r)?,
        });
    }
    Some(fires)
}

fn write_multi_sub(w: &mut Writer, sub: &MultiSub) {
    w.str(&sub.path);
    write_user_update(w, &sub.user_update);
    write_fires(w, &sub.fires);
    w.boolean(sub.is_delete);
    write_outcome(w, &sub.outcome);
}

fn read_multi_sub(r: &mut Reader<'_>) -> Option<MultiSub> {
    Some(MultiSub {
        path: r.str()?,
        user_update: read_user_update(r)?,
        fires: read_fires(r)?,
        is_delete: r.boolean()?,
        outcome: read_outcome(r)?,
    })
}

// ----------------------------------------------------------------------
// LeaderRecord
// ----------------------------------------------------------------------

/// Encodes a leader-queue record as a binary frame.
pub fn encode_leader_record(record: &LeaderRecord) -> Bytes {
    let payload_len = match &record.user_update {
        UserUpdate::WriteNode { payload, .. } => payload.wire_len(),
        _ => 0,
    };
    let mut w = Writer::new(kind::LEADER_RECORD, 96 + record.path.len() + payload_len);
    w.str(&record.session_id);
    w.u64(record.request_id);
    w.u64(record.txid);
    w.u64(record.prev_txid);
    w.str(&record.path);
    write_commit(&mut w, &record.commit);
    write_user_update(&mut w, &record.user_update);
    write_stat(&mut w, &record.stat);
    write_fires(&mut w, &record.fires);
    w.boolean(record.is_delete);
    w.boolean(record.deregister_session);
    // Version 2: the multi sub-operation list.
    w.u64(record.ops.len() as u64);
    for sub in &record.ops {
        write_multi_sub(&mut w, sub);
    }
    w.finish()
}

/// Decodes a leader-queue record from either encoding (binary frame, or
/// the legacy JSON message of an in-flight pre-upgrade follower).
pub fn decode_leader_record(bytes: &[u8]) -> Option<LeaderRecord> {
    if !is_binary(bytes) {
        return serde_json::from_slice(bytes).ok();
    }
    let mut r = Reader::open(bytes, kind::LEADER_RECORD)?;
    let session_id = r.str()?;
    let request_id = r.u64()?;
    let txid = r.u64()?;
    let prev_txid = r.u64()?;
    let path = r.str()?;
    let commit = read_commit(&mut r)?;
    let user_update = read_user_update(&mut r)?;
    let stat = read_stat(&mut r)?;
    let fires = read_fires(&mut r)?;
    let is_delete = r.boolean()?;
    let deregister_session = r.boolean()?;
    // Version-1 frames predate the multi surface: no ops list.
    let ops = if r.version >= 2 {
        let len = r.list_len()?;
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            ops.push(read_multi_sub(&mut r)?);
        }
        ops
    } else {
        Vec::new()
    };
    let record = LeaderRecord {
        session_id,
        request_id,
        txid,
        prev_txid,
        path,
        commit,
        user_update,
        stat,
        fires,
        is_delete,
        deregister_session,
        ops,
    };
    r.done().then_some(record)
}

// ----------------------------------------------------------------------
// ClientRequest
// ----------------------------------------------------------------------

/// Encodes a client write request as a binary frame.
pub fn encode_client_request(request: &ClientRequest) -> Bytes {
    let (path_len, payload_len) = match &request.op {
        WriteOp::Create { path, payload, .. } | WriteOp::SetData { path, payload, .. } => {
            (path.len(), payload.wire_len())
        }
        WriteOp::Delete { path, .. } => (path.len(), 0),
        WriteOp::CloseSession => (0, 0),
        WriteOp::Multi { ops } => (
            ops.iter().map(|op| op.path().len()).sum(),
            ops.iter()
                .map(|op| match op {
                    MultiOp::Create { payload, .. } | MultiOp::SetData { payload, .. } => {
                        payload.wire_len()
                    }
                    _ => 0,
                })
                .sum(),
        ),
    };
    let mut w = Writer::new(kind::CLIENT_REQUEST, 32 + path_len + payload_len);
    w.str(&request.session_id);
    w.u64(request.request_id);
    match &request.op {
        WriteOp::Create {
            path,
            payload,
            mode,
        } => {
            w.tag(0);
            w.str(path);
            write_payload(&mut w, payload);
            write_create_mode(&mut w, *mode);
        }
        WriteOp::SetData {
            path,
            payload,
            expected_version,
        } => {
            w.tag(1);
            w.str(path);
            write_payload(&mut w, payload);
            w.i64(*expected_version as i64);
        }
        WriteOp::Delete {
            path,
            expected_version,
        } => {
            w.tag(2);
            w.str(path);
            w.i64(*expected_version as i64);
        }
        WriteOp::CloseSession => w.tag(3),
        WriteOp::Multi { ops } => {
            w.tag(4);
            w.u64(ops.len() as u64);
            for op in ops {
                write_multi_op(&mut w, op);
            }
        }
    }
    w.finish()
}

/// Decodes a client write request from either encoding.
pub fn decode_client_request(bytes: &[u8]) -> Option<ClientRequest> {
    if !is_binary(bytes) {
        return serde_json::from_slice(bytes).ok();
    }
    let mut r = Reader::open(bytes, kind::CLIENT_REQUEST)?;
    let session_id = r.str()?;
    let request_id = r.u64()?;
    let op = match r.byte()? {
        0 => WriteOp::Create {
            path: r.str()?,
            payload: read_payload(&mut r)?,
            mode: read_create_mode(&mut r)?,
        },
        1 => WriteOp::SetData {
            path: r.str()?,
            payload: read_payload(&mut r)?,
            expected_version: i32::try_from(r.i64()?).ok()?,
        },
        2 => WriteOp::Delete {
            path: r.str()?,
            expected_version: i32::try_from(r.i64()?).ok()?,
        },
        3 => WriteOp::CloseSession,
        4 => {
            let len = r.list_len()?;
            let mut ops = Vec::with_capacity(len);
            for _ in 0..len {
                ops.push(read_multi_op(&mut r)?);
            }
            WriteOp::Multi { ops }
        }
        _ => return None,
    };
    let request = ClientRequest {
        session_id,
        request_id,
        op,
    };
    r.done().then_some(request)
}

// ----------------------------------------------------------------------
// WatchTask
// ----------------------------------------------------------------------

/// Encodes a watch-delivery task as a binary frame.
pub fn encode_watch_task(task: &crate::watch_fn::WatchTask) -> Bytes {
    let mut w = Writer::new(kind::WATCH_TASK, 48 + task.event.path.len());
    w.u64(task.watch_id);
    w.str_list(&task.sessions);
    w.u64(task.event.watch_id);
    w.str(&task.event.path);
    write_event_type(&mut w, task.event.event_type);
    w.u64(task.event.txid);
    w.u64(task.regions.len() as u64);
    for &region in &task.regions {
        w.tag(region);
    }
    // Version 3: optional children list (presence-tagged, at the end so
    // the preceding layout matches version-2 frames byte for byte).
    match &task.event.children {
        Some(children) => {
            w.boolean(true);
            w.str_list(children);
        }
        None => w.boolean(false),
    }
    w.finish()
}

/// Decodes a watch-delivery task from either encoding.
pub fn decode_watch_task(bytes: &[u8]) -> Option<crate::watch_fn::WatchTask> {
    if !is_binary(bytes) {
        return serde_json::from_slice(bytes).ok();
    }
    let mut r = Reader::open(bytes, kind::WATCH_TASK)?;
    let watch_id = r.u64()?;
    let sessions = r.str_list()?;
    let mut event = WatchEvent {
        watch_id: r.u64()?,
        path: r.str()?,
        event_type: read_event_type(&mut r)?,
        txid: r.u64()?,
        children: None,
    };
    let regions_len = r.list_len()?;
    let mut regions = Vec::with_capacity(regions_len);
    for _ in 0..regions_len {
        regions.push(r.byte()?);
    }
    // Version 3 appended the optional children list; version-2 frames
    // simply end here.
    if r.version >= 3 && r.boolean()? {
        event.children = Some(r.str_list()?);
    }
    let task = crate::watch_fn::WatchTask {
        watch_id,
        sessions,
        event,
        regions,
    };
    r.done().then_some(task)
}

// ----------------------------------------------------------------------
// Checkpoint transfer (chunks + manifest)
// ----------------------------------------------------------------------

/// Encodes one checkpoint chunk: a batch of already-encoded node frames
/// ([`encode_node`] output), length-prefixed so the joiner re-frames
/// them without decoding — the bytes it installs are byte-identical to
/// the bytes the stream would have delivered.
pub fn encode_checkpoint_chunk(frames: &[Bytes]) -> Bytes {
    let total: usize = frames.iter().map(|frame| frame.len() + 5).sum();
    let mut w = Writer::new(kind::CHECKPOINT_CHUNK, total + 5);
    w.u64(frames.len() as u64);
    for frame in frames {
        w.bytes(frame);
    }
    w.finish()
}

/// Decodes a checkpoint chunk back into its node frames.
pub fn decode_checkpoint_chunk(bytes: &[u8]) -> Option<Vec<Bytes>> {
    let mut r = Reader::open(bytes, kind::CHECKPOINT_CHUNK)?;
    let len = r.list_len()?;
    let mut frames = Vec::with_capacity(len);
    for _ in 0..len {
        frames.push(r.bytes()?);
    }
    r.done().then_some(frames)
}

/// Encodes a checkpoint manifest.
pub fn encode_checkpoint_manifest(manifest: &crate::transfer::CheckpointManifest) -> Bytes {
    let mut w = Writer::new(kind::CHECKPOINT_MANIFEST, 40 + manifest.floors.len() * 9);
    w.u64(manifest.id);
    w.u64_list(&manifest.floors);
    w.u64_list(&manifest.feed_seq);
    w.u64(manifest.chunks);
    w.u64(manifest.nodes);
    w.finish()
}

/// Decodes a checkpoint manifest.
pub fn decode_checkpoint_manifest(bytes: &[u8]) -> Option<crate::transfer::CheckpointManifest> {
    let mut r = Reader::open(bytes, kind::CHECKPOINT_MANIFEST)?;
    let manifest = crate::transfer::CheckpointManifest {
        id: r.u64()?,
        floors: r.u64_list()?,
        feed_seq: r.u64_list()?,
        chunks: r.u64()?,
        nodes: r.u64()?,
    };
    r.done().then_some(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(data_len: usize) -> NodeRecord {
        NodeRecord {
            path: "/a/деep/path".into(),
            data: Bytes::from(vec![0xA5; data_len]),
            created_txid: 7,
            modified_txid: (1 << 40) + 3,
            version: -1,
            children: Arc::new(vec!["x".into(), "äöü".into()]),
            children_txid: 9,
            ephemeral_owner: Some("sess-1".into()),
            epoch_marks: Arc::new(vec![1, u64::MAX, 0]),
        }
    }

    #[test]
    fn node_roundtrip_binary() {
        for len in [0usize, 1, 127, 128, 300_000] {
            let rec = record(len);
            let bytes = encode_node(&rec);
            assert!(is_binary(&bytes));
            assert_eq!(decode_node(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn node_json_fallback_decodes() {
        let rec = record(64);
        let json = encode_node_json(&rec);
        assert!(!is_binary(&json));
        assert_eq!(decode_node(&json).unwrap(), rec);
    }

    #[test]
    fn node_summary_matches_full_decode() {
        for len in [0usize, 1, 300_000] {
            let rec = record(len);
            let bytes = encode_node(&rec);
            let summary = decode_node_summary(&bytes).unwrap();
            assert_eq!(summary.stat(), rec.stat());
            assert_eq!(summary.path, rec.path);
            assert_eq!(summary.data, rec.data);
            assert_eq!(summary.epoch_marks, rec.epoch_marks);
            // Zero-copy: the payload is a window into the stored frame,
            // not a fresh allocation.
            if len > 0 {
                let frame = bytes.as_ref().as_ptr() as usize;
                let data = summary.data.as_ref().as_ptr() as usize;
                assert!(
                    data > frame && data < frame + bytes.len(),
                    "summary data must borrow from the frame"
                );
            }
            // Truncations fail cleanly through the partial decoder too.
            for cut in 0..bytes.len() {
                assert!(decode_node_summary(&bytes.slice(0..cut)).is_none());
            }
        }
        // Legacy JSON blobs fall back to the full decoder.
        let rec = record(16);
        let json = encode_node_json(&rec);
        let summary = decode_node_summary(&json).unwrap();
        assert_eq!(summary.stat(), rec.stat());
        assert_eq!(summary.data, rec.data);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let rec = record(3 * 1024);
        let bin = encode_node(&rec).len();
        let json = encode_node_json(&rec).len();
        assert!(
            (json as f64) / (bin as f64) >= 1.3,
            "binary {bin} vs json {json}"
        );
    }

    #[test]
    fn corrupt_frames_decode_to_none() {
        let rec = record(32);
        let bytes = encode_node(&rec);
        // Truncations at every boundary must fail cleanly.
        for cut in 0..bytes.len() {
            assert!(decode_node(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        // Trailing garbage is rejected (frames are exact).
        let mut padded = bytes.to_vec();
        padded.push(0);
        assert!(decode_node(&padded).is_none());
        // Wrong kind is rejected.
        assert!(decode_client_request(&bytes).is_none());
        // Newer versions are rejected, not misparsed.
        let mut newer = bytes.to_vec();
        newer[1] = VERSION + 1;
        assert!(decode_node(&newer).is_none());
        // A corrupt length prefix must not allocate absurdly.
        let mut huge = bytes.to_vec();
        let len = huge.len();
        huge.truncate(3);
        huge.extend_from_slice(&[0xFF; 9]);
        huge.push(0x01);
        huge.resize(len, 0);
        assert!(decode_node(&huge).is_none());
    }

    #[test]
    fn version1_leader_record_decodes_without_ops() {
        use crate::messages::{LeaderRecord, SystemCommit, UserUpdate};
        let rec = LeaderRecord {
            session_id: "s".into(),
            request_id: 1,
            txid: 9,
            prev_txid: 0,
            path: "/v1".into(),
            commit: SystemCommit::default(),
            user_update: UserUpdate::None,
            stat: Stat::default(),
            fires: vec![],
            is_delete: false,
            deregister_session: false,
            ops: vec![],
        };
        let bytes = encode_leader_record(&rec);
        // Rewrite as a v1 frame: same layout minus the trailing ops list
        // (an empty list is a single 0x00 varint).
        let mut v1 = bytes.to_vec();
        assert_eq!(v1[1], VERSION);
        assert_eq!(*v1.last().unwrap(), 0, "empty ops list is one zero byte");
        v1[1] = 1;
        v1.pop();
        assert_eq!(decode_leader_record(&v1).unwrap(), rec);
        // A v1 frame with trailing bytes is still rejected.
        v1.push(0);
        assert!(decode_leader_record(&v1).is_none());
    }

    #[test]
    fn varints_roundtrip_extremes() {
        let mut w = Writer::new(kind::NODE, 0);
        for v in [0u64, 1, 127, 128, u64::MAX] {
            w.u64(v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            w.i64(v);
        }
        let bytes = w.finish();
        let mut r = Reader::open(&bytes, kind::NODE).unwrap();
        for v in [0u64, 1, 127, 128, u64::MAX] {
            assert_eq!(r.u64(), Some(v));
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(r.i64(), Some(v));
        }
        assert!(r.done());
    }

    #[test]
    fn checkpoint_chunk_and_manifest_roundtrip() {
        let frames: Vec<Bytes> = vec![
            Bytes::from_static(b"alpha"),
            Bytes::new(),
            Bytes::from_static(b"\x00\x01\x02"),
        ];
        let chunk = encode_checkpoint_chunk(&frames);
        assert_eq!(decode_checkpoint_chunk(&chunk).unwrap(), frames);
        // Kinds are not interchangeable: a chunk is not a manifest and
        // neither decodes as a node frame.
        assert!(decode_checkpoint_manifest(&chunk).is_none());
        assert!(decode_checkpoint_chunk(&encode_node(&record(3))).is_none());
        assert_eq!(
            decode_checkpoint_chunk(&encode_checkpoint_chunk(&[])).unwrap(),
            Vec::<Bytes>::new()
        );

        let manifest = crate::transfer::CheckpointManifest {
            id: 0xC0DE,
            floors: vec![1, 2, 3],
            feed_seq: vec![9, 4],
            chunks: 2,
            nodes: 5,
        };
        let bytes = encode_checkpoint_manifest(&manifest);
        assert_eq!(decode_checkpoint_manifest(&bytes).unwrap(), manifest);
        // Truncation and trailing garbage are both rejected.
        assert!(decode_checkpoint_manifest(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.to_vec();
        padded.push(0);
        assert!(decode_checkpoint_manifest(&padded).is_none());
    }
}
