//! Execution of system-storage commits.
//!
//! A [`SystemCommit`] describes the conditional writes that commit a
//! transaction to system storage. The follower executes it right after
//! pushing to the leader queue (Algorithm 1 ➃); the leader re-executes the
//! *same* description when it finds the node uncommitted (Algorithm 2 ➋,
//! `TryCommit`) — this is what makes a follower crash between push and
//! commit harmless.
//!
//! Every item is guarded by its timed-lock timestamp, so an expired and
//! re-acquired lock makes the whole commit fail atomically, and the
//! request is reported as failed without corrupting newer state.

use crate::messages::{CommitItem, SystemCommit};
use fk_cloud::expr::{Condition, Update};
use fk_cloud::kvstore::{KvStore, TransactOp};
use fk_cloud::trace::Ctx;
use fk_cloud::CloudResult;
use fk_sync::LOCK_ATTR;

/// Lock-timestamp sentinel for commit items on keys that are *not* under
/// a timed lock (the session request watermark rides the commit this
/// way): the item applies unconditionally and releases no lock. Real
/// lock timestamps are wall-clock milliseconds, so 0 is never a live
/// lock.
pub const UNGUARDED: i64 = 0;

fn item_update(item: &CommitItem, txid: u64) -> Update {
    let mut update = Update::new();
    for (attr, value) in &item.sets {
        update = update.set(attr.clone(), value.to_value(txid));
    }
    for (attr, value) in &item.appends {
        let values = match value.to_value(txid) {
            fk_cloud::Value::List(l) => l,
            single => vec![single],
        };
        update = update.list_append(attr.clone(), values);
    }
    for attr in &item.removes {
        update = update.remove(attr.clone());
    }
    for (attr, value) in &item.list_removes {
        let values = match value.to_value(txid) {
            fk_cloud::Value::List(l) => l,
            single => vec![single],
        };
        update = update.list_remove(attr.clone(), values);
    }
    if item.lock_ts == UNGUARDED {
        return update;
    }
    // Committing releases the lock in the same write (Algorithm 1 ➃).
    update.remove(LOCK_ATTR)
}

fn item_condition(item: &CommitItem) -> Condition {
    if item.lock_ts == UNGUARDED {
        Condition::Always
    } else {
        Condition::eq(LOCK_ATTR, item.lock_ts)
    }
}

/// Executes the commit atomically: a single conditional update for
/// single-item transactions (the common `set_data` case — one write unit),
/// or a multi-item transaction for operations that touch the parent too
/// (create/delete — Z1's all-or-nothing requirement).
pub fn execute(commit: &SystemCommit, txid: u64, ctx: &Ctx, kv: &KvStore) -> CloudResult<()> {
    match commit.items.as_slice() {
        [] => Ok(()),
        [single] => {
            kv.update(
                ctx,
                &single.key,
                &item_update(single, txid),
                item_condition(single),
            )?;
            Ok(())
        }
        items => {
            let ops: Vec<TransactOp> = items
                .iter()
                .map(|item| TransactOp::Update {
                    key: item.key.clone(),
                    update: item_update(item, txid),
                    condition: item_condition(item),
                })
                .collect();
            kv.transact(ctx, &ops)
        }
    }
}

/// Pops `txids` from the front of a node's pending-transaction queue
/// (Algorithm 2 ➎) with batch coalescing: when the queue head matches the
/// first txid — the common case, since per-node txq order equals txid
/// order — all entries pop in a single conditional update instead of one
/// round trip per transaction. After a partial redelivery the head may
/// already be past some txids; the fallback then pops each remaining txid
/// individually and idempotently, exactly like the sequential leader.
pub fn pop_pending(kv: &KvStore, ctx: &Ctx, path: &str, txids: &[u64]) -> CloudResult<()> {
    use crate::system_store::{keys, node_attr};
    use fk_cloud::value::Value;
    use fk_cloud::CloudError;
    if txids.is_empty() {
        return Ok(());
    }
    let key = keys::node(path);
    let head = Condition::ListHeadEq(node_attr::TXQ.into(), Value::Num(txids[0] as i64));
    let pop_all = Update::new().list_pop_front(node_attr::TXQ, txids.len());
    match kv.update(ctx, &key, &pop_all, head) {
        Ok(_) => return Ok(()),
        Err(CloudError::ConditionFailed { .. }) => {}
        Err(e) => return Err(e),
    }
    // Redelivery fallback: pop whichever of our txids is still at the
    // head, one at a time; already-popped entries fail the guard and are
    // skipped (idempotent).
    for txid in txids {
        let one = Update::new().list_pop_front(node_attr::TXQ, 1);
        let cond = Condition::ListHeadEq(node_attr::TXQ.into(), Value::Num(*txid as i64));
        match kv.update(ctx, &key, &one, cond) {
            Ok(_) | Err(CloudError::ConditionFailed { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Pops many paths' pending-transaction queues in **one** multi-item
/// conditional transaction (the chunked counterpart of [`pop_pending`],
/// capped at [`crate::system_store::TRANSACT_MAX_ITEMS`] entries by the
/// caller): each item pops its path's txids guarded by its own
/// queue-head condition — the same guard the per-path pop uses, so the
/// Z-invariants are unchanged. In the common case the whole epoch's
/// pops cost one write request. A single stale head (a redelivered
/// epoch whose earlier delivery already popped) cancels the chunk; the
/// fallback then runs the per-path pops, whose per-txid legs are
/// idempotent.
pub fn pop_pending_batch(kv: &KvStore, ctx: &Ctx, entries: &[(&str, &[u64])]) -> CloudResult<()> {
    use crate::system_store::{keys, node_attr};
    use fk_cloud::value::Value;
    use fk_cloud::CloudError;
    let entries: Vec<&(&str, &[u64])> = entries.iter().filter(|(_, t)| !t.is_empty()).collect();
    match entries.as_slice() {
        [] => Ok(()),
        [(path, txids)] => pop_pending(kv, ctx, path, txids),
        many => {
            let ops: Vec<TransactOp> = many
                .iter()
                .map(|(path, txids)| TransactOp::Update {
                    key: keys::node(path),
                    update: Update::new().list_pop_front(node_attr::TXQ, txids.len()),
                    condition: Condition::ListHeadEq(
                        node_attr::TXQ.into(),
                        Value::Num(txids[0] as i64),
                    ),
                })
                .collect();
            match kv.transact(ctx, &ops) {
                Ok(()) => Ok(()),
                Err(CloudError::TransactionCancelled { .. }) => {
                    // At least one path's head is already past its first
                    // txid (partial redelivery). Nothing was applied —
                    // finish with per-path pops, which skip
                    // already-popped txids idempotently.
                    for (path, txids) in many {
                        pop_pending(kv, ctx, path, txids)?;
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::SerValue;
    use fk_cloud::metering::Meter;
    use fk_cloud::value::{Item, Value};
    use fk_cloud::{Consistency, Region};
    use fk_sync::TimedLockManager;

    fn setup() -> (KvStore, TimedLockManager, Ctx) {
        let kv = KvStore::new("sys", Region::US_EAST_1, Meter::new());
        let locks = TimedLockManager::new(kv.clone(), 1000);
        (kv, locks, Ctx::disabled())
    }

    fn commit_item(key: &str, lock_ts: i64) -> CommitItem {
        CommitItem {
            key: key.into(),
            lock_ts,
            sets: vec![("version".into(), SerValue::Txid)],
            appends: vec![("txq".into(), SerValue::TxidList)],
            removes: vec![],
            list_removes: vec![],
        }
    }

    #[test]
    fn single_item_commit_applies_and_unlocks() {
        let (kv, locks, ctx) = setup();
        let acq = locks.acquire(&ctx, "node:/a", 100).unwrap();
        let commit = SystemCommit {
            items: vec![commit_item("node:/a", acq.token.timestamp)],
        };
        execute(&commit, 7, &ctx, &kv).unwrap();
        let item = kv.get(&ctx, "node:/a", Consistency::Strong).unwrap();
        assert_eq!(item.num("version"), Some(7));
        assert_eq!(item.list("txq").unwrap(), &[Value::Num(7)]);
        assert!(!item.contains(LOCK_ATTR));
    }

    #[test]
    fn commit_fails_after_lock_stolen() {
        let (kv, locks, ctx) = setup();
        let old = locks.acquire(&ctx, "node:/a", 100).unwrap();
        locks.acquire(&ctx, "node:/a", 2000).unwrap(); // steal after expiry
        let commit = SystemCommit {
            items: vec![commit_item("node:/a", old.token.timestamp)],
        };
        let err = execute(&commit, 7, &ctx, &kv).unwrap_err();
        assert!(err.is_condition_failed());
        let item = kv.get(&ctx, "node:/a", Consistency::Strong).unwrap();
        assert!(!item.contains("version"), "no partial state");
    }

    #[test]
    fn multi_item_commit_is_atomic() {
        let (kv, locks, ctx) = setup();
        let node = locks.acquire(&ctx, "node:/p/c", 100).unwrap();
        let parent = locks.acquire(&ctx, "node:/p", 100).unwrap();
        let mut parent_item = commit_item("node:/p", parent.token.timestamp);
        parent_item.appends = vec![("children".into(), SerValue::StrList(vec!["c".into()]))];
        let commit = SystemCommit {
            items: vec![commit_item("node:/p/c", node.token.timestamp), parent_item],
        };
        execute(&commit, 7, &ctx, &kv).unwrap();
        let p = kv.get(&ctx, "node:/p", Consistency::Strong).unwrap();
        assert_eq!(p.list("children").unwrap(), &[Value::from("c")]);
        assert!(!p.contains(LOCK_ATTR));
    }

    #[test]
    fn multi_item_commit_rolls_back_on_one_stolen_lock() {
        let (kv, locks, ctx) = setup();
        let node = locks.acquire(&ctx, "node:/p/c", 100).unwrap();
        let parent = locks.acquire(&ctx, "node:/p", 100).unwrap();
        // Parent lock is stolen.
        locks.acquire(&ctx, "node:/p", 5000).unwrap();
        let commit = SystemCommit {
            items: vec![
                commit_item("node:/p/c", node.token.timestamp),
                commit_item("node:/p", parent.token.timestamp),
            ],
        };
        assert!(execute(&commit, 7, &ctx, &kv).is_err());
        let child = kv.get(&ctx, "node:/p/c", Consistency::Strong).unwrap();
        assert!(!child.contains("version"), "child must not commit alone");
    }

    #[test]
    fn pop_pending_coalesces_in_order() {
        use crate::system_store::{keys, node_attr};
        use fk_cloud::Consistency;
        let meter = Meter::new();
        let kv = KvStore::new("sys", Region::US_EAST_1, meter.clone());
        let ctx = Ctx::disabled();
        kv.put(
            &ctx,
            &keys::node("/n"),
            Item::new().with(
                node_attr::TXQ,
                vec![Value::Num(3), Value::Num(4), Value::Num(5), Value::Num(9)],
            ),
            Condition::Always,
        )
        .unwrap();
        // Batched pop of a contiguous head run: single update.
        let before = meter.snapshot().kv_ops;
        pop_pending(&kv, &ctx, "/n", &[3, 4, 5]).unwrap();
        assert_eq!(meter.snapshot().kv_ops - before, 1, "one coalesced update");
        let item = kv
            .get(&ctx, &keys::node("/n"), Consistency::Strong)
            .unwrap();
        assert_eq!(item.list(node_attr::TXQ).unwrap(), &[Value::Num(9)]);
    }

    #[test]
    fn pop_pending_falls_back_after_partial_redelivery() {
        use crate::system_store::{keys, node_attr};
        use fk_cloud::Consistency;
        let (kv, _locks, ctx) = setup();
        // Head 3 already popped by the pre-crash delivery; 4 and 5 remain.
        kv.put(
            &ctx,
            &keys::node("/n"),
            Item::new().with(node_attr::TXQ, vec![Value::Num(4), Value::Num(5)]),
            Condition::Always,
        )
        .unwrap();
        pop_pending(&kv, &ctx, "/n", &[3, 4, 5]).unwrap();
        let item = kv
            .get(&ctx, &keys::node("/n"), Consistency::Strong)
            .unwrap();
        assert_eq!(item.list(node_attr::TXQ).unwrap(), &[] as &[Value]);
        // Fully popped already: a second call is a no-op.
        pop_pending(&kv, &ctx, "/n", &[3, 4, 5]).unwrap();
    }

    #[test]
    fn empty_commit_is_noop() {
        let (kv, _locks, ctx) = setup();
        execute(&SystemCommit::default(), 1, &ctx, &kv).unwrap();
        assert!(kv.is_empty());
    }

    #[test]
    fn list_removes_apply() {
        let (kv, locks, ctx) = setup();
        kv.put(
            &ctx,
            "node:/p",
            Item::new().with("children", vec![Value::from("a"), Value::from("b")]),
            Condition::Always,
        )
        .unwrap();
        let acq = locks.acquire(&ctx, "node:/p", 100).unwrap();
        let commit = SystemCommit {
            items: vec![CommitItem {
                key: "node:/p".into(),
                lock_ts: acq.token.timestamp,
                sets: vec![],
                appends: vec![],
                removes: vec![],
                list_removes: vec![("children".into(), SerValue::StrList(vec!["a".into()]))],
            }],
        };
        execute(&commit, 8, &ctx, &kv).unwrap();
        let p = kv.get(&ctx, "node:/p", Consistency::Strong).unwrap();
        assert_eq!(p.list("children").unwrap(), &[Value::from("b")]);
    }
}
