//! Consistency model validation (Appendix A/B).
//!
//! ZooKeeper's guarantees, restated as checks over recorded histories:
//!
//! * **Z1 Atomicity** — writes never leave partial results. Checked
//!   structurally: [`check_tree_integrity`] verifies that system storage,
//!   user storage and parent/child metadata agree.
//! * **Z2 Linearized writes** — a session's accepted updates receive
//!   strictly increasing txids in submission order.
//! * **Z3 Single system image** — committed txids are globally unique,
//!   and no client ever observes a node's version going backwards.
//! * **Z4 Ordered notifications** — a client never observes data from a
//!   transaction newer than an undelivered notification of one of its
//!   watches.
//!
//! Clients feed a shared [`HistoryRecorder`]; tests run the validators
//! after (or during) a workload.

use crate::system_store::{node_attr, SystemStore};
use crate::user_store::UserStore;
use fk_cloud::trace::Ctx;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One observed event, in a client session's local observation order.
#[derive(Debug, Clone, PartialEq)]
pub enum HEvent {
    /// A write was submitted (before queueing).
    WriteSubmitted {
        /// Session id.
        session: String,
        /// Request id (per-session monotonic).
        request_id: u64,
        /// Target path.
        path: String,
    },
    /// A write was acknowledged as committed.
    WriteCommitted {
        /// Session id.
        session: String,
        /// Request id.
        request_id: u64,
        /// Assigned transaction id.
        txid: u64,
    },
    /// A write failed (validation or system failure).
    WriteFailed {
        /// Session id.
        session: String,
        /// Request id.
        request_id: u64,
    },
    /// A read returned to the application.
    ReadReturned {
        /// Session id.
        session: String,
        /// Path read.
        path: String,
        /// The node's modification txid observed.
        modified_txid: u64,
        /// Epoch marks attached to the observed version.
        epoch_marks: Vec<u64>,
    },
    /// A watch notification was delivered to the application.
    WatchDelivered {
        /// Session id.
        session: String,
        /// Watch instance id.
        watch_id: u64,
        /// Triggering transaction.
        txid: u64,
    },
}

impl HEvent {
    fn session(&self) -> &str {
        match self {
            HEvent::WriteSubmitted { session, .. }
            | HEvent::WriteCommitted { session, .. }
            | HEvent::WriteFailed { session, .. }
            | HEvent::ReadReturned { session, .. }
            | HEvent::WatchDelivered { session, .. } => session,
        }
    }
}

/// Thread-safe history sink. Cloning shares the sink.
#[derive(Clone, Default)]
pub struct HistoryRecorder {
    events: Arc<Mutex<Vec<(u64, HEvent)>>>,
    seq: Arc<AtomicU64>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, stamping the global observation order.
    pub fn record(&self, event: HEvent) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.events.lock().push((seq, event));
    }

    /// Snapshot of all events in observation order.
    pub fn events(&self) -> Vec<HEvent> {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|(seq, _)| *seq);
        events.into_iter().map(|(_, e)| e).collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A consistency violation found by a validator.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which guarantee was violated.
    pub rule: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Z2: per session, committed writes carry strictly increasing txids in
/// submission (request-id) order.
pub fn check_linearized_writes(events: &[HEvent]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut per_session: HashMap<&str, Vec<(u64, u64)>> = HashMap::new();
    for event in events {
        if let HEvent::WriteCommitted {
            session,
            request_id,
            txid,
        } = event
        {
            per_session
                .entry(session)
                .or_default()
                .push((*request_id, *txid));
        }
    }
    for (session, mut writes) in per_session {
        writes.sort_by_key(|(rid, _)| *rid);
        for pair in writes.windows(2) {
            let ((r1, t1), (r2, t2)) = (pair[0], pair[1]);
            if t2 <= t1 {
                violations.push(Violation {
                    rule: "Z2",
                    detail: format!(
                        "session {session}: request {r2} (txid {t2}) not after request {r1} (txid {t1})"
                    ),
                });
            }
        }
    }
    violations
}

/// Z3 (part 1): committed txids are globally unique.
pub fn check_unique_txids(events: &[HEvent]) -> Vec<Violation> {
    let mut seen: HashMap<u64, String> = HashMap::new();
    let mut violations = Vec::new();
    for event in events {
        if let HEvent::WriteCommitted { session, txid, .. } = event {
            if let Some(prev) = seen.insert(*txid, session.clone()) {
                violations.push(Violation {
                    rule: "Z3",
                    detail: format!("txid {txid} assigned to both {prev} and {session}"),
                });
            }
        }
    }
    violations
}

/// Z3 (part 2): per client and node, observed versions never regress —
/// "if a client observes node Z with version V, it cannot later see
/// version V' < V".
pub fn check_monotonic_reads(events: &[HEvent]) -> Vec<Violation> {
    let mut last: HashMap<(String, String), u64> = HashMap::new();
    let mut violations = Vec::new();
    for event in events {
        if let HEvent::ReadReturned {
            session,
            path,
            modified_txid,
            ..
        } = event
        {
            let key = (session.clone(), path.clone());
            let prev = last.get(&key).copied().unwrap_or(0);
            if *modified_txid < prev {
                violations.push(Violation {
                    rule: "Z3",
                    detail: format!(
                        "session {session} read {path} at txid {modified_txid} after txid {prev}"
                    ),
                });
            }
            last.insert(key, prev.max(*modified_txid));
        }
    }
    violations
}

/// Z4: in each session's observation order, once a watch (triggered by
/// txid `t`) is pending for this client, no read may return data from a
/// transaction newer than `t` before the notification is delivered.
///
/// The pending set is derived from epoch marks observed in reads: a read
/// carrying a mark for one of the session's own watches proves the
/// notification was outstanding at that point.
pub fn check_ordered_notifications(
    events: &[HEvent],
    own_watches: &HashMap<String, HashSet<u64>>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Per session: watch_id -> trigger txid (from delivery events; the
    // delivery carries the triggering txid).
    let mut per_session: HashMap<&str, Vec<&HEvent>> = HashMap::new();
    for event in events {
        per_session.entry(event.session()).or_default().push(event);
    }
    for (session, events) in per_session {
        let Some(mine) = own_watches.get(session) else {
            continue;
        };
        let mut delivered: HashSet<u64> = HashSet::new();
        // txid of each delivered watch, learned on delivery.
        let mut trigger_txid: HashMap<u64, u64> = HashMap::new();
        for event in events {
            match event {
                HEvent::WatchDelivered { watch_id, txid, .. } => {
                    delivered.insert(*watch_id);
                    trigger_txid.insert(*watch_id, *txid);
                }
                HEvent::ReadReturned {
                    path,
                    modified_txid,
                    epoch_marks,
                    ..
                } => {
                    for mark in epoch_marks {
                        if mine.contains(mark) && !delivered.contains(mark) {
                            violations.push(Violation {
                                rule: "Z4",
                                detail: format!(
                                    "session {session} read {path} (txid {modified_txid}) while \
                                     own watch {mark} was pending and undelivered"
                                ),
                            });
                        }
                    }
                    // Also: any delivered watch with trigger txid t must
                    // have been delivered before data newer than t — by
                    // construction of observation order this is implied by
                    // the mark check above; keep the explicit check for
                    // deliveries we know about.
                    for (watch, t) in &trigger_txid {
                        if *modified_txid > *t && !delivered.contains(watch) {
                            violations.push(Violation {
                                rule: "Z4",
                                detail: format!(
                                    "session {session} observed txid {modified_txid} before \
                                     delivery of watch {watch} triggered at {t}"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    violations
}

/// Runs all history validators.
pub fn check_history(
    events: &[HEvent],
    own_watches: &HashMap<String, HashSet<u64>>,
) -> Vec<Violation> {
    let mut violations = check_linearized_writes(events);
    violations.extend(check_unique_txids(events));
    violations.extend(check_monotonic_reads(events));
    violations.extend(check_ordered_notifications(events, own_watches));
    violations
}

/// Z1: structural integrity between system storage and a user store —
/// every existing node is present in the user store, every parent lists
/// exactly its children, and no orphaned records remain once all pending
/// transactions have drained.
pub fn check_tree_integrity(
    ctx: &Ctx,
    system: &SystemStore,
    user: &dyn UserStore,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut nodes: BTreeMap<String, fk_cloud::Item> = BTreeMap::new();
    for (key, item) in system.kv().scan(ctx) {
        if let Some(path) = key.strip_prefix("node:") {
            if SystemStore::node_exists(Some(&item)) {
                nodes.insert(path.to_owned(), item);
            }
        }
    }
    for (path, item) in &nodes {
        let pending = item
            .list(node_attr::TXQ)
            .map(|q| !q.is_empty())
            .unwrap_or(false);
        if pending {
            // In-flight transactions may legitimately differ; integrity is
            // defined over quiescent state.
            continue;
        }
        // Verification reads absorb transient store errors (throttles,
        // injected chaos) with a bounded retry; only a persistent
        // failure counts as a violation.
        let mut read = user.read_node(ctx, path);
        for _ in 0..16 {
            if read.is_ok() {
                break;
            }
            read = user.read_node(ctx, path);
        }
        let record = match read {
            Ok(Some(rec)) => rec,
            Ok(None) => {
                violations.push(Violation {
                    rule: "Z1",
                    detail: format!("{path} exists in system storage but not in user storage"),
                });
                continue;
            }
            Err(e) => {
                violations.push(Violation {
                    rule: "Z1",
                    detail: format!("{path}: user storage error {e}"),
                });
                continue;
            }
        };
        // Children agreement (ignoring order).
        let sys_children: HashSet<String> = item
            .list(node_attr::CHILDREN)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        let user_children: HashSet<String> = record.children.iter().cloned().collect();
        if sys_children != user_children {
            violations.push(Violation {
                rule: "Z1",
                detail: format!(
                    "{path}: children diverge (system {sys_children:?} vs user {user_children:?})"
                ),
            });
        }
        // Every child node must exist; every node's parent must list it.
        for child in &sys_children {
            let child_path = crate::path::join(path, child);
            if !nodes.contains_key(&child_path) {
                violations.push(Violation {
                    rule: "Z1",
                    detail: format!("{path} lists missing child {child}"),
                });
            }
        }
        if let Some(parent) = crate::path::parent(path) {
            let name = crate::path::basename(path);
            let listed = nodes
                .get(parent)
                .and_then(|p| p.list(node_attr::CHILDREN))
                .map(|l| l.iter().any(|v| v.as_str() == Some(name)))
                .unwrap_or(false);
            if !listed {
                violations.push(Violation {
                    rule: "Z1",
                    detail: format!("{path} not listed in parent {parent}"),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(session: &str, rid: u64, txid: u64) -> HEvent {
        HEvent::WriteCommitted {
            session: session.into(),
            request_id: rid,
            txid,
        }
    }

    fn read(session: &str, path: &str, txid: u64, marks: Vec<u64>) -> HEvent {
        HEvent::ReadReturned {
            session: session.into(),
            path: path.into(),
            modified_txid: txid,
            epoch_marks: marks,
        }
    }

    #[test]
    fn z2_accepts_increasing_txids() {
        let events = vec![
            committed("s", 1, 10),
            committed("s", 2, 11),
            committed("s", 3, 20),
        ];
        assert!(check_linearized_writes(&events).is_empty());
    }

    #[test]
    fn z2_rejects_reordered_txids() {
        let events = vec![committed("s", 1, 10), committed("s", 2, 9)];
        let violations = check_linearized_writes(&events);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "Z2");
    }

    #[test]
    fn z2_is_per_session() {
        // Cross-session ordering is explicitly undefined (Appendix A).
        let events = vec![committed("a", 1, 10), committed("b", 1, 5)];
        assert!(check_linearized_writes(&events).is_empty());
    }

    #[test]
    fn z3_rejects_duplicate_txids() {
        let events = vec![committed("a", 1, 10), committed("b", 1, 10)];
        let violations = check_unique_txids(&events);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "Z3");
    }

    #[test]
    fn z3_rejects_version_regression() {
        let events = vec![read("s", "/n", 10, vec![]), read("s", "/n", 8, vec![])];
        let violations = check_monotonic_reads(&events);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn z3_accepts_monotone_reads_across_paths() {
        let events = vec![
            read("s", "/a", 10, vec![]),
            read("s", "/b", 3, vec![]), // different node: fine
            read("s", "/a", 10, vec![]),
            read("s", "/a", 12, vec![]),
        ];
        assert!(check_monotonic_reads(&events).is_empty());
    }

    #[test]
    fn z4_rejects_read_past_pending_own_watch() {
        let mut own = HashMap::new();
        own.insert("s".to_owned(), HashSet::from([7u64]));
        let events = vec![read("s", "/n", 12, vec![7])];
        let violations = check_ordered_notifications(&events, &own);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "Z4");
    }

    #[test]
    fn z4_accepts_read_after_delivery() {
        let mut own = HashMap::new();
        own.insert("s".to_owned(), HashSet::from([7u64]));
        let events = vec![
            HEvent::WatchDelivered {
                session: "s".into(),
                watch_id: 7,
                txid: 10,
            },
            read("s", "/n", 12, vec![7]),
        ];
        assert!(check_ordered_notifications(&events, &own).is_empty());
    }

    #[test]
    fn z4_ignores_other_clients_watches() {
        let mut own = HashMap::new();
        own.insert("s".to_owned(), HashSet::from([99u64]));
        // Mark 7 belongs to someone else; no stall required.
        let events = vec![read("s", "/n", 12, vec![7])];
        assert!(check_ordered_notifications(&events, &own).is_empty());
    }

    #[test]
    fn recorder_preserves_order() {
        let rec = HistoryRecorder::new();
        rec.record(committed("s", 1, 1));
        rec.record(committed("s", 2, 2));
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            HEvent::WriteCommitted { request_id: 1, .. }
        ));
        assert!(!rec.is_empty());
    }

    #[test]
    fn full_history_check_composes() {
        let events = vec![
            HEvent::WriteSubmitted {
                session: "s".into(),
                request_id: 1,
                path: "/n".into(),
            },
            committed("s", 1, 10),
            read("s", "/n", 10, vec![]),
        ];
        assert!(check_history(&events, &HashMap::new()).is_empty());
    }
}
