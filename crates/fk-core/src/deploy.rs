//! Deployment: wiring FaaSKeeper onto a provider's services (§4, Table 2).
//!
//! The design is cloud-agnostic — only the *requirements* on each service
//! are fixed (FIFO + serverless queue, strongly consistent KV store with
//! conditional updates, object store, free/event/scheduled functions) —
//! and this module binds them to a provider profile: AWS-like
//! (SQS FIFO + DynamoDB + S3 + Lambda) or GCP-like (ordered Pub/Sub +
//! Datastore + Cloud Storage + Cloud Functions), each with its calibrated
//! latency model, service limits and queue flavours.

use crate::client::{ClientConfig, FkClient};
use crate::distributor::{DistributorConfig, PathLockSet};
use crate::follower::{Follower, FollowerConfig, LEADER_GROUP};
use crate::heartbeat::Heartbeat;
use crate::leader::{Leader, WatchDispatcher, WatchHandle};
use crate::notify::ClientBus;
use crate::read_cache::ReadCacheConfig;
use crate::replica::{CommittedFloors, ReplicaConfig, ReplicaSet};
use crate::system_store::SystemStore;
use crate::user_store::{
    HybridUserStore, KvUserStore, MemUserStore, NodeRecord, ObjUserStore, UserStore, UserStoreKind,
};
use crate::watch_fn::{WatchFunction, WatchTask};
use bytes::Bytes;
use fk_cloud::chaos::{Chaos, FaultPlan};
use fk_cloud::faas::{Event, FaasRuntime, FnError, FunctionConfig};
use fk_cloud::kvstore::{KvLimits, KvStore};
use fk_cloud::latency::LatencyModel;
use fk_cloud::metering::Meter;
use fk_cloud::objectstore::ObjectStore;
use fk_cloud::queue::{AdaptiveBatch, Queue, ShardedQueues};
use fk_cloud::trace::{Ctx, LatencyMode};
use fk_cloud::{MemStore, QueueKind, Region};
use std::sync::Arc;
use std::time::Duration;

/// Cloud provider profile (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provider {
    /// SQS FIFO + DynamoDB + S3 + Lambda.
    Aws,
    /// Ordered Pub/Sub + Datastore + Cloud Storage + Cloud Functions.
    Gcp,
}

/// Full deployment configuration.
#[derive(Clone)]
pub struct DeploymentConfig {
    /// Provider profile.
    pub provider: Provider,
    /// Latency realization mode.
    pub mode: LatencyMode,
    /// RNG seed for latency sampling.
    pub seed: u64,
    /// Replica regions; the first is primary (system storage lives there).
    pub regions: Vec<Region>,
    /// User-data backend.
    pub user_store: UserStoreKind,
    /// Follower function sizing.
    pub follower_fn: FunctionConfig,
    /// Leader function sizing.
    pub leader_fn: FunctionConfig,
    /// Watch function sizing.
    pub watch_fn: FunctionConfig,
    /// Heartbeat function sizing.
    pub heartbeat_fn: FunctionConfig,
    /// Concurrent follower pollers (horizontal write scaling, §4.3).
    pub follower_concurrency: usize,
    /// Bounds of the follower trigger's adaptive batch window
    /// ([`AdaptiveBatch`]): the window grows toward `follower_batch_max`
    /// while the write queue stays backlogged and shrinks toward
    /// `follower_batch_min` when it runs dry. Equal bounds pin the
    /// window (the pre-adaptive fixed batch of 10 is `(10, 10)`).
    pub follower_batch: (usize, usize),
    /// Distributor pipeline: path-shard count, epoch batch size, and the
    /// leader-tier width (`distributor.groups` shard groups, each with
    /// its own FIFO queue and leader function instance) for the fan-out
    /// to the replicated user stores.
    pub distributor: DistributorConfig,
    /// Default client read-cache bounds for sessions connected through
    /// this deployment (capacity 0 = uncached passthrough; individual
    /// `ClientConfig`s may override).
    pub read_cache: ReadCacheConfig,
    /// Shared regional read-replica tier ([`crate::replica`]): per-region
    /// replica count, byte budget and injected feed lag. Disabled by
    /// default — a disabled tier leaves every read path byte-identical
    /// to a deployment without one.
    pub replicas: ReplicaConfig,
    /// Shard groups initially *accepting writes*, out of the
    /// `distributor.groups` provisioned (queues and leader functions
    /// exist for all of them). `None` — the default — activates every
    /// provisioned group. Provisioning spare groups up front is what
    /// makes a live scale-out ([`Deployment::scale_out`]) a pure
    /// membership change: no new infrastructure appears mid-run.
    pub active_groups: Option<usize>,
    /// Seeded fault-injection plan ([`fk_cloud::chaos`]). Disabled by
    /// default — a disabled plan installs no engine and leaves every
    /// code path byte-identical to a deployment without one.
    pub chaos: FaultPlan,
    /// Timed-lock maximum holding time.
    pub max_lock_hold_ms: i64,
    /// Heartbeat cadence; `None` disables the scheduled trigger.
    pub heartbeat_interval: Option<Duration>,
    /// Maximum node payload (§4.4; provider dependent).
    pub max_node_bytes: usize,
    /// Back the system KV table with the embedded LSM engine
    /// ([`fk_store`]): every committed system mutation — each
    /// conditional update and each multi-item transaction as one
    /// atomic WAL batch — is logged and fsynced before it is applied.
    /// Off by default; [`UserStoreKind::Durable`] independently selects
    /// the durable *user* store.
    pub durable_system: bool,
}

impl DeploymentConfig {
    /// AWS-like profile with the paper's defaults (2048 MB functions,
    /// us-east-1, object-store user data).
    pub fn aws() -> Self {
        DeploymentConfig {
            provider: Provider::Aws,
            mode: LatencyMode::Disabled,
            seed: 0xFAA5,
            regions: vec![Region::US_EAST_1],
            user_store: UserStoreKind::Object,
            follower_fn: FunctionConfig::default_2048(),
            leader_fn: FunctionConfig::default_2048(),
            watch_fn: FunctionConfig::default_2048(),
            heartbeat_fn: FunctionConfig::default_2048().with_memory(512),
            follower_concurrency: 4,
            follower_batch: (1, 10),
            distributor: DistributorConfig::default(),
            read_cache: ReadCacheConfig::disabled(),
            replicas: ReplicaConfig::disabled(),
            active_groups: None,
            chaos: FaultPlan::disabled(),
            max_lock_hold_ms: 5_000,
            heartbeat_interval: None,
            max_node_bytes: 1024 * 1024,
            durable_system: false,
        }
    }

    /// GCP-like profile (us-central1, ordered Pub/Sub, Datastore).
    pub fn gcp() -> Self {
        DeploymentConfig {
            provider: Provider::Gcp,
            regions: vec![Region::GCP_US_CENTRAL1],
            ..Self::aws()
        }
    }

    /// Builder: latency mode + seed.
    pub fn with_mode(mut self, mode: LatencyMode, seed: u64) -> Self {
        self.mode = mode;
        self.seed = seed;
        self
    }

    /// Builder: user-store backend.
    pub fn with_user_store(mut self, kind: UserStoreKind) -> Self {
        self.user_store = kind;
        self
    }

    /// Builder: function memory for follower+leader (the paper's sweep).
    pub fn with_function_memory(mut self, memory_mb: u32) -> Self {
        self.follower_fn = self.follower_fn.with_memory(memory_mb);
        self.leader_fn = self.leader_fn.with_memory(memory_mb);
        self
    }

    /// Builder: distributor pipeline (shards × epoch batch size).
    pub fn with_distributor(mut self, config: DistributorConfig) -> Self {
        self.distributor = config;
        self
    }

    /// Builder: leader-tier width (shard groups).
    pub fn with_shard_groups(mut self, groups: usize) -> Self {
        self.distributor = self.distributor.with_groups(groups);
        self
    }

    /// Builder: follower trigger batch-window bounds.
    pub fn with_follower_batch(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "invalid follower batch bounds");
        self.follower_batch = (min, max);
        self
    }

    /// Builder: default client read-cache bounds.
    pub fn with_read_cache(mut self, cache: ReadCacheConfig) -> Self {
        self.read_cache = cache;
        self
    }

    /// Builder: shared regional read-replica tier.
    pub fn with_replicas(mut self, replicas: ReplicaConfig) -> Self {
        self.replicas = replicas;
        self
    }

    /// Builder: initially active shard groups (of the provisioned
    /// `distributor.groups`; the rest join later via
    /// [`Deployment::scale_out`]).
    pub fn with_active_groups(mut self, active: usize) -> Self {
        assert!(
            active >= 1 && active <= self.distributor.groups,
            "active groups must be in 1..=provisioned groups"
        );
        self.active_groups = Some(active);
        self
    }

    /// Builder: replica regions.
    pub fn with_regions(mut self, regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "at least one region");
        self.regions = regions;
        self
    }

    /// Builder: seeded fault-injection plan.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Builder: the fully durable profile — LSM-backed system table
    /// *and* user store ([`UserStoreKind::Durable`]).
    pub fn durable(mut self) -> Self {
        self.durable_system = true;
        self.user_store = UserStoreKind::Durable;
        self
    }

    /// Builder: heartbeat schedule.
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = Some(interval);
        self
    }

    /// The latency model for this provider.
    pub fn latency_model(&self) -> LatencyModel {
        match (self.mode, self.provider) {
            (LatencyMode::Disabled, _) => LatencyModel::zero(),
            (_, Provider::Aws) => LatencyModel::aws(),
            (_, Provider::Gcp) => LatencyModel::gcp(),
        }
    }

    /// Queue flavour used for the write and leader queues.
    pub fn queue_kind(&self) -> QueueKind {
        match self.provider {
            Provider::Aws => QueueKind::Fifo,
            Provider::Gcp => QueueKind::PubSubOrdered,
        }
    }

    /// KV limits for the system table.
    pub fn kv_limits(&self) -> KvLimits {
        match self.provider {
            Provider::Aws => KvLimits::dynamodb(),
            Provider::Gcp => KvLimits::datastore(),
        }
    }
}

/// Inline watch dispatcher: runs the watch function synchronously on a
/// virtual-time fork. Used in direct-drive mode (benchmarks) and as the
/// building block of the runtime dispatcher.
pub struct InlineDispatcher {
    watch: Arc<WatchFunction>,
    env: fk_cloud::ExecEnv,
}

impl InlineDispatcher {
    /// Creates a dispatcher running `watch` with the given sandbox env.
    pub fn new(watch: Arc<WatchFunction>, config: FunctionConfig) -> Self {
        InlineDispatcher {
            watch,
            env: config.env(),
        }
    }
}

impl WatchDispatcher for InlineDispatcher {
    fn dispatch(&self, ctx: &Ctx, task: WatchTask) -> WatchHandle {
        // The leader pays an async invocation; delivery proceeds in
        // parallel (forked virtual time).
        ctx.charge(fk_cloud::Op::FnInvokeDirect, task.encode().len());
        let child = ctx.fork();
        child.set_env(self.env);
        let _ = self.watch.run(&child, &task);
        WatchHandle {
            forked: Some(child),
            rx: None,
        }
    }
}

/// Runtime-backed dispatcher: fires the registered watch function
/// asynchronously through the FaaS runtime.
pub struct RuntimeDispatcher {
    runtime: FaasRuntime,
    function: String,
}

impl WatchDispatcher for RuntimeDispatcher {
    fn dispatch(&self, ctx: &Ctx, task: WatchTask) -> WatchHandle {
        match self
            .runtime
            .invoke_async(ctx, &self.function, task.encode())
        {
            Ok(rx) => WatchHandle {
                forked: None,
                rx: Some(rx),
            },
            Err(_) => WatchHandle {
                forked: None,
                rx: None,
            },
        }
    }
}

/// A running FaaSKeeper deployment.
pub struct Deployment {
    config: DeploymentConfig,
    model: Arc<LatencyModel>,
    meter: Meter,
    runtime: FaasRuntime,
    system: SystemStore,
    user_stores: Vec<Arc<dyn UserStore>>,
    staging: ObjectStore,
    write_queue: Queue,
    leader_queues: ShardedQueues,
    path_locks: Arc<PathLockSet>,
    bus: ClientBus,
    /// The regional read-replica tier (empty when disabled).
    replicas: ReplicaSet,
    /// The leaders' distributed-txid high-water marks, piggybacked onto
    /// heartbeat pings.
    floors: Arc<CommittedFloors>,
    /// The chaos engine, when the config's fault plan is enabled.
    chaos: Option<Arc<Chaos>>,
    seed_counter: std::sync::atomic::AtomicU64,
    /// Next checkpoint id ([`Deployment::cut_checkpoint`]).
    checkpoint_counter: std::sync::atomic::AtomicU64,
}

/// Function names registered in the runtime.
pub mod fn_names {
    /// Follower (event function on the write queue).
    pub const FOLLOWER: &str = "fk-follower";
    /// Leader of shard group 0 (event function on that group's queue).
    pub const LEADER: &str = "fk-leader";
    /// Watch delivery (free function).
    pub const WATCH: &str = "fk-watch";
    /// Heartbeat (scheduled function).
    pub const HEARTBEAT: &str = "fk-heartbeat";

    /// The leader function name of a shard group (`fk-leader` for group
    /// 0, so single-group deployments keep the historical name).
    pub fn leader(group: usize) -> String {
        if group == 0 {
            LEADER.to_owned()
        } else {
            format!("{LEADER}-{group}")
        }
    }
}

impl Deployment {
    /// Builds all services and, unless `direct_drive`, registers the four
    /// functions with live queue triggers and schedules.
    fn build(config: DeploymentConfig, direct_drive: bool) -> Self {
        let meter = Meter::new();
        let model = Arc::new(config.latency_model());
        let primary = config.regions[0];
        let qkind = config.queue_kind();
        // A disabled plan yields no engine at all: nothing is installed
        // on any service and the deployment is byte-identical to one
        // built before chaos existed.
        let chaos = Chaos::from_plan(config.chaos.clone());

        let system_kv =
            KvStore::with_limits("fk-system", primary, meter.clone(), config.kv_limits());
        if config.durable_system {
            let mut lsm_config = fk_store::LsmConfig::default();
            if let Some(engine) = &chaos {
                lsm_config.injector = Some(Arc::new(crate::durable::ChaosDiskInjector::new(
                    Arc::clone(engine),
                    Some(meter.clone()),
                )));
            }
            let lsm = fk_store::Lsm::open(Arc::new(fk_store::SimStorage::new()), lsm_config)
                .expect("fresh simulated device opens");
            system_kv
                .attach_durable(lsm)
                .expect("attach durable system store");
        }
        let staging = ObjectStore::new("fk-staging", primary, meter.clone());
        let write_queue = Queue::new("fk-writes", qkind, primary, meter.clone());
        // The leader tier: one FIFO queue per shard group; a width of 1
        // is the paper's single-leader deployment.
        let leader_queues = ShardedQueues::new(
            "fk-leader",
            qkind,
            primary,
            meter.clone(),
            config.distributor.groups,
        );
        let bus = ClientBus::new();

        let user_stores: Vec<Arc<dyn UserStore>> = config
            .regions
            .iter()
            .map(|&region| Self::build_user_store(&config, region, &meter, chaos.as_ref()))
            .collect();

        let runtime = FaasRuntime::new(Arc::clone(&model), config.mode, primary, meter.clone());
        if let Some(engine) = &chaos {
            system_kv.install_chaos(Arc::clone(engine));
            staging.install_chaos(Arc::clone(engine));
            write_queue.install_chaos(Arc::clone(engine));
            leader_queues.install_chaos(engine);
            runtime.install_chaos(Arc::clone(engine));
        }
        let system = SystemStore::new(system_kv, config.max_lock_hold_ms);

        // The replica tier: `config.replicas.count` epoch-fed hot trees
        // per region (none when disabled), plus the committed-floor
        // publication the heartbeat piggybacks.
        let groups = config.distributor.groups.max(1);
        let replicas = ReplicaSet::build(
            config.replicas,
            &config.regions,
            groups,
            Some(meter.clone()),
        );
        if let Some(engine) = &chaos {
            if !replicas.is_empty() {
                replicas.install_chaos(Arc::clone(engine));
            }
        }
        let floors = Arc::new(CommittedFloors::new(groups));
        // Provisioned-but-inactive groups publish nothing; excluding
        // them keeps the cluster-wide committed min from pinning at 0
        // until they join ([`crate::transfer::activate_group`]).
        let active = config.active_groups.unwrap_or(groups).clamp(1, groups);
        for group in active..groups {
            floors.set_active(group, false);
        }

        let deployment = Deployment {
            config,
            model,
            meter,
            runtime,
            system,
            user_stores,
            staging,
            write_queue,
            leader_queues,
            path_locks: Arc::new(PathLockSet::new()),
            bus,
            replicas,
            floors,
            chaos,
            seed_counter: std::sync::atomic::AtomicU64::new(1),
            checkpoint_counter: std::sync::atomic::AtomicU64::new(1),
        };
        deployment.seed_root();
        deployment.seed_membership(active);
        if !direct_drive {
            deployment.register_functions();
        }
        deployment
    }

    /// Starts a full deployment with live triggers.
    pub fn start(config: DeploymentConfig) -> Self {
        Self::build(config, false)
    }

    /// Builds services only; the caller drives the function bodies
    /// directly (benchmark harness).
    pub fn direct(config: DeploymentConfig) -> Self {
        Self::build(config, true)
    }

    fn build_user_store(
        config: &DeploymentConfig,
        region: Region,
        meter: &Meter,
        chaos: Option<&Arc<Chaos>>,
    ) -> Arc<dyn UserStore> {
        let name = format!("fk-user-{}", region.0);
        match config.user_store {
            UserStoreKind::Object => {
                let bucket = ObjectStore::new(name, region, meter.clone());
                if let Some(engine) = chaos {
                    bucket.install_chaos(Arc::clone(engine));
                }
                Arc::new(ObjUserStore::new(bucket))
            }
            UserStoreKind::KeyValue => {
                let table = KvStore::with_limits(name, region, meter.clone(), config.kv_limits());
                if let Some(engine) = chaos {
                    table.install_chaos(Arc::clone(engine));
                }
                Arc::new(KvUserStore::new(table))
            }
            UserStoreKind::Hybrid { threshold } => {
                let table =
                    KvStore::with_limits(name.clone(), region, meter.clone(), config.kv_limits());
                let bucket = ObjectStore::new(format!("{name}-large"), region, meter.clone());
                if let Some(engine) = chaos {
                    table.install_chaos(Arc::clone(engine));
                    bucket.install_chaos(Arc::clone(engine));
                }
                Arc::new(HybridUserStore::new(table, bucket, threshold))
            }
            // The in-memory cache backend has no chaos points: it models
            // a node-local cache, not a network round trip.
            UserStoreKind::Cached => {
                Arc::new(MemUserStore::new(MemStore::new(region, meter.clone())))
            }
            // The embedded LSM engine; its disk fault points arm from
            // the same plan as every other service boundary.
            UserStoreKind::Durable => Arc::new(
                crate::durable::DurableUserStore::open_sim(region, meter.clone(), chaos)
                    .expect("fresh simulated device opens"),
            ),
        }
    }

    /// Seeds the root node in system and user storage.
    fn seed_root(&self) {
        let ctx = Ctx::disabled();
        let root = fk_cloud::Item::new()
            .with(crate::system_store::node_attr::CREATED, 1i64)
            .with(crate::system_store::node_attr::VERSION, 1i64)
            .with(crate::system_store::node_attr::VCOUNT, 0i64)
            .with(
                crate::system_store::node_attr::CHILDREN,
                Vec::<fk_cloud::Value>::new(),
            );
        let _ = self.system.kv().put(
            &ctx,
            &crate::system_store::keys::node("/"),
            root,
            fk_cloud::Condition::ItemNotExists,
        );
        let record = NodeRecord {
            path: "/".into(),
            data: Bytes::new(),
            created_txid: 1,
            modified_txid: 1,
            version: 0,
            children: Arc::new(vec![]),
            children_txid: 1,
            ephemeral_owner: None,
            epoch_marks: Arc::new(vec![]),
        };
        for store in &self.user_stores {
            let _ = store.write_node(&ctx, &record);
        }
    }

    /// Publishes the initial membership record. Single-group tiers skip
    /// it entirely: followers never read membership at width 1 (static
    /// by construction), so those deployments stay byte-identical.
    fn seed_membership(&self, active: usize) {
        if self.config.distributor.groups <= 1 {
            return;
        }
        let ctx = Ctx::disabled();
        let membership = crate::system_store::Membership::all_active(active);
        let _ = fk_cloud::retry::with_retry(
            &ctx,
            &self.meter,
            &fk_cloud::retry::RetryPolicy::standard(),
            "deploy.membership",
            || self.system.write_membership(&ctx, &membership),
        );
    }

    fn register_functions(&self) {
        let follower = Arc::new(self.make_follower());
        self.runtime
            .register(
                fn_names::FOLLOWER,
                self.config.follower_fn,
                move |ctx: &Ctx, event: &Event| match event {
                    Event::Queue { messages } => follower
                        .process_messages(ctx, messages)
                        .map(|_| Bytes::new()),
                    _ => Err(FnError::fatal("follower requires queue events")),
                },
            )
            .expect("register follower");
        // The follower's batch window rides the AIMD controller instead
        // of the historical fixed 10: small batches (low latency) when
        // the write queue is quiet, growing toward the cap under load.
        let (follower_min, follower_max) = self.config.follower_batch;
        self.runtime
            .attach_queue_trigger_adaptive(
                fn_names::FOLLOWER,
                self.write_queue.clone(),
                Arc::new(AdaptiveBatch::new(follower_min, follower_max)),
                self.config.follower_concurrency,
            )
            .expect("attach follower trigger");

        let watch = Arc::new(self.make_watch_fn());
        self.runtime
            .register(
                fn_names::WATCH,
                self.config.watch_fn,
                move |ctx: &Ctx, event: &Event| match event {
                    Event::Direct { payload } => {
                        let task = WatchTask::decode(payload)
                            .ok_or_else(|| FnError::fatal("bad watch task"))?;
                        watch
                            .run(ctx, &task)
                            .map(|_| Bytes::new())
                            .map_err(|e| FnError::retryable(e.to_string()))
                    }
                    _ => Err(FnError::fatal("watch requires direct invocation")),
                },
            )
            .expect("register watch");

        // One leader function instance per shard group, each consuming
        // its own FIFO queue (single active instance per group — the
        // queue's one ordering group enforces it).
        let dispatcher = Arc::new(RuntimeDispatcher {
            runtime: self.runtime.clone(),
            function: fn_names::WATCH.to_owned(),
        });
        for group in 0..self.config.distributor.groups {
            let leader = Arc::new(self.make_leader(dispatcher.clone()));
            let name = fn_names::leader(group);
            self.runtime
                .register(
                    &name,
                    self.config.leader_fn,
                    move |ctx: &Ctx, event: &Event| match event {
                        Event::Queue { messages } => {
                            leader.process_messages(ctx, messages).map(|_| Bytes::new())
                        }
                        _ => Err(FnError::fatal("leader requires queue events")),
                    },
                )
                .expect("register leader");
            // Each group's trigger rides its own AIMD window when the
            // pipeline is adaptive (per-group drain windows: one hot
            // group widening its batches never forces wide batches — and
            // their latency — on a quiet group). A non-adaptive pipeline
            // keeps the historical fixed window.
            if self.config.distributor.is_adaptive() {
                self.runtime
                    .attach_queue_trigger_adaptive(
                        &name,
                        self.leader_queues.queue(group).clone(),
                        Arc::new(AdaptiveBatch::new(
                            self.config.distributor.min_batch,
                            self.config.distributor.max_batch,
                        )),
                        1,
                    )
                    .expect("attach leader trigger");
            } else {
                self.runtime
                    .attach_queue_trigger(
                        &name,
                        self.leader_queues.queue(group).clone(),
                        self.config.distributor.max_batch,
                        1,
                    )
                    .expect("attach leader trigger");
            }
        }

        let heartbeat = Arc::new(self.make_heartbeat());
        self.runtime
            .register(
                fn_names::HEARTBEAT,
                self.config.heartbeat_fn,
                move |ctx: &Ctx, _event: &Event| {
                    heartbeat
                        .run(ctx)
                        .map(|_| Bytes::new())
                        .map_err(|e| FnError::retryable(e.to_string()))
                },
            )
            .expect("register heartbeat");
        if let Some(interval) = self.config.heartbeat_interval {
            self.runtime
                .attach_schedule(fn_names::HEARTBEAT, interval)
                .expect("attach heartbeat schedule");
        }
    }

    // ------------------------------------------------------------------
    // Function-body factories (shared by triggers and direct drive)
    // ------------------------------------------------------------------

    /// A follower body bound to this deployment's services.
    pub fn make_follower(&self) -> Follower {
        Follower::new(
            self.system.clone(),
            self.leader_queues.clone(),
            self.bus.clone(),
            FollowerConfig {
                max_node_bytes: self.config.max_node_bytes,
                ..FollowerConfig::default()
            },
        )
    }

    /// A leader body with the given watch dispatcher, running the
    /// deployment's distributor pipeline. All leaders made from one
    /// deployment share its [`PathLockSet`], which is what keeps
    /// cross-shard-group record merges atomic.
    pub fn make_leader(&self, dispatcher: Arc<dyn WatchDispatcher>) -> Leader {
        let mut leader = Leader::with_shared(
            self.system.clone(),
            self.user_stores.clone(),
            self.staging.clone(),
            self.bus.clone(),
            dispatcher,
            self.config.distributor,
            Arc::clone(&self.path_locks),
        );
        // Every leader publishes committed floors (the heartbeat's MRD
        // piggyback feeds off them even without a replica tier) and, when
        // the tier is enabled, feeds the replicas its epoch stream.
        leader.attach_floors(Arc::clone(&self.floors));
        if !self.replicas.is_empty() {
            leader.attach_replicas(self.replicas.clone());
        }
        leader
    }

    /// A leader body with inline (synchronous, virtual-time-forked) watch
    /// dispatch — for direct-drive benchmarking.
    pub fn make_leader_inline(&self) -> Leader {
        let dispatcher = Arc::new(InlineDispatcher::new(
            Arc::new(self.make_watch_fn()),
            self.config.watch_fn,
        ));
        self.make_leader(dispatcher)
    }

    /// The watch function body.
    pub fn make_watch_fn(&self) -> WatchFunction {
        WatchFunction::new(self.system.clone(), self.bus.clone())
    }

    /// The heartbeat function body. Pings piggyback the leaders'
    /// committed floor so idle sessions' MRD keeps advancing.
    pub fn make_heartbeat(&self) -> Heartbeat {
        Heartbeat::new(
            self.system.clone(),
            self.bus.clone(),
            self.write_queue.clone(),
        )
        .with_floors(Arc::clone(&self.floors))
    }

    // ------------------------------------------------------------------
    // Membership changes (checkpoint / state-transfer tentpole)
    // ------------------------------------------------------------------

    /// The current shard-group membership (strong read; `None` for
    /// single-group tiers, which are static by construction).
    pub fn membership(&self, ctx: &Ctx) -> Option<crate::system_store::Membership> {
        if self.config.distributor.groups <= 1 {
            return None;
        }
        self.system.read_membership(ctx)
    }

    fn write_membership(
        &self,
        ctx: &Ctx,
        membership: &crate::system_store::Membership,
    ) -> fk_cloud::CloudResult<()> {
        fk_cloud::retry::with_retry(
            ctx,
            &self.meter,
            &fk_cloud::retry::RetryPolicy::standard(),
            "deploy.membership",
            || self.system.write_membership(ctx, membership),
        )
    }

    /// Cuts a consistent checkpoint of the user-store tree into the
    /// staging bucket ([`crate::transfer::cut_checkpoint`]) and returns
    /// its manifest. Ids are deployment-local and monotone.
    pub fn cut_checkpoint(
        &self,
        ctx: &Ctx,
    ) -> fk_cloud::CloudResult<crate::transfer::CheckpointManifest> {
        let id = self
            .checkpoint_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        crate::transfer::cut_checkpoint(
            ctx,
            id,
            &self.user_stores[0],
            &self.staging,
            &self.meter,
            &self.floors,
            &self.replicas,
            self.config.regions.len(),
        )
    }

    /// Live scale-out to `active` write-accepting groups (≤ the
    /// provisioned width): cuts a checkpoint, activates each joining
    /// group from its floors ([`crate::transfer::activate_group`] seeds
    /// the group's txid counter past everything checkpointed and
    /// publishes its committed floor), then publishes the widened
    /// membership. Followers re-hash across the new width from their
    /// next batch; keys that move groups stay Z2-ordered through the
    /// per-session txid floors.
    pub fn scale_out(
        &self,
        ctx: &Ctx,
        active: usize,
    ) -> fk_cloud::CloudResult<crate::transfer::CheckpointManifest> {
        let provisioned = self.config.distributor.groups;
        assert!(
            active <= provisioned,
            "cannot activate beyond the provisioned {provisioned} groups"
        );
        let manifest = self.cut_checkpoint(ctx)?;
        let mut membership = self
            .membership(ctx)
            .unwrap_or_else(|| crate::system_store::Membership::all_active(provisioned));
        for group in membership.active_groups..active {
            crate::transfer::activate_group(
                ctx,
                group,
                &self.system,
                &self.meter,
                &self.floors,
                &manifest,
            )?;
        }
        if active > membership.active_groups {
            membership.active_groups = active;
            self.write_membership(ctx, &membership)?;
        }
        Ok(manifest)
    }

    /// Marks `group` as draining toward `successor`: new submissions
    /// that hash to `group` re-route from the followers' next batch on,
    /// while everything already in its queue finishes under the normal
    /// Z2 hold-back. The group's leader keeps consuming its queue until
    /// [`Deployment::complete_drain`].
    pub fn begin_drain(
        &self,
        ctx: &Ctx,
        group: usize,
        successor: usize,
    ) -> fk_cloud::CloudResult<()> {
        let provisioned = self.config.distributor.groups;
        assert!(
            group < provisioned && successor < provisioned && group != successor,
            "drain endpoints must be distinct provisioned groups"
        );
        let mut membership = self
            .membership(ctx)
            .unwrap_or_else(|| crate::system_store::Membership::all_active(provisioned));
        if !membership.is_draining(group) {
            membership.draining.push((group, successor));
            self.write_membership(ctx, &membership)?;
        }
        Ok(())
    }

    /// Finishes a drain: requires the group's leader queue to be empty
    /// (every in-flight transaction distributed), quiesces the replica
    /// feed, and retires the group's committed floor from the
    /// cluster-wide min. The drain redirect stays in the membership
    /// record — the hash width still includes the drained group, so its
    /// keys must keep re-routing.
    pub fn complete_drain(&self, ctx: &Ctx, group: usize) -> fk_cloud::CloudResult<()> {
        let pending = self.leader_queues.queue(group).pending();
        if pending > 0 {
            return Err(fk_cloud::CloudError::InvalidOperation {
                detail: format!(
                    "group {group} still has {pending} queued records; drain is not complete"
                ),
            });
        }
        // Reconcile before retiring the floor: a trailing chaos-dropped
        // feed frame has no successor to trigger its gap repair, and the
        // floor must not advance past state the replicas never saw.
        self.replicas.reconcile(ctx);
        self.floors.set_active(group, false);
        Ok(())
    }

    /// Bootstraps a new read replica into `region_idx` from checkpoint
    /// `checkpoint_id` ([`crate::transfer::bootstrap_replica`]):
    /// installs the snapshot, replays the retained feed-log suffix, and
    /// registers the replica with the region's tier. `Ok(None)` when
    /// the feed log no longer retains the suffix (cut a fresh
    /// checkpoint and retry).
    pub fn bootstrap_replica(
        &self,
        ctx: &Ctx,
        region_idx: usize,
        checkpoint_id: u64,
    ) -> fk_cloud::CloudResult<Option<Arc<crate::replica::ReadReplica>>> {
        crate::transfer::bootstrap_replica(
            ctx,
            checkpoint_id,
            region_idx,
            &self.staging,
            &self.meter,
            &self.replicas,
        )
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Deployment configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The usage meter shared by all services.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The latency model in effect.
    pub fn model(&self) -> &Arc<LatencyModel> {
        &self.model
    }

    /// System storage.
    pub fn system(&self) -> &SystemStore {
        &self.system
    }

    /// User store replica for the primary region.
    pub fn user_store(&self) -> &Arc<dyn UserStore> {
        &self.user_stores[0]
    }

    /// All user-store replicas.
    pub fn user_stores(&self) -> &[Arc<dyn UserStore>] {
        &self.user_stores
    }

    /// The session write queue.
    pub fn write_queue(&self) -> &Queue {
        &self.write_queue
    }

    /// Shard group 0's follower→leader FIFO queue (the only one in a
    /// single-leader deployment).
    pub fn leader_queue(&self) -> &Queue {
        self.leader_queues.queue(0)
    }

    /// The whole leader tier: one FIFO queue per shard group.
    pub fn leader_queues(&self) -> &ShardedQueues {
        &self.leader_queues
    }

    /// The leader queues' ordering group name.
    pub fn leader_group(&self) -> &'static str {
        LEADER_GROUP
    }

    /// The client notification bus.
    pub fn bus(&self) -> &ClientBus {
        &self.bus
    }

    /// The regional read-replica tier (empty when disabled).
    pub fn replicas(&self) -> &ReplicaSet {
        &self.replicas
    }

    /// The leaders' committed-floor publication (heartbeat piggyback).
    pub fn floors(&self) -> &Arc<CommittedFloors> {
        &self.floors
    }

    /// The chaos engine, when the config's fault plan is enabled.
    /// Gate tests use it to assert that faults actually fired.
    pub fn chaos(&self) -> Option<&Arc<Chaos>> {
        self.chaos.as_ref()
    }

    /// The staging bucket for oversized payloads.
    pub fn staging(&self) -> &ObjectStore {
        &self.staging
    }

    /// The FaaS runtime.
    pub fn runtime(&self) -> &FaasRuntime {
        &self.runtime
    }

    /// A fresh client-side context with a unique latency seed.
    pub fn client_ctx(&self) -> Ctx {
        let seed = self
            .seed_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let ctx = Ctx::new(
            Arc::clone(&self.model),
            self.config.mode,
            self.config.seed ^ seed,
        );
        ctx.set_region(self.config.regions[0]);
        ctx
    }

    /// Connects a client session.
    pub fn connect(&self, session_id: impl Into<String>) -> crate::api::FkResult<FkClient> {
        self.connect_with(ClientConfig::new(session_id))
    }

    /// Connects with explicit client configuration. A config that left
    /// the read cache unset inherits the deployment's
    /// [`DeploymentConfig::read_cache`] bounds (an explicitly pinned
    /// config — even a disabled one — wins); either way the cache
    /// reports hit/miss counters to the deployment meter.
    pub fn connect_with(&self, mut config: ClientConfig) -> crate::api::FkResult<FkClient> {
        if config.read_cache.is_none() {
            config.read_cache = Some(self.config.read_cache);
        }
        if config.cache_meter.is_none() {
            config.cache_meter = Some(self.meter.clone());
        }
        if config.replica.is_none() {
            // Pin the session to one of the local region's replicas (a
            // disabled tier yields `None` and the read path is unchanged).
            config.replica = self.replicas.replica_for(&config.session_id);
        }
        FkClient::connect(
            config,
            self.client_ctx(),
            self.system.clone(),
            Arc::clone(&self.user_stores[0]),
            self.staging.clone(),
            self.write_queue.clone(),
            self.bus.clone(),
        )
    }

    /// Stops triggers and schedules; queues are closed.
    pub fn shutdown(&self) {
        self.write_queue.close();
        self.leader_queues.close();
        self.runtime.shutdown();
    }
}
