//! The distributor: sharded, epoch-batched application of committed
//! transactions to the replicated user stores.
//!
//! The paper's leader profile (Table 3 "Update Node") is dominated by the
//! sequential, per-transaction replication of node data to every region's
//! user store. This subsystem restructures that hot path:
//!
//! 1. **Epoch batching** — the leader drains its FIFO queue in batches
//!    ([`fk_cloud::queue::Queue::receive_up_to`]) and splits each batch
//!    into *epochs*: maximal runs of transactions in which only the last
//!    one fires watch notifications. Within an epoch the region epoch
//!    counters (§3.4) cannot change, so every write observes the same
//!    epoch marks and the per-transaction mark fetch collapses to one
//!    read per region per epoch.
//! 2. **Path sharding** — the effects of an epoch (node writes, deletes,
//!    parent children-list rewrites) are partitioned by a stable
//!    path-hash ([`shard_of`]). All effects on one path land in one
//!    shard, so per-key apply order is preserved while distinct shards
//!    proceed independently.
//! 3. **Parallel fan-out** — one worker per (replica region × shard)
//!    applies its shard's effects through the batched store interface
//!    ([`UserStore::write_batch`] / [`UserStore::delete_batch`]),
//!    coalescing repeated writes to the same path into the final state.
//!    Workers run on real threads and on forked virtual-time contexts,
//!    so both wall-clock and simulated latency reflect the parallelism.
//! 4. **Ordered finalization** — a single epoch-counter bump per region
//!    publishes all watch ids fired by the epoch before any later
//!    transaction commits (Z4), client notifications go out in txid
//!    order (Z2), and the per-node pending queues are popped with
//!    coalesced conditional updates ([`crate::commit::pop_pending`]).
//!
//! The formal serverless model of Gabbrielli et al. ("No more, no less")
//! licenses exactly this transformation: fan-out is unobservable as long
//! as per-key ordering and the epoch guarantees survive, which the Z1–Z4
//! property tests (`tests/consistency_properties.rs`) check end to end.

use crate::messages::{LeaderRecord, UserUpdate};
use crate::system_store::SystemStore;
use crate::user_store::{NodeRecord, UserStore};
use bytes::Bytes;
use fk_cloud::retry::{with_retry, RetryPolicy};
use fk_cloud::trace::Ctx;
use fk_cloud::{CloudResult, Meter, Region};
use std::collections::HashMap;
use std::sync::Arc;

pub use fk_cloud::queue::{shard_of, AdaptiveBatch};

/// Configuration of the leader's distribution pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributorConfig {
    /// Number of path shards fanned out in parallel per region.
    pub shards: usize,
    /// Maximum transactions drained from the leader queue per batch.
    pub max_batch: usize,
    /// Lower bound of the epoch batch window. When `min_batch <
    /// max_batch` the leader adapts its drain window between epochs from
    /// observed queue depth ([`AdaptiveBatch`]); `min_batch == max_batch`
    /// (the default) keeps the window static.
    pub min_batch: usize,
    /// Width of the leader tier: the number of shard groups, each with
    /// its own FIFO queue and its own leader function instance. `1` (the
    /// default) is the paper's single-leader deployment. With more than
    /// one group the distributor switches to the cross-group-safe apply
    /// path (children-list merging by `children_txid`).
    pub groups: usize,
    /// Coalesce the per-session distribution high-water-mark updates of
    /// an epoch into chunked multi-item transactions
    /// ([`crate::system_store::SystemStore::advance_sessions_applied_batch`]).
    /// `true` (the default) turns N conditional writes per epoch into
    /// ⌈N/25⌉; `false` keeps the historical one-update-per-session
    /// epilogue — the baseline the `write_amplification` gate measures
    /// against. Only meaningful in multi-group tiers (single-group
    /// leaders never write the marks at all).
    pub batched_marks: bool,
    /// Coalesce the per-path `txq` pops of an epoch's finalization into
    /// chunked ≤ 25-item transactions with per-item head guards
    /// ([`crate::commit::pop_pending_batch`]). `true` (the default)
    /// turns one conditional update per distinct path per epoch into
    /// ⌈paths/25⌉ write requests; `false` keeps the historical
    /// per-path pops — the baseline the `write_amplification` gate
    /// measures against.
    pub batched_pops: bool,
}

impl Default for DistributorConfig {
    fn default() -> Self {
        DistributorConfig {
            shards: 4,
            max_batch: 16,
            min_batch: 16,
            groups: 1,
            batched_marks: true,
            batched_pops: true,
        }
    }
}

impl DistributorConfig {
    /// A pipeline with explicit shard count and (static) batch size.
    pub fn new(shards: usize, max_batch: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(max_batch > 0, "at least one transaction per batch");
        DistributorConfig {
            shards,
            max_batch,
            min_batch: max_batch,
            groups: 1,
            batched_marks: true,
            batched_pops: true,
        }
    }

    /// Builder: switch the epoch-finalization `txq` pops between the
    /// chunked transactional path and the per-path conditional updates.
    pub fn with_batched_pops(mut self, batched: bool) -> Self {
        self.batched_pops = batched;
        self
    }

    /// Builder: run `groups` shard-group leaders instead of one.
    pub fn with_groups(mut self, groups: usize) -> Self {
        assert!(groups > 0, "at least one shard group");
        assert!(
            groups < crate::system_store::txid::MAX_GROUPS,
            "shard group count exceeds the txid group-id space"
        );
        self.groups = groups;
        self
    }

    /// The pre-distributor behaviour: one transaction at a time through a
    /// single worker. Used as the baseline in `distributor_path` benches.
    pub fn sequential() -> Self {
        Self::new(1, 1)
    }

    /// Builder: switch the session-mark epilogue between the coalesced
    /// transactional path and the per-session conditional updates.
    pub fn with_batched_marks(mut self, batched: bool) -> Self {
        self.batched_marks = batched;
        self
    }

    /// Builder: adapt the epoch batch window between `min_batch` and
    /// `max_batch` from observed queue depth.
    pub fn with_adaptive_batch(mut self, min_batch: usize) -> Self {
        assert!(min_batch > 0, "at least one transaction per batch");
        assert!(
            min_batch <= self.max_batch,
            "adaptive floor above the batch cap"
        );
        self.min_batch = min_batch;
        self
    }

    /// True if the leader should adapt its batch window.
    pub fn is_adaptive(&self) -> bool {
        self.min_batch < self.max_batch
    }
}

/// A committed transaction ready for distribution: the decoded leader
/// record plus its resolved payload bytes.
pub struct CommittedTx<'a> {
    /// Index of the originating message in the queue batch (for partial
    /// batch failure reporting).
    pub msg_index: usize,
    /// Transaction id (the leader-queue sequence number).
    pub txid: u64,
    /// The confirmed change.
    pub record: &'a LeaderRecord,
    /// Payload bytes (inline base64 decoded, or fetched from staging).
    pub data: Bytes,
    /// Per-sub payload bytes of a multi record, aligned with
    /// `record.ops` (empty for single-op records).
    pub multi_data: Vec<Bytes>,
}

/// One storage effect of a transaction, keyed by the path it touches.
///
/// Children lists are lifted into `Arc`s **once per epoch** when the
/// effect is built; every (region × shard) worker that materializes a
/// record from the effect then shares the list (and the `Bytes` payload)
/// instead of deep-copying it per fork — the clone-free half of the
/// fan-out's I/O diet.
enum Effect<'a> {
    /// Write (create or replace) the node record.
    Write {
        txid: u64,
        update: &'a UserUpdate,
        data: &'a Bytes,
        /// The record's children snapshot, shared across all workers.
        children: Arc<Vec<String>>,
    },
    /// Delete the node record.
    Delete { path: &'a str },
    /// Rewrite a parent's children list, preserving the rest of its
    /// record (the read-modify-write of `update_children` in the
    /// sequential leader).
    Children {
        parent: &'a str,
        children: Arc<Vec<String>>,
        txid: u64,
    },
}

impl Effect<'_> {
    fn path(&self) -> &str {
        match self {
            Effect::Write { update, .. } => match update {
                UserUpdate::WriteNode { path, .. } => path,
                _ => unreachable!("write effect is only built for WriteNode"),
            },
            Effect::Delete { path } => path,
            Effect::Children { parent, .. } => parent,
        }
    }
}

/// Final state of one path after replaying an epoch's effects.
enum PendingOp {
    Write(NodeRecord),
    Delete,
}

/// Insertion-ordered key→value map: the coalescing primitive behind the
/// shard replay and the finalize bookkeeping (first touch fixes the
/// position, later touches update the value in place).
struct OrderedMap<K: Eq + std::hash::Hash + Clone, V> {
    order: Vec<K>,
    map: HashMap<K, V>,
}

impl<K: Eq + std::hash::Hash + Clone, V> OrderedMap<K, V> {
    fn new() -> Self {
        OrderedMap {
            order: Vec::new(),
            map: HashMap::new(),
        }
    }

    /// Replaces the value for `key`, keeping its first-touch position.
    fn insert(&mut self, key: K, value: V) {
        if !self.map.contains_key(&key) {
            self.order.push(key.clone());
        }
        self.map.insert(key, value);
    }

    fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: ?Sized + Eq + std::hash::Hash,
    {
        self.map.get(key)
    }

    fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: ?Sized + Eq + std::hash::Hash,
    {
        self.map.get_mut(key)
    }

    /// The value for `key`, inserting `default()` at the current tail
    /// position on first touch.
    fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if !self.map.contains_key(&key) {
            self.order.push(key.clone());
            self.map.insert(key.clone(), default());
        }
        self.map.get_mut(&key).expect("just inserted")
    }

    /// Keys in first-touch order.
    fn keys(&self) -> impl Iterator<Item = &K> {
        self.order.iter()
    }

    /// Consumes the map in first-touch order.
    fn into_entries(mut self) -> impl Iterator<Item = (K, V)> {
        self.order.into_iter().filter_map(move |key| {
            let value = self.map.remove(&key)?;
            Some((key, value))
        })
    }
}

/// Runs `jobs` closures on forked virtual-time contexts, in parallel on
/// real threads, and joins both the threads and the virtual clocks. The
/// closure receives `(job_index, forked_ctx)`.
pub(crate) fn fan_out<F>(ctx: &Ctx, jobs: usize, run: F) -> CloudResult<()>
where
    F: Fn(usize, &Ctx) -> CloudResult<()> + Sync,
{
    match jobs {
        0 => return Ok(()),
        1 => {
            let child = ctx.fork();
            let result = run(0, &child);
            ctx.join(std::slice::from_ref(&child));
            return result;
        }
        _ => {}
    }
    // Forks are created in deterministic order (each draws its RNG seed
    // from the parent), so latency sampling does not depend on thread
    // scheduling.
    let forks: Vec<Ctx> = (0..jobs).map(|_| ctx.fork()).collect();
    let run = &run;
    let results: Vec<CloudResult<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = forks
            .iter()
            .enumerate()
            .map(|(i, child)| scope.spawn(move || run(i, child)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    ctx.join(&forks);
    results.into_iter().collect()
}

/// Striped per-path mutexes shared by every leader instance of one
/// deployment. In multi-group mode two shard-group leaders can
/// read-modify-write the *same* node record concurrently (a parent's
/// children list is rewritten by its children's creates and deletes,
/// which live on the children's shard groups); the stripe makes each
/// RMW atomic. It stands in for the conditional-write / ETag retry loop
/// a real multi-leader deployment would run against DynamoDB or S3 —
/// storage charges are identical, only the interleaving is bounded.
pub struct PathLockSet {
    stripes: Vec<parking_lot::Mutex<()>>,
}

impl PathLockSet {
    /// Creates a 64-stripe lock set.
    pub fn new() -> Self {
        PathLockSet {
            stripes: (0..64).map(|_| parking_lot::Mutex::new(())).collect(),
        }
    }

    fn lock(&self, path: &str) -> parking_lot::MutexGuard<'_, ()> {
        self.stripes[shard_of(path, self.stripes.len())].lock()
    }
}

impl Default for PathLockSet {
    fn default() -> Self {
        Self::new()
    }
}

/// The sharded fan-out stage of the leader (see module docs).
pub struct Distributor {
    system: SystemStore,
    user_stores: Vec<Arc<dyn UserStore>>,
    regions: Vec<Region>,
    config: DistributorConfig,
    locks: Arc<PathLockSet>,
    /// The regional read-replica tier, when deployed: one more
    /// subscriber of the epoch fan-out, fed strictly *after* the
    /// storage waves so a replica can never get ahead of its region's
    /// user store ([`crate::replica`] module docs).
    replicas: Option<crate::replica::ReplicaSet>,
}

impl Distributor {
    /// Creates a distributor over one user-store replica per region with
    /// its own lock set (single-leader deployments never contend on it).
    pub fn new(
        system: SystemStore,
        user_stores: Vec<Arc<dyn UserStore>>,
        config: DistributorConfig,
    ) -> Self {
        Self::with_shared(system, user_stores, config, Arc::new(PathLockSet::new()))
    }

    /// Creates a distributor sharing `locks` with the deployment's other
    /// leader instances (required when `config.groups > 1`).
    pub fn with_shared(
        system: SystemStore,
        user_stores: Vec<Arc<dyn UserStore>>,
        config: DistributorConfig,
        locks: Arc<PathLockSet>,
    ) -> Self {
        let regions = user_stores.iter().map(|s| s.region()).collect();
        Distributor {
            system,
            user_stores,
            regions,
            config,
            locks,
            replicas: None,
        }
    }

    /// Subscribes a read-replica tier to this distributor's committed
    /// epoch stream. Every applied epoch is folded into one
    /// [`crate::replica::EpochDelta`] per region and fed to that
    /// region's replicas after the storage waves complete.
    pub fn attach_replicas(&mut self, replicas: crate::replica::ReplicaSet) {
        if !replicas.is_empty() {
            self.replicas = Some(replicas);
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &DistributorConfig {
        &self.config
    }

    /// The meter retries are reported to (the deployment-shared meter
    /// behind the system table).
    fn meter(&self) -> &Meter {
        self.system.kv().meter()
    }

    /// The replica regions, aligned with the user stores.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Cuts a consistent checkpoint of the primary region's user-store
    /// tree into `staging` ([`crate::transfer::cut_checkpoint`]): the
    /// transfer coordinates — committed floors and per-region feed
    /// sequences — are recorded before the walk, so every epoch at or
    /// below them is fully visible in storage (this distributor feeds
    /// replicas strictly after an epoch's storage waves).
    pub fn cut_checkpoint(
        &self,
        ctx: &Ctx,
        id: u64,
        staging: &fk_cloud::objectstore::ObjectStore,
        floors: &crate::replica::CommittedFloors,
    ) -> CloudResult<crate::transfer::CheckpointManifest> {
        let detached;
        let replicas = match &self.replicas {
            Some(tier) => tier,
            None => {
                detached = crate::replica::ReplicaSet::default();
                &detached
            }
        };
        crate::transfer::cut_checkpoint(
            ctx,
            id,
            &self.user_stores[0],
            staging,
            self.meter(),
            floors,
            replicas,
            self.regions.len(),
        )
    }

    /// Applies one epoch of committed transactions to every replica:
    /// fetches the epoch marks once per region, partitions the effects by
    /// path shard, and fans one worker out per (region × shard).
    ///
    /// Cross-shard visibility order is preserved by applying in three
    /// barrier-separated waves, matching what an observer could see under
    /// the sequential leader: ➀ independent node writes, ➁ writes whose
    /// children list was rewritten (a parent never lists a child before
    /// the child's record exists), ➂ deletes (a node never disappears
    /// before its parent stops listing it).
    pub fn apply_epoch(&self, ctx: &Ctx, items: &[CommittedTx<'_>]) -> CloudResult<()> {
        use parking_lot::Mutex;
        if items.is_empty() {
            return Ok(());
        }
        // One epoch-mark fetch per region per epoch: within an epoch no
        // watch fires, so the marks attached to every write are the same
        // set the sequential leader would have read per transaction. The
        // set is shared (`Arc`) into every record of the epoch.
        let marks: Vec<Arc<Vec<u64>>> = self
            .regions
            .iter()
            .map(|region| Arc::new(self.system.epoch_marks(ctx, *region)))
            .collect();

        let shards = self.config.shards.max(1);
        let mut per_shard: Vec<Vec<Effect<'_>>> = (0..shards).map(|_| Vec::new()).collect();
        for tx in items {
            for effect in effects_of(tx) {
                let shard = shard_of(effect.path(), shards);
                per_shard[shard].push(effect);
            }
        }

        // One job per (region, non-empty shard).
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for region_idx in 0..self.user_stores.len() {
            for (shard_idx, effects) in per_shard.iter().enumerate() {
                if !effects.is_empty() {
                    jobs.push((region_idx, shard_idx));
                }
            }
        }

        // With a multi-leader tier, another shard group may concurrently
        // touch the same parent records; switch to the merge-safe apply.
        if self.config.groups > 1 {
            self.apply_epoch_multi(ctx, &marks, &per_shard, &jobs)?;
            self.feed_replicas(ctx, items, &marks);
            return Ok(());
        }

        // Wave ➀: replay each shard's effects into its final per-path
        // plan (including the read-modify-write base reads), then flush
        // the independent node writes.
        let plans: Vec<Mutex<Option<ShardPlan>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        fan_out(ctx, jobs.len(), |job, child| {
            let (region_idx, shard_idx) = jobs[job];
            let store = self.user_stores[region_idx].as_ref();
            let plan = build_shard_plan(
                child,
                store,
                self.meter(),
                &per_shard[shard_idx],
                &marks[region_idx],
            )?;
            if !plan.node_writes.is_empty() {
                // Whole-record replaces: a retried batch rewrites the
                // same final state, so transient store errors are
                // absorbed per (region × shard) worker.
                with_retry(
                    child,
                    self.meter(),
                    &RetryPolicy::standard(),
                    "dist.write",
                    || store.write_batch(child, &plan.node_writes),
                )?;
            }
            *plans[job].lock() = Some(plan);
            Ok(())
        })?;

        // Waves ➁ and ➂ fan out only the jobs that actually have work —
        // an epoch where one shard rewrote a parent must not spawn idle
        // workers for every other (region × shard) pair.
        let with_work = |f: fn(&ShardPlan) -> bool| -> Vec<usize> {
            (0..jobs.len())
                .filter(|&job| plans[job].lock().as_ref().is_some_and(f))
                .collect()
        };

        // Wave ➁: children-bearing writes (parents and other records
        // touched by a children-list rewrite).
        let wave2 = with_work(|plan| !plan.children_writes.is_empty());
        fan_out(ctx, wave2.len(), |i, child| {
            let job = wave2[i];
            let (region_idx, _) = jobs[job];
            let guard = plans[job].lock();
            let plan = guard.as_ref().expect("plan built in wave 1");
            with_retry(
                child,
                self.meter(),
                &RetryPolicy::standard(),
                "dist.write",
                || {
                    self.user_stores[region_idx]
                        .as_ref()
                        .write_batch(child, &plan.children_writes)
                },
            )
        })?;

        // Wave ➂: deletes.
        let wave3 = with_work(|plan| !plan.deletes.is_empty());
        fan_out(ctx, wave3.len(), |i, child| {
            let job = wave3[i];
            let (region_idx, _) = jobs[job];
            let guard = plans[job].lock();
            let plan = guard.as_ref().expect("plan built in wave 1");
            with_retry(
                child,
                self.meter(),
                &RetryPolicy::standard(),
                "dist.delete",
                || {
                    self.user_stores[region_idx]
                        .as_ref()
                        .delete_batch(child, &plan.deletes)
                },
            )
        })?;
        self.feed_replicas(ctx, items, &marks);
        Ok(())
    }

    /// Folds the epoch into one [`crate::replica::EpochDelta`] per
    /// region and feeds it to the attached replica tier. Runs after the
    /// storage waves in both apply paths, so the replicas strictly
    /// follow storage. The fold reuses [`build_shard_plan_multi`] (the
    /// store-free replay): per-path final writes are encoded once per
    /// region and shared (`Bytes`) across that region's replicas;
    /// standalone children rewrites stay symbolic and patch resident
    /// entries in place on the replica side. No storage reads, no kv
    /// traffic — purely in-memory work on the feeding invocation.
    fn feed_replicas(&self, ctx: &Ctx, items: &[CommittedTx<'_>], marks: &[Arc<Vec<u64>>]) {
        use crate::replica::{EpochDelta, ReplicaOp};
        let Some(replicas) = &self.replicas else {
            return;
        };
        let effects: Vec<Effect<'_>> = items.iter().flat_map(effects_of).collect();

        // The epoch's per-shard-group txid high-water marks. A
        // single-group tier allocates raw queue sequence numbers (group
        // 0); a multi-group tier composes (epoch << GROUP_BITS) | group.
        let groups = self.config.groups.max(1);
        let mut floors = vec![0u64; groups];
        for tx in items {
            let group = if groups > 1 {
                crate::system_store::txid::group_of(tx.txid)
            } else {
                0
            };
            if let Some(floor) = floors.get_mut(group) {
                *floor = (*floor).max(tx.txid);
            }
        }
        let high_water: Arc<Vec<(usize, u64)>> = Arc::new(
            floors
                .into_iter()
                .enumerate()
                .filter(|&(_, hw)| hw > 0)
                .collect(),
        );

        for (region_idx, region_marks) in marks.iter().enumerate() {
            let plan = build_shard_plan_multi(&effects, region_marks);
            let mut ops = Vec::with_capacity(
                plan.node_writes.len() + plan.children_ops.len() + plan.deletes.len(),
            );
            for record in &plan.node_writes {
                ops.push(ReplicaOp::Write {
                    path: record.path.clone(),
                    frame: crate::codec::encode_node(record),
                });
            }
            for op in &plan.children_ops {
                match op {
                    ChildrenOp::Write(record) => ops.push(ReplicaOp::Write {
                        path: record.path.clone(),
                        frame: crate::codec::encode_node(record),
                    }),
                    ChildrenOp::Rewrite {
                        parent,
                        children,
                        txid,
                    } => ops.push(ReplicaOp::Children {
                        parent: parent.clone(),
                        children: Arc::clone(children),
                        txid: *txid,
                    }),
                }
            }
            for path in &plan.deletes {
                ops.push(ReplicaOp::Delete { path: path.clone() });
            }
            let delta = EpochDelta {
                ops: Arc::new(ops),
                marks: Arc::clone(&marks[region_idx]),
                high_water: Arc::clone(&high_water),
                // Stamped by the feed as the frame enters the region's
                // retained log.
                seq: 0,
            };
            replicas.feed(ctx, region_idx, &delta);
        }
    }

    /// The merge-safe apply used when the leader tier has more than one
    /// shard group. Per-path *node-write* order is still total (a path's
    /// transactions all route to one group), but a parent's children
    /// list is rewritten from its children's groups, so plain last-write-
    /// wins would let a stale list clobber a newer one. Every store write
    /// therefore becomes a read-merge-write under the shared
    /// [`PathLockSet`] stripe: children lists are kept from whichever
    /// side carries the larger `children_txid` (lists grow cumulatively
    /// under the parent's follower lock, so the larger txid is the
    /// current truth), and `modified_txid` never regresses. The same
    /// three waves as the single-group path preserve the intra-epoch
    /// parent/child visibility order.
    fn apply_epoch_multi(
        &self,
        ctx: &Ctx,
        marks: &[Arc<Vec<u64>>],
        per_shard: &[Vec<Effect<'_>>],
        jobs: &[(usize, usize)],
    ) -> CloudResult<()> {
        use parking_lot::Mutex;
        let plans: Vec<Mutex<Option<MultiShardPlan>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        // Wave ➀: replay into per-path final ops (no base reads — they
        // happen per write, under the stripe), then flush untouched node
        // writes.
        fan_out(ctx, jobs.len(), |job, child| {
            let (region_idx, shard_idx) = jobs[job];
            let store = self.user_stores[region_idx].as_ref();
            let plan = build_shard_plan_multi(&per_shard[shard_idx], &marks[region_idx]);
            for record in &plan.node_writes {
                self.write_merged(child, store, record)?;
            }
            *plans[job].lock() = Some(plan);
            Ok(())
        })?;

        let with_work = |f: fn(&MultiShardPlan) -> bool| -> Vec<usize> {
            (0..jobs.len())
                .filter(|&job| plans[job].lock().as_ref().is_some_and(f))
                .collect()
        };

        // Wave ➁: children-bearing writes and standalone rewrites.
        let wave2 = with_work(|plan| !plan.children_ops.is_empty());
        fan_out(ctx, wave2.len(), |i, child| {
            let job = wave2[i];
            let (region_idx, _) = jobs[job];
            let store = self.user_stores[region_idx].as_ref();
            let guard = plans[job].lock();
            let plan = guard.as_ref().expect("plan built in wave 1");
            for op in &plan.children_ops {
                match op {
                    ChildrenOp::Write(record) => self.write_merged(child, store, record)?,
                    ChildrenOp::Rewrite {
                        parent,
                        children,
                        txid,
                    } => self.rewrite_children(
                        child,
                        store,
                        parent,
                        children,
                        *txid,
                        &marks[region_idx],
                    )?,
                }
            }
            Ok(())
        })?;

        // Wave ➂: deletes (under the stripe so a racing children rewrite
        // from another group observes either the record or its absence,
        // never a torn interleaving).
        let wave3 = with_work(|plan| !plan.deletes.is_empty());
        fan_out(ctx, wave3.len(), |i, child| {
            let job = wave3[i];
            let (region_idx, _) = jobs[job];
            let store = self.user_stores[region_idx].as_ref();
            let guard = plans[job].lock();
            let plan = guard.as_ref().expect("plan built in wave 1");
            for path in &plan.deletes {
                // Deletion is idempotent; the retry re-takes the stripe
                // so a racing group's rewrite still sees record-or-absent.
                with_retry(
                    child,
                    self.meter(),
                    &RetryPolicy::standard(),
                    "dist.delete",
                    || {
                        let _stripe = self.locks.lock(path);
                        store.delete_node(child, path)
                    },
                )?;
            }
            Ok(())
        })?;
        Ok(())
    }

    /// Writes one node record, merging a concurrently-applied newer
    /// children list (identified by a larger stored `children_txid`)
    /// into the outgoing record instead of clobbering it.
    fn write_merged(
        &self,
        ctx: &Ctx,
        store: &dyn UserStore,
        record: &NodeRecord,
    ) -> CloudResult<()> {
        // The whole read-merge-write repeats under retry (stripe
        // re-taken, base re-read), so a transient failure on either half
        // never leaves a half-merged record behind.
        with_retry(
            ctx,
            self.meter(),
            &RetryPolicy::standard(),
            "dist.write_merged",
            || {
                let _stripe = self.locks.lock(&record.path);
                let base = store.read_node(ctx, &record.path)?;
                let mut record = record.clone();
                if let Some(base) = base {
                    if base.children_txid > record.children_txid {
                        record.children = base.children;
                        record.children_txid = base.children_txid;
                    }
                    record.modified_txid = record.modified_txid.max(base.modified_txid);
                }
                store.replace_node(ctx, &record)
            },
        )
    }

    /// Applies a standalone children-list rewrite (a create/delete whose
    /// parent lives on another shard group's path): drop it if the stored
    /// list is already newer; synthesize a stub if the parent's own node
    /// write has not materialized yet — unless system storage says the
    /// parent is gone (a later delete won), in which case resurrecting it
    /// would leak a record the owning group will never clean up.
    fn rewrite_children(
        &self,
        ctx: &Ctx,
        store: &dyn UserStore,
        parent: &str,
        children: &Arc<Vec<String>>,
        txid: u64,
        marks: &Arc<Vec<u64>>,
    ) -> CloudResult<()> {
        // Retried as a unit: the `children_txid >= txid` guard makes a
        // repeat after a successful-but-unreported write degrade to a
        // no-op rather than a regression.
        with_retry(
            ctx,
            self.meter(),
            &RetryPolicy::standard(),
            "dist.rewrite_children",
            || {
                let _stripe = self.locks.lock(parent);
                match store.read_node(ctx, parent)? {
                    Some(mut record) => {
                        if record.children_txid >= txid {
                            return Ok(());
                        }
                        record.children = Arc::clone(children);
                        record.children_txid = txid;
                        record.modified_txid = record.modified_txid.max(txid);
                        record.epoch_marks = Arc::clone(marks);
                        store.replace_node(ctx, &record)
                    }
                    None => {
                        let item = self.system.get_node(ctx, parent);
                        if !SystemStore::node_exists(item.as_ref()) {
                            return Ok(());
                        }
                        store.replace_node(ctx, &stub_record(parent, children, txid, marks))
                    }
                }
            },
        )
    }

    /// Pops the distributed transactions from their nodes' pending queues
    /// and purges drained tombstones — system-store bookkeeping only, no
    /// user-store access. With `batched_pops` (the default) the per-path
    /// pops coalesce across paths into chunked ≤ 25-item transactions
    /// with per-item head guards ([`crate::commit::pop_pending_batch`]):
    /// N distinct paths per epoch cost ⌈N/25⌉ write requests instead of
    /// N. The historical path shards the per-path conditional updates in
    /// parallel instead (the measured baseline).
    pub fn finalize_epoch(&self, ctx: &Ctx, items: &[CommittedTx<'_>]) -> CloudResult<()> {
        // Per path, in txid order: the txids to pop and whether the last
        // transaction deleted the node. A multi contributes each
        // *mutating* sub path once (checks never enter the txq).
        let mut per_path: OrderedMap<&str, (Vec<u64>, bool)> = OrderedMap::new();
        // A duplicated queue delivery puts the *same* committed record in
        // the epoch twice, but its txid sits in the path's `txq` exactly
        // once — popping once per occurrence would eat the *next*
        // transaction's entry (its commit may already have appended
        // concurrently) and strand it as "already processed" before it
        // ever distributed. Dedupe per path: same-path txids arrive in
        // txid order, so duplicates are adjacent.
        let push_once = |entry: &mut (Vec<u64>, bool), txid: u64| {
            if entry.0.last() != Some(&txid) {
                entry.0.push(txid);
            }
        };
        for tx in items {
            if tx.record.is_multi() {
                for sub in &tx.record.ops {
                    if matches!(sub.user_update, UserUpdate::None) {
                        continue;
                    }
                    let entry = per_path.get_or_insert_with(sub.path.as_str(), Default::default);
                    push_once(entry, tx.txid);
                    entry.1 = sub.is_delete;
                }
                continue;
            }
            if tx.record.path.is_empty() {
                continue;
            }
            let entry = per_path.get_or_insert_with(tx.record.path.as_str(), Default::default);
            push_once(entry, tx.txid);
            entry.1 = tx.record.is_delete;
        }
        if self.config.batched_pops {
            // Chunked transactional pops across paths, then the (rare)
            // tombstone purges for deleted paths.
            let entries: Vec<(&str, &[u64])> = per_path
                .keys()
                .map(|path| {
                    let (txids, _) = per_path.get(path).expect("keyed from map");
                    (*path, txids.as_slice())
                })
                .collect();
            let chunks: Vec<&[(&str, &[u64])]> = entries
                .chunks(crate::system_store::TRANSACT_MAX_ITEMS)
                .collect();
            // A pop chunk's per-item head guards make a repeat after an
            // injected transient (which fires before the mutation) the
            // first effective delivery; a guard mismatch from genuinely
            // newer state is a ConditionFailed and stays fatal.
            fan_out(ctx, chunks.len(), |i, child| {
                with_retry(
                    child,
                    self.meter(),
                    &RetryPolicy::quick(),
                    "dist.pop",
                    || crate::commit::pop_pending_batch(self.system.kv(), child, chunks[i]),
                )
            })?;
            let deleted: Vec<&str> = per_path
                .keys()
                .copied()
                .filter(|path| per_path.get(path).map(|(_, d)| *d).unwrap_or(false))
                .collect();
            return fan_out(ctx, deleted.len(), |i, child| {
                with_retry(
                    child,
                    self.meter(),
                    &RetryPolicy::standard(),
                    "dist.purge",
                    || self.system.purge_tombstone(child, deleted[i]),
                )
            });
        }
        let shards = self.config.shards.max(1);
        let mut per_shard: Vec<Vec<&str>> = (0..shards).map(|_| Vec::new()).collect();
        for path in per_path.keys() {
            per_shard[shard_of(path, shards)].push(path);
        }
        let jobs: Vec<&Vec<&str>> = per_shard.iter().filter(|s| !s.is_empty()).collect();
        fan_out(ctx, jobs.len(), |job, child| {
            for path in jobs[job] {
                let (txids, deleted) = per_path.get(path).expect("partitioned from keys");
                with_retry(
                    child,
                    self.meter(),
                    &RetryPolicy::quick(),
                    "dist.pop",
                    || crate::commit::pop_pending(self.system.kv(), child, path, txids),
                )?;
                if *deleted {
                    with_retry(
                        child,
                        self.meter(),
                        &RetryPolicy::standard(),
                        "dist.purge",
                        || self.system.purge_tombstone(child, path),
                    )?;
                }
            }
            Ok(())
        })
    }
}

/// The 1–2 storage effects of one committed transaction, in order — or,
/// for a multi record, the concatenation of its subs' effects in op
/// order (they share the record's txid: one atomic unit). Runs once per
/// epoch (before the fan-out), so the `Arc` lifts here are the only full
/// copies of the children lists any number of workers pays.
fn effects_of<'a>(tx: &'a CommittedTx<'_>) -> Vec<Effect<'a>> {
    if tx.record.is_multi() {
        let mut effects = Vec::with_capacity(tx.record.ops.len() * 2);
        for (sub, data) in tx.record.ops.iter().zip(&tx.multi_data) {
            effects.extend(effects_of_update(&sub.user_update, data, tx.txid));
        }
        return effects;
    }
    effects_of_update(&tx.record.user_update, &tx.data, tx.txid)
}

/// The effects of one user-store update.
fn effects_of_update<'a>(
    user_update: &'a UserUpdate,
    data: &'a Bytes,
    txid: u64,
) -> Vec<Effect<'a>> {
    match user_update {
        UserUpdate::WriteNode {
            children,
            parent_children,
            ..
        } => {
            let mut effects = vec![Effect::Write {
                txid,
                update: user_update,
                data,
                children: Arc::new(children.clone()),
            }];
            if let Some((parent, children)) = parent_children {
                effects.push(Effect::Children {
                    parent,
                    children: Arc::new(children.clone()),
                    txid,
                });
            }
            effects
        }
        UserUpdate::DeleteNode {
            path,
            parent_children,
        } => {
            let mut effects = vec![Effect::Delete { path }];
            if let Some((parent, children)) = parent_children {
                effects.push(Effect::Children {
                    parent,
                    children: Arc::new(children.clone()),
                    txid,
                });
            }
            effects
        }
        UserUpdate::None => Vec::new(),
    }
}

/// Builds the node record a `WriteNode` update materializes in `region`'s
/// replica (the same construction as the sequential leader). The data
/// payload, children list and epoch marks are *shared* into the record —
/// materializing the same transaction for R regions costs R ref-count
/// bumps, not R deep copies.
fn record_of(
    update: &UserUpdate,
    txid: u64,
    data: &Bytes,
    children: &Arc<Vec<String>>,
    marks: &Arc<Vec<u64>>,
) -> NodeRecord {
    let UserUpdate::WriteNode {
        path,
        created_txid,
        version,
        ephemeral_owner,
        ..
    } = update
    else {
        unreachable!("write effect is only built for WriteNode");
    };
    NodeRecord {
        path: path.clone(),
        data: data.clone(),
        created_txid: if *created_txid == 0 {
            txid
        } else {
            *created_txid
        },
        modified_txid: txid,
        version: *version,
        children: Arc::clone(children),
        // The children snapshot was taken under this node's follower
        // lock, in the same critical section that allocated `txid`.
        children_txid: txid,
        ephemeral_owner: ephemeral_owner.clone(),
        epoch_marks: Arc::clone(marks),
    }
}

/// A children-only stub for a parent whose own record is not (yet, or
/// any more) materialized in this replica — the multi-group counterpart
/// of the sequential `update_children` synthesizing a missing base.
fn stub_record(
    parent: &str,
    children: &Arc<Vec<String>>,
    txid: u64,
    marks: &Arc<Vec<u64>>,
) -> NodeRecord {
    NodeRecord {
        path: parent.to_owned(),
        data: Bytes::new(),
        created_txid: 0,
        modified_txid: txid,
        version: 0,
        children: Arc::clone(children),
        children_txid: txid,
        ephemeral_owner: None,
        epoch_marks: Arc::clone(marks),
    }
}

/// Final per-path operations of one (region × shard) worker, split by
/// application wave (see [`Distributor::apply_epoch`]).
struct ShardPlan {
    /// Wave ➀: node writes untouched by children-list rewrites.
    node_writes: Vec<NodeRecord>,
    /// Wave ➁: writes whose children list was rewritten this epoch.
    children_writes: Vec<NodeRecord>,
    /// Wave ➂: deletes.
    deletes: Vec<String>,
}

/// Replays one shard's effects in order, coalescing to at most one store
/// operation per path (last write wins; children rewrites merge into a
/// pending write or a freshly read base record, exactly like the
/// sequential leader's `update_children`).
fn build_shard_plan(
    ctx: &Ctx,
    store: &dyn UserStore,
    meter: &Meter,
    effects: &[Effect<'_>],
    marks: &Arc<Vec<u64>>,
) -> CloudResult<ShardPlan> {
    // Insertion-ordered path → (final op, touched-by-children) map.
    let mut pending: OrderedMap<String, (PendingOp, bool)> = OrderedMap::new();

    for effect in effects {
        match effect {
            Effect::Write {
                txid,
                update,
                data,
                children,
            } => {
                let record = record_of(update, *txid, data, children, marks);
                let path = record.path.clone();
                let was_children = pending.get(&path).map(|(_, c)| *c).unwrap_or(false);
                pending.insert(path, (PendingOp::Write(record), was_children));
            }
            Effect::Delete { path } => {
                pending.insert((*path).to_owned(), (PendingOp::Delete, false));
            }
            Effect::Children {
                parent,
                children,
                txid,
            } => {
                match pending.get_mut(*parent) {
                    Some((PendingOp::Write(record), touched)) => {
                        record.children = Arc::clone(children);
                        record.children_txid = *txid;
                        record.modified_txid = record.modified_txid.max(*txid);
                        record.epoch_marks = Arc::clone(marks);
                        *touched = true;
                    }
                    other => {
                        // The sequential `update_children` reads the
                        // current record (or synthesizes an empty one) and
                        // rewrites it with the new children list. A
                        // preceding delete in the same epoch behaves like
                        // a missing record.
                        let base = match other {
                            Some((PendingOp::Delete, _)) => None,
                            _ => with_retry(
                                ctx,
                                meter,
                                &RetryPolicy::standard(),
                                "dist.read_base",
                                || store.read_node(ctx, parent),
                            )?,
                        };
                        let mut record = base.unwrap_or_else(|| {
                            stub_record(parent, &Arc::new(Vec::new()), 0, &Arc::new(Vec::new()))
                        });
                        record.children = Arc::clone(children);
                        record.children_txid = *txid;
                        record.modified_txid = record.modified_txid.max(*txid);
                        record.epoch_marks = Arc::clone(marks);
                        pending.insert((*parent).to_owned(), (PendingOp::Write(record), true));
                    }
                }
            }
        }
    }

    let mut plan = ShardPlan {
        node_writes: Vec::new(),
        children_writes: Vec::new(),
        deletes: Vec::new(),
    };
    for (path, entry) in pending.into_entries() {
        match entry {
            (PendingOp::Write(record), false) => plan.node_writes.push(record),
            (PendingOp::Write(record), true) => plan.children_writes.push(record),
            (PendingOp::Delete, _) => plan.deletes.push(path),
        }
    }
    Ok(plan)
}

/// Final per-path operations of one (region × shard) worker in
/// multi-group mode, split by application wave. Unlike [`ShardPlan`],
/// base reads are deferred to apply time (under the path stripe), so the
/// plan keeps standalone children rewrites symbolic.
struct MultiShardPlan {
    /// Wave ➀: node writes untouched by children-list rewrites.
    node_writes: Vec<NodeRecord>,
    /// Wave ➁: children-bearing operations.
    children_ops: Vec<ChildrenOp>,
    /// Wave ➂: deletes.
    deletes: Vec<String>,
}

/// A wave-➁ operation in multi-group mode.
enum ChildrenOp {
    /// A node write whose children list was rewritten this epoch.
    Write(NodeRecord),
    /// A children rewrite for a path with no same-epoch node write;
    /// resolved against the stored record at apply time.
    Rewrite {
        /// The rewritten parent.
        parent: String,
        /// The full children list as of `txid` (shared with the effect).
        children: Arc<Vec<String>>,
        /// Txid of the rewriting transaction.
        txid: u64,
    },
}

/// In-memory replay state of one path in multi-group mode.
enum MultiPending {
    Write {
        record: NodeRecord,
        touched: bool,
    },
    Children {
        children: Arc<Vec<String>>,
        txid: u64,
    },
    Delete,
}

/// Replays one shard's effects in order without touching the store,
/// coalescing to at most one operation per path (mirroring
/// [`build_shard_plan`]'s rules; the read-modify-write halves run at
/// apply time under the shared path stripes).
fn build_shard_plan_multi(effects: &[Effect<'_>], marks: &Arc<Vec<u64>>) -> MultiShardPlan {
    let mut pending: OrderedMap<String, MultiPending> = OrderedMap::new();
    for effect in effects {
        match effect {
            Effect::Write {
                txid,
                update,
                data,
                children,
            } => {
                let record = record_of(update, *txid, data, children, marks);
                // A later write's children snapshot supersedes any
                // earlier same-epoch rewrite (it was taken later under
                // the same node lock); keep the wave-➁ classification so
                // the parent/child ordering stays intact.
                let touched = matches!(
                    pending.get(&record.path),
                    Some(MultiPending::Write { touched: true, .. })
                        | Some(MultiPending::Children { .. })
                );
                pending.insert(record.path.clone(), MultiPending::Write { record, touched });
            }
            Effect::Delete { path } => {
                pending.insert((*path).to_owned(), MultiPending::Delete);
            }
            Effect::Children {
                parent,
                children,
                txid,
            } => match pending.get_mut(*parent) {
                Some(MultiPending::Write { record, touched }) => {
                    record.children = Arc::clone(children);
                    record.children_txid = *txid;
                    record.modified_txid = record.modified_txid.max(*txid);
                    record.epoch_marks = Arc::clone(marks);
                    *touched = true;
                }
                Some(MultiPending::Children {
                    children: pending_children,
                    txid: pending_txid,
                }) => {
                    *pending_children = Arc::clone(children);
                    *pending_txid = *txid;
                }
                Some(MultiPending::Delete) => {
                    // Same-epoch delete-then-rewrite: mirror the
                    // single-group replay, which materializes a stub in
                    // place of the delete.
                    pending.insert(
                        (*parent).to_owned(),
                        MultiPending::Write {
                            record: stub_record(parent, children, *txid, marks),
                            touched: true,
                        },
                    );
                }
                None => {
                    pending.insert(
                        (*parent).to_owned(),
                        MultiPending::Children {
                            children: Arc::clone(children),
                            txid: *txid,
                        },
                    );
                }
            },
        }
    }

    let mut plan = MultiShardPlan {
        node_writes: Vec::new(),
        children_ops: Vec::new(),
        deletes: Vec::new(),
    };
    for (path, entry) in pending.into_entries() {
        match entry {
            MultiPending::Write {
                record,
                touched: false,
            } => plan.node_writes.push(record),
            MultiPending::Write {
                record,
                touched: true,
            } => plan.children_ops.push(ChildrenOp::Write(record)),
            MultiPending::Children { children, txid } => {
                plan.children_ops.push(ChildrenOp::Rewrite {
                    parent: path,
                    children,
                    txid,
                })
            }
            MultiPending::Delete => plan.deletes.push(path),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let c = DistributorConfig::new(8, 32);
        assert_eq!(c.shards, 8);
        assert_eq!(c.max_batch, 32);
        assert_eq!(
            DistributorConfig::sequential(),
            DistributorConfig::new(1, 1)
        );
        assert_eq!(DistributorConfig::default(), DistributorConfig::new(4, 16));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        DistributorConfig::new(0, 1);
    }

    #[test]
    fn adaptive_config_validates_and_classifies() {
        let static_config = DistributorConfig::new(4, 16);
        assert!(!static_config.is_adaptive());
        let adaptive = static_config.with_adaptive_batch(2);
        assert!(adaptive.is_adaptive());
        assert_eq!(adaptive.min_batch, 2);
        assert_eq!(adaptive.max_batch, 16);
    }

    #[test]
    #[should_panic(expected = "adaptive floor above the batch cap")]
    fn adaptive_floor_above_cap_rejected() {
        DistributorConfig::new(4, 8).with_adaptive_batch(9);
    }

    // The AIMD controller's unit tests live next to its implementation
    // in `fk_cloud::queue`; here it is exercised through the leader's
    // drain loop and the DES control loop below.

    /// DES-driven control loop (ROADMAP "Adaptive epoch batch size"):
    /// a burst of arrivals builds queue depth, the drain loop observes
    /// it between epochs, and the window must ride the burst up to the
    /// cap and settle back to the floor once the queue runs dry.
    #[test]
    fn adaptive_window_tracks_queue_depth_in_des() {
        use fk_cloud::des::{run, Scheduler};
        struct Sim {
            depth: usize,
            ctrl: AdaptiveBatch,
            peak_window: usize,
            final_window: usize,
            drained_total: usize,
        }
        const DRAIN_EVERY_NS: u64 = 10_000_000; // one epoch drain per 10 ms
        fn drain(sim: &mut Sim, sched: &mut Scheduler<Sim>) {
            let drained = sim.ctrl.window().min(sim.depth);
            sim.depth -= drained;
            sim.drained_total += drained;
            sim.ctrl.observe(drained, sim.depth);
            sim.peak_window = sim.peak_window.max(sim.ctrl.window());
            sim.final_window = sim.ctrl.window();
            sched.schedule(DRAIN_EVERY_NS, drain);
        }
        let config = DistributorConfig::new(4, 32).with_adaptive_batch(2);
        let sim = run(
            Sim {
                depth: 0,
                ctrl: AdaptiveBatch::new(config.min_batch, config.max_batch),
                peak_window: 0,
                final_window: 0,
                drained_total: 0,
            },
            0xADA7,
            1_000_000_000, // 1 s
            |_, sched| {
                // Burst: 300 transactions arrive in the first 100 ms
                // (30 per drain interval — far above the floor window).
                for i in 0..300u64 {
                    sched.schedule(i * 333_333, |sim: &mut Sim, _| sim.depth += 1);
                }
                sched.schedule(DRAIN_EVERY_NS, drain);
            },
        );
        assert_eq!(sim.drained_total, 300, "everything drained");
        assert_eq!(sim.depth, 0);
        assert_eq!(sim.peak_window, 32, "window rode the burst to the cap");
        assert_eq!(sim.final_window, 2, "window settled back to the floor");
    }

    #[test]
    fn fan_out_joins_virtual_time_at_max_branch() {
        use fk_cloud::latency::LatencyModel;
        use fk_cloud::trace::LatencyMode;
        use fk_cloud::Op;
        let ctx = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 7);
        fan_out(&ctx, 4, |job, child| {
            // Branch 0 is the slow one.
            let size = if job == 0 { 256 * 1024 } else { 64 };
            child.charge(Op::ObjPut, size);
            Ok(())
        })
        .unwrap();
        let spans = ctx.take_spans();
        let max_branch = spans.iter().map(|s| s.duration).max().unwrap();
        assert_eq!(ctx.now(), max_branch, "join advances to slowest worker");
        assert_eq!(spans.len(), 4);
    }

    #[test]
    fn fan_out_is_deterministic_across_runs() {
        use fk_cloud::latency::LatencyModel;
        use fk_cloud::trace::LatencyMode;
        use fk_cloud::Op;
        let run = || {
            let ctx = Ctx::new(Arc::new(LatencyModel::aws()), LatencyMode::Virtual, 99);
            fan_out(&ctx, 8, |_, child| {
                child.charge(Op::KvPut, 1024);
                child.charge(Op::ObjGet, 4096);
                Ok(())
            })
            .unwrap();
            ctx.now()
        };
        assert_eq!(run(), run(), "threaded fan-out samples deterministically");
    }

    #[test]
    fn fan_out_surfaces_worker_errors() {
        let ctx = Ctx::disabled();
        let result = fan_out(&ctx, 3, |job, _| {
            if job == 1 {
                Err(fk_cloud::CloudError::ServiceStopped)
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
    }

    /// Nested creates submitted back-to-back land in one leader batch;
    /// the epoch cut at the parent/child conflict must keep the final
    /// tree intact (the transient-visibility invariant itself is
    /// asserted structurally: every listed child exists once quiescent).
    #[test]
    fn nested_creates_in_one_batch_stay_consistent() {
        use crate::deploy::{Deployment, DeploymentConfig};
        use crate::messages::{ClientRequest, Payload, WriteOp};
        use crate::CreateMode;
        use std::time::Duration;

        let deployment = Deployment::direct(
            DeploymentConfig::aws().with_distributor(DistributorConfig::new(4, 16)),
        );
        let follower = deployment.make_follower();
        let leader = deployment.make_leader_inline();
        let ctx = Ctx::disabled();
        deployment.system().register_session(&ctx, "s", 0).unwrap();
        let _endpoint = deployment.bus().register("s");
        // Three-level chain plus a sibling, all in one queue batch.
        for (rid, path) in ["/a", "/a/b", "/a/b/c", "/a/d"].iter().enumerate() {
            let request = ClientRequest {
                session_id: "s".into(),
                request_id: rid as u64 + 1,
                op: WriteOp::Create {
                    path: (*path).to_owned(),
                    payload: Payload::inline(b"x"),
                    mode: CreateMode::Persistent,
                },
            };
            deployment
                .write_queue()
                .send(&ctx, "s", request.encode())
                .unwrap();
        }
        while let Some(batch) = deployment.write_queue().receive(10, Duration::from_secs(5)) {
            follower.process_messages(&ctx, &batch.messages).unwrap();
            deployment.write_queue().ack(batch.receipt);
        }
        // The whole chain arrives as ONE leader batch.
        let processed = leader.drain_queue(&ctx, deployment.leader_queue()).unwrap();
        assert_eq!(processed, 4, "all creates in a single epoch batch");
        let store = deployment.user_store();
        let a = store.read_node(&ctx, "/a").unwrap().unwrap();
        let mut children = (*a.children).clone();
        children.sort();
        assert_eq!(children, vec!["b".to_owned(), "d".to_owned()]);
        let b = store.read_node(&ctx, "/a/b").unwrap().unwrap();
        assert_eq!(*b.children, vec!["c".to_owned()]);
        assert!(store.read_node(&ctx, "/a/b/c").unwrap().is_some());
        let violations =
            crate::consistency::check_tree_integrity(&ctx, deployment.system(), store.as_ref());
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
