//! Durable user-store backend on the embedded LSM engine.
//!
//! [`DurableUserStore`] plugs [`fk_store::Lsm`] in under the existing
//! [`UserStore`] trait: every node record is persisted as one LSM
//! entry keyed by path (value = the binary node frame,
//! [`crate::codec::encode_node`]), every mutation batch is one WAL
//! record / one fsync, and recovery replays the log — so the
//! distributor pipeline, the client library and the read path run
//! unchanged over a backend that survives kills at any storage
//! operation (the `store_recovery_properties` suite proves the
//! recovered tree byte-identical to an unkilled twin).
//!
//! Metering follows [`fk_cloud::MemStore`]: the engine is a node-local
//! resource (Requirement #8's provisioned tier, but durable), so ops
//! meter as `mem_op` / `Op::MemPut` / `Op::MemGet` rather than billed
//! cloud round trips.
//!
//! [`ChaosDiskInjector`] adapts the deployment's seeded chaos engine
//! onto the engine's [`fk_store::FaultInjector`] hook, arming the
//! three disk fault points (`disk_fsync_fail`, `disk_wal_tear`,
//! `disk_sst_partial`) from the same [`fk_cloud::chaos::FaultPlan`]
//! that drives every other service boundary.

use crate::user_store::{
    coalesce_last_per_path, dedupe_paths, descendant_prefix, NodeRecord, ScanEntry, UserStore,
    UserStoreKind,
};
use bytes::Bytes;
use fk_cloud::chaos::{Chaos, FaultKind};
use fk_cloud::metering::Meter;
use fk_cloud::trace::Ctx;
use fk_cloud::{CloudError, CloudResult, Op, Region};
use fk_store::{DiskFault, FaultInjector, Lsm, LsmConfig, LsmStats, SimStorage, Storage};
use std::sync::Arc;

/// Adapts the deployment's chaos engine onto the storage engine's
/// injector hook. Rolls are drawn from a dedicated disabled context so
/// the injector is usable from any thread (flush, background
/// compaction) without borrowing a request context.
pub struct ChaosDiskInjector {
    chaos: Arc<Chaos>,
    ctx: Ctx,
    meter: Option<Meter>,
}

impl ChaosDiskInjector {
    /// Wraps a chaos engine; fired faults are recorded on `meter` like
    /// every other injected fault.
    pub fn new(chaos: Arc<Chaos>, meter: Option<Meter>) -> Self {
        ChaosDiskInjector {
            chaos,
            ctx: Ctx::disabled(),
            meter,
        }
    }

    fn kind(fault: DiskFault) -> FaultKind {
        match fault {
            DiskFault::FsyncFail => FaultKind::DiskFsyncFail,
            DiskFault::WalTear => FaultKind::DiskWalTear,
            DiskFault::SstPartial => FaultKind::DiskSstPartial,
        }
    }
}

impl FaultInjector for ChaosDiskInjector {
    fn fire(&self, fault: DiskFault) -> bool {
        let kind = Self::kind(fault);
        let fired = self.chaos.fire(&self.ctx, kind);
        if fired {
            if let Some(meter) = &self.meter {
                meter.fault_injected(kind.label());
            }
        }
        fired
    }
}

/// Maps an engine failure onto the cloud error surface (retryable:
/// nothing was applied and the engine repairs its WAL before the next
/// append).
fn map_store_err(e: fk_store::StoreError) -> CloudError {
    CloudError::StorageFailed {
        detail: e.to_string(),
    }
}

/// User-store backend persisting node records in the embedded LSM
/// engine. Cloning shares the engine.
#[derive(Clone)]
pub struct DurableUserStore {
    lsm: Lsm,
    region: Region,
    meter: Meter,
}

impl DurableUserStore {
    /// Wraps an already-opened engine.
    pub fn new(lsm: Lsm, region: Region, meter: Meter) -> Self {
        DurableUserStore { lsm, region, meter }
    }

    /// Opens an engine on `storage` with `config` and wraps it — the
    /// entry point recovery tests use to reopen the same device.
    pub fn open(
        storage: Arc<dyn Storage>,
        config: LsmConfig,
        region: Region,
        meter: Meter,
    ) -> CloudResult<Self> {
        let lsm = Lsm::open(storage, config).map_err(map_store_err)?;
        Ok(Self::new(lsm, region, meter))
    }

    /// Opens a fresh simulated-device engine, optionally wired to the
    /// deployment's chaos engine — what
    /// [`UserStoreKind::Durable`](crate::user_store::UserStoreKind)
    /// deployments build.
    pub fn open_sim(region: Region, meter: Meter, chaos: Option<&Arc<Chaos>>) -> CloudResult<Self> {
        let mut config = LsmConfig::default();
        if let Some(engine) = chaos {
            config.injector = Some(Arc::new(ChaosDiskInjector::new(
                Arc::clone(engine),
                Some(meter.clone()),
            )));
        }
        Self::open(Arc::new(SimStorage::new()), config, region, meter)
    }

    /// The underlying engine (flush/compaction control in benches).
    pub fn engine(&self) -> &Lsm {
        &self.lsm
    }

    /// Engine counters (flushes, compactions, recovery stats).
    pub fn stats(&self) -> LsmStats {
        self.lsm.stats()
    }

    fn charge_put(&self, ctx: &Ctx, size: usize) {
        self.meter.mem_op();
        ctx.charge_to(Op::MemPut, size.max(1), self.region);
    }

    fn charge_get(&self, ctx: &Ctx, size: usize) {
        self.meter.mem_op();
        ctx.charge_to(Op::MemGet, size.max(1), self.region);
    }
}

impl UserStore for DurableUserStore {
    fn write_node(&self, ctx: &Ctx, record: &NodeRecord) -> CloudResult<()> {
        let frame = crate::codec::encode_node(record);
        let size = frame.len();
        self.lsm.put(&record.path, frame).map_err(map_store_err)?;
        self.charge_put(ctx, size);
        Ok(())
    }

    fn read_node(&self, ctx: &Ctx, path: &str) -> CloudResult<Option<NodeRecord>> {
        let bytes = self.lsm.get(path).map_err(map_store_err)?;
        self.charge_get(ctx, bytes.as_ref().map(Bytes::len).unwrap_or(1));
        match bytes {
            None => Ok(None),
            Some(bytes) => match crate::codec::decode_node(&bytes) {
                Some(record) => Ok(Some(record)),
                None => Err(CloudError::StorageFailed {
                    detail: format!("undecodable persisted node frame at {path:?}"),
                }),
            },
        }
    }

    fn delete_node(&self, ctx: &Ctx, path: &str) -> CloudResult<()> {
        self.lsm.delete(path).map_err(map_store_err)?;
        self.charge_put(ctx, 1);
        Ok(())
    }

    /// Batched writes commit as **one WAL record** (one fsync for the
    /// whole shard batch) — the group-commit analogue of the KV
    /// backend's single transaction per batch.
    fn write_batch(&self, ctx: &Ctx, records: &[NodeRecord]) -> CloudResult<()> {
        let finals = coalesce_last_per_path(records);
        if finals.is_empty() {
            return Ok(());
        }
        let mut size = 0usize;
        let entries: Vec<(String, Option<Bytes>)> = finals
            .into_iter()
            .map(|record| {
                let frame = crate::codec::encode_node(record);
                size += frame.len();
                (record.path.clone(), Some(frame))
            })
            .collect();
        self.lsm.write_batch(entries).map_err(map_store_err)?;
        self.charge_put(ctx, size);
        Ok(())
    }

    fn delete_batch(&self, ctx: &Ctx, paths: &[String]) -> CloudResult<()> {
        let paths = dedupe_paths(paths);
        if paths.is_empty() {
            return Ok(());
        }
        let entries: Vec<(String, Option<Bytes>)> =
            paths.into_iter().map(|p| (p.clone(), None)).collect();
        let n = entries.len();
        self.lsm.write_batch(entries).map_err(map_store_err)?;
        self.charge_put(ctx, n);
        Ok(())
    }

    fn scan_subtree(&self, ctx: &Ctx, root: &str) -> CloudResult<Vec<ScanEntry>> {
        let mut out = Vec::new();
        let mut total = 0usize;
        if root != "/" {
            if let Some(bytes) = self.lsm.get(root).map_err(map_store_err)? {
                total += bytes.len();
                out.extend(crate::codec::decode_node_summary(&bytes).map(ScanEntry::from));
            }
        }
        for (_, bytes) in self
            .lsm
            .scan_prefix(&descendant_prefix(root))
            .map_err(map_store_err)?
        {
            total += bytes.len();
            out.extend(crate::codec::decode_node_summary(&bytes).map(ScanEntry::from));
        }
        self.charge_get(ctx, total);
        Ok(out)
    }

    fn region(&self) -> Region {
        self.region
    }

    fn kind(&self) -> UserStoreKind {
        UserStoreKind::Durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fk_cloud::chaos::{FaultPlan, FaultSpec};
    use std::sync::Arc as StdArc;

    fn record(path: &str, size: usize) -> NodeRecord {
        NodeRecord {
            path: path.to_owned(),
            data: Bytes::from(vec![3u8; size]),
            created_txid: 1,
            modified_txid: 2,
            version: 1,
            children: StdArc::new(vec!["c".into()]),
            children_txid: 2,
            ephemeral_owner: None,
            epoch_marks: StdArc::new(vec![9]),
        }
    }

    #[test]
    fn durable_store_roundtrips_and_survives_reopen() {
        let dev = SimStorage::new();
        let meter = Meter::new();
        let ctx = Ctx::disabled();
        {
            let store = DurableUserStore::open(
                Arc::new(dev.clone()),
                LsmConfig::default(),
                Region::US_EAST_1,
                meter.clone(),
            )
            .unwrap();
            store.write_node(&ctx, &record("/a", 64)).unwrap();
            store
                .write_batch(
                    &ctx,
                    &[record("/a/x", 8), record("/a/y", 8), record("/b", 8)],
                )
                .unwrap();
            store.delete_node(&ctx, "/b").unwrap();
            assert_eq!(store.kind(), UserStoreKind::Durable);
        }
        dev.crash();
        let store = DurableUserStore::open(
            Arc::new(dev.clone()),
            LsmConfig::default(),
            Region::US_EAST_1,
            meter.clone(),
        )
        .unwrap();
        let got = store.read_node(&ctx, "/a").unwrap().unwrap();
        assert_eq!(got, record("/a", 64));
        assert!(store.read_node(&ctx, "/b").unwrap().is_none());
        let entries = store.scan_subtree(&ctx, "/a").unwrap();
        let paths: Vec<&str> = entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["/a", "/a/x", "/a/y"]);
        assert!(meter.snapshot().mem_ops > 0, "ops meter like MemStore");
    }

    #[test]
    fn killed_device_surfaces_retryable_storage_error() {
        let dev = SimStorage::new();
        let ctx = Ctx::disabled();
        let store = DurableUserStore::open(
            Arc::new(dev.clone()),
            LsmConfig::default(),
            Region::US_EAST_1,
            Meter::new(),
        )
        .unwrap();
        dev.arm_kill(1, 3);
        let err = store.write_node(&ctx, &record("/n", 8)).unwrap_err();
        assert!(matches!(err, CloudError::StorageFailed { .. }));
        assert!(err.is_retryable());
    }

    #[test]
    fn chaos_injector_arms_disk_fault_points() {
        let mut plan = FaultPlan::disabled();
        plan.disk_fsync_fail = FaultSpec::new(1.0, 2);
        let chaos = Chaos::from_plan(plan).unwrap();
        let meter = Meter::new();
        let store =
            DurableUserStore::open_sim(Region::US_EAST_1, meter.clone(), Some(&chaos)).unwrap();
        let ctx = Ctx::disabled();
        let mut failures = 0;
        for i in 0..6 {
            if store
                .write_node(&ctx, &record(&format!("/n{i}"), 8))
                .is_err()
            {
                failures += 1;
            }
        }
        assert_eq!(failures, 2, "budget caps injected fsync failures");
        assert_eq!(chaos.fired(FaultKind::DiskFsyncFail), 2);
        assert_eq!(
            meter
                .snapshot()
                .per_op
                .get("fault:disk_fsync_fail")
                .copied()
                .unwrap_or(0),
            2
        );
        // Every write after the budget drains lands durably.
        assert!(store.read_node(&ctx, "/n5").unwrap().is_some());
    }
}
