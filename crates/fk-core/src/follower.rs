//! The follower function (Algorithm 1, §3.1).
//!
//! Invoked by the session write queue, the follower processes each
//! client's requests in FIFO order: ➀ lock the involved node(s),
//! ➁ validate the operation against the locked state, ➂ allocate the
//! transaction id from the target shard group's epoch counter
//! ([`crate::system_store::SystemStore::alloc_txid`]) and push the
//! confirmed change down that group's FIFO queue to its leader instance,
//! ➃ commit the new node version to system storage with a single
//! conditional write that also releases the lock.
//!
//! The txid allocation floor is the maximum of the session's previous
//! txid and the locked nodes' last txids, so per-session and per-path
//! txid order survive the move from one leader queue to a sharded tier
//! (one leader instance per shard group); the record also carries
//! `prev_txid`, which the receiving leader uses for the cross-shard
//! hold-back (Z2 — see `docs/consistency.md`).
//!
//! Locks are timed, so a follower crash cannot deadlock the system; the
//! commit is guarded by the lock timestamp, so a stolen lock aborts it
//! atomically and the leader rejects the transaction (Algorithm 2 ➋).

use crate::api::{CreateMode, FkError, Stat, WatchEventType};
use crate::messages::{
    ClientNotification, ClientRequest, CommitItem, FiredWatch, LeaderRecord, Payload, SerValue,
    SystemCommit, UserUpdate, WriteOp,
};
use crate::notify::ClientBus;
use crate::path as zkpath;
use crate::system_store::SystemStore as Sys;
use crate::system_store::{keys, node_attr, session_attr, SystemStore};
use fk_cloud::faas::FnError;
use fk_cloud::ops::Op;
use fk_cloud::queue::{group_of, Message, ShardedQueues};
use fk_cloud::trace::Ctx;
use fk_cloud::CloudError;
use fk_sync::Acquired;

/// Follower configuration.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Maximum node payload size (provider dependent, §4.4).
    pub max_node_bytes: usize,
    /// Attempts to acquire a contended lock before asking for redelivery.
    pub lock_attempts: u32,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            max_node_bytes: 1024 * 1024,
            lock_attempts: 24,
        }
    }
}

/// The follower function body. Shared across invocations (stateless per
/// the FaaS model; all state lives in cloud storage).
pub struct Follower {
    system: SystemStore,
    leader_queues: ShardedQueues,
    bus: ClientBus,
    config: FollowerConfig,
}

/// Name of each leader queue's single ordering group: one group per
/// member queue ⇒ a global FIFO per shard group ⇒ exactly one active
/// leader instance per group (Appendix B, Z2). Records route to a member
/// by their shard key, so per-key order is still total.
pub const LEADER_GROUP: &str = "leader";

/// Request id used for internally generated sub-requests (ephemeral
/// cleanup); no client awaits these.
pub const INTERNAL_REQUEST: u64 = 0;

impl Follower {
    /// Creates the function body over the leader tier's sharded queues
    /// (a single-member group reproduces the one-leader deployment).
    pub fn new(
        system: SystemStore,
        leader_queues: ShardedQueues,
        bus: ClientBus,
        config: FollowerConfig,
    ) -> Self {
        Follower {
            system,
            leader_queues,
            bus,
            config,
        }
    }

    /// The shard group `key` routes to, under this follower's leader-tier
    /// width (the salted group hash — see [`group_of`]).
    fn group_of(&self, key: &str) -> usize {
        group_of(key, self.leader_queues.shards())
    }

    /// Wall-clock milliseconds used for lock timestamps.
    fn now_ms() -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_millis() as i64
    }

    /// Entry point for a queue batch. On a retryable error the failed
    /// index is reported so the queue redelivers from that message.
    pub fn process_messages(&self, ctx: &Ctx, messages: &[Message]) -> Result<(), FnError> {
        for (i, msg) in messages.iter().enumerate() {
            ctx.charge(Op::FnCompute, msg.body.len());
            let Some(request) = ClientRequest::decode(&msg.body) else {
                // Malformed message: drop it rather than poison the queue.
                continue;
            };
            self.process_request(ctx, &request)
                .map_err(|e| e.at_index(i))?;
        }
        Ok(())
    }

    /// Processes one client request end to end.
    pub fn process_request(&self, ctx: &Ctx, request: &ClientRequest) -> Result<(), FnError> {
        match &request.op {
            WriteOp::CloseSession => self.close_session(ctx, request),
            _ => match self.write_op(ctx, request, &request.op) {
                Ok(_) => Ok(()),
                Err(OpError::Client(err)) => {
                    self.notify_failure(ctx, &request.session_id, request.request_id, err);
                    Ok(())
                }
                Err(OpError::Retry(e)) => Err(e),
            },
        }
    }

    fn notify_failure(&self, ctx: &Ctx, session: &str, request_id: u64, err: FkError) {
        if request_id == INTERNAL_REQUEST {
            return;
        }
        self.bus.notify(
            ctx,
            session,
            ClientNotification::WriteResult {
                request_id,
                result: Err(err),
                txid: 0,
            },
        );
    }

    /// ➀ acquire locks on all keys, sorted to avoid deadlock with
    /// concurrent followers locking overlapping sets.
    fn lock_all(&self, ctx: &Ctx, paths: &[&str]) -> Result<Vec<Acquired>, OpError> {
        let mut sorted: Vec<&str> = paths.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let locks = self.system.locks();
        for attempt in 0..self.config.lock_attempts {
            let mut acquired: Vec<Acquired> = Vec::with_capacity(sorted.len());
            let now = Self::now_ms() + attempt as i64; // distinct stamps per retry
            let mut contended = false;
            for path in &sorted {
                match locks.acquire(ctx, &keys::node(path), now) {
                    Ok(acq) => acquired.push(acq),
                    Err(CloudError::ConditionFailed { .. }) => {
                        contended = true;
                        break;
                    }
                    Err(e) => return Err(OpError::Retry(FnError::retryable(e.to_string()))),
                }
            }
            if !contended {
                return Ok(acquired);
            }
            for acq in &acquired {
                let _ = locks.release(ctx, &acq.token);
            }
            std::thread::yield_now();
        }
        // Persistent contention: let the queue redeliver later.
        Err(OpError::Retry(FnError::retryable("lock contention")))
    }

    fn release_all(&self, ctx: &Ctx, acquired: &[Acquired]) {
        for acq in acquired {
            let _ = self.system.locks().release(ctx, &acq.token);
        }
    }

    fn find<'a>(acquired: &'a [Acquired], path: &str) -> &'a Acquired {
        let key = keys::node(path);
        acquired
            .iter()
            .find(|a| a.token.key == key)
            .expect("lock acquired for path")
    }

    /// The request tag marking which request committed a node state, used
    /// to recognize our own work on redelivery.
    fn req_tag(request: &ClientRequest) -> String {
        format!("{}#{}", request.session_id, request.request_id)
    }

    /// ➁–➃ for create / set_data / delete. Returns the assigned txid.
    fn write_op(&self, ctx: &Ctx, request: &ClientRequest, op: &WriteOp) -> Result<u64, OpError> {
        let path = op.path();
        zkpath::validate(path).map_err(OpError::Client)?;
        let parent = zkpath::parent(path);

        // ➀ lock. Sequential creates lock the parent first: the parent's
        // lock serializes the sequence counter, and the generated name is
        // locked once known (it is fresh by construction).
        let sequential = matches!(op, WriteOp::Create { mode, .. } if mode.is_sequential());
        let lock_paths: Vec<&str> = match op {
            WriteOp::SetData { .. } => vec![path],
            WriteOp::Create { .. } | WriteOp::Delete { .. } => {
                let parent = parent.ok_or(OpError::Client(FkError::BadArguments {
                    detail: "cannot create or delete the root".into(),
                }))?;
                if sequential {
                    vec![parent]
                } else {
                    vec![path, parent]
                }
            }
            WriteOp::CloseSession => unreachable!("handled separately"),
        };
        ctx.push_phase("lock_node");
        let mut acquired = match self.lock_all(ctx, &lock_paths) {
            Ok(a) => a,
            Err(e) => {
                ctx.pop_phase();
                return Err(e);
            }
        };
        let mut final_path_override = None;
        if sequential {
            let parent_path = parent.expect("sequential create has parent");
            let parent_acq = Self::find(&acquired, parent_path);
            if Sys::node_exists(parent_acq.old.as_ref()) {
                let seq = parent_acq
                    .old
                    .as_ref()
                    .and_then(|i| i.num(node_attr::SEQ))
                    .unwrap_or(0);
                let fp = zkpath::with_sequence(path, seq);
                match self
                    .system
                    .locks()
                    .acquire(ctx, &keys::node(&fp), Self::now_ms())
                {
                    Ok(acq) => {
                        acquired.push(acq);
                        final_path_override = Some(fp);
                    }
                    Err(e) => {
                        self.release_all(ctx, &acquired);
                        ctx.pop_phase();
                        return Err(OpError::Retry(FnError::retryable(e.to_string())));
                    }
                }
            }
            // A missing parent falls through to validation, which reports
            // NoNode to the client.
        }
        ctx.pop_phase();

        // ➁ validate against the locked state; on failure release + notify.
        ctx.push_phase("validate");
        let plan =
            self.validate_and_plan(request, op, path, parent, &acquired, final_path_override);
        ctx.pop_phase();
        let plan = match plan {
            Ok(plan) => plan,
            Err(e) => {
                self.release_all(ctx, &acquired);
                return Err(e);
            }
        };
        let multi_group = self.leader_queues.shards() > 1;
        if let Some(txid) = plan.already_committed {
            // Redelivered request whose commit already succeeded: the
            // leader has or will notify; nothing more to do beyond
            // repairing the session's last-txid marker (the crash may
            // have hit between the commit and that update).
            self.release_all(ctx, &acquired);
            if multi_group && txid > 0 {
                self.system
                    .record_session_push(ctx, &request.session_id, txid)
                    .map_err(|e| OpError::Retry(FnError::retryable(e.to_string())))?;
            }
            return Ok(txid);
        }

        // ➂ allocate the txid and push the confirmed change to the
        // target group's leader. In a multi-group tier the txid comes
        // from the group's epoch counter, floored at the session's
        // previous txid and the locked nodes' last txids (version for
        // the primary path, children_txid for a parent) — this is what
        // keeps txids totally ordered per session and per path across
        // shard groups. A single-group tier (the default deployment)
        // skips all of that: one queue totally orders everything, its
        // sequence number *is* the txid (the paper's scheme), and the
        // sequencing bookkeeping would add billed strong-consistency KV
        // round trips to every write for nothing.
        let (alloc_txid, prev_txid) = if multi_group {
            ctx.push_phase("alloc_txid");
            let prev_txid = self.system.session_last_txid(ctx, &request.session_id);
            let mut floor = prev_txid;
            for acq in &acquired {
                if let Some(item) = acq.old.as_ref() {
                    floor = floor
                        .max(item.num(node_attr::VERSION).unwrap_or(0) as u64)
                        .max(item.num(node_attr::CHILDREN_TXID).unwrap_or(0) as u64);
                }
            }
            let group = self.group_of(&plan.final_path);
            let allocated = self.system.alloc_txid(ctx, group, floor);
            ctx.pop_phase();
            match allocated {
                Ok(txid) => (txid, prev_txid),
                Err(e) => {
                    self.release_all(ctx, &acquired);
                    return Err(OpError::Retry(FnError::retryable(e.to_string())));
                }
            }
        } else {
            // txid 0 on the wire = "use the queue sequence number",
            // which the leader's decode path substitutes.
            (0, 0)
        };

        let record = LeaderRecord {
            session_id: request.session_id.clone(),
            request_id: request.request_id,
            txid: alloc_txid,
            prev_txid,
            path: plan.final_path.clone(),
            commit: plan.commit.clone(),
            user_update: plan.user_update.clone(),
            stat: plan.stat,
            fires: plan.fires.clone(),
            is_delete: plan.is_delete,
            deregister_session: false,
        };
        let body = record.encode();
        ctx.push_phase("push_to_leader");
        let sent = self
            .leader_queues
            .send_grouped(ctx, &plan.final_path, LEADER_GROUP, body);
        ctx.pop_phase();
        let txid = match sent {
            Ok((_, seq)) => {
                if multi_group {
                    alloc_txid
                } else {
                    seq
                }
            }
            Err(e) => {
                self.release_all(ctx, &acquired);
                return Err(OpError::Retry(FnError::retryable(e.to_string())));
            }
        };

        // ➃ commit-and-unlock, conditional on the locks still being held.
        ctx.push_phase("commit");
        let committed = crate::commit::execute(&plan.commit, txid, ctx, self.system.kv());
        let commit_result = match committed {
            Ok(()) => {
                // Session bookkeeping for ephemeral lifecycle (outside the
                // node transaction: it only drives heartbeat cleanup).
                match op {
                    WriteOp::Create { mode, .. } if mode.is_ephemeral() => {
                        let _ = self.system.add_session_ephemeral(
                            ctx,
                            &request.session_id,
                            &plan.final_path,
                        );
                    }
                    WriteOp::Delete { .. } => {
                        if let Some(owner) = &plan.deleted_ephemeral_owner {
                            let _ =
                                self.system
                                    .remove_session_ephemeral(ctx, owner, &plan.final_path);
                        }
                    }
                    _ => {}
                }
                Ok(txid)
            }
            // Lock stolen mid-flight: the leader decides the outcome
            // (TryCommit or reject); from this function's perspective the
            // request is handed over, not failed.
            Err(CloudError::ConditionFailed { .. })
            | Err(CloudError::TransactionCancelled { .. }) => Ok(txid),
            Err(e) => Err(OpError::Retry(FnError::retryable(e.to_string()))),
        };
        ctx.pop_phase();
        if multi_group && commit_result.is_ok() {
            // The record is in a leader queue either way (committed or
            // handed over): advance the session's last-txid marker so the
            // next write floors and sequences after this one. The leader
            // advances the *applied* mark past abandoned transactions, so
            // a lost handover cannot wedge the session.
            self.system
                .record_session_push(ctx, &request.session_id, txid)
                .map_err(|e| OpError::Retry(FnError::retryable(e.to_string())))?;
        }
        commit_result
    }

    /// Validation and commit planning (Algorithm 1 ➁).
    fn validate_and_plan(
        &self,
        request: &ClientRequest,
        op: &WriteOp,
        path: &str,
        parent: Option<&str>,
        acquired: &[Acquired],
        final_path_override: Option<String>,
    ) -> Result<WritePlan, OpError> {
        let tag = Self::req_tag(request);
        match op {
            WriteOp::Create { payload, mode, .. } => self.plan_create(
                request,
                payload,
                *mode,
                path,
                parent.expect("create locks parent"),
                acquired,
                &tag,
                final_path_override,
            ),
            WriteOp::SetData {
                payload,
                expected_version,
                ..
            } => self.plan_set_data(payload, *expected_version, path, acquired, &tag),
            WriteOp::Delete {
                expected_version, ..
            } => self.plan_delete(
                *expected_version,
                path,
                parent.expect("delete locks parent"),
                acquired,
                &tag,
            ),
            WriteOp::CloseSession => unreachable!("handled separately"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_create(
        &self,
        request: &ClientRequest,
        payload: &Payload,
        mode: CreateMode,
        path: &str,
        parent: &str,
        acquired: &[Acquired],
        tag: &str,
        final_path_override: Option<String>,
    ) -> Result<WritePlan, OpError> {
        if payload.byte_len() > self.config.max_node_bytes {
            return Err(OpError::Client(FkError::TooLarge {
                size: payload.byte_len(),
                limit: self.config.max_node_bytes,
            }));
        }
        let parent_acq = Self::find(acquired, parent);
        if !Sys::node_exists(parent_acq.old.as_ref()) {
            return Err(OpError::Client(FkError::NoNode));
        }
        let parent_item = parent_acq.old.as_ref().expect("parent exists");
        if parent_item.contains(node_attr::EPH_OWNER) {
            return Err(OpError::Client(FkError::NoChildrenForEphemerals));
        }

        // Sequential names come from the parent's counter (§2.2 "sequential
        // nodes" in Table 1); the caller locked the generated name.
        let seq = parent_item.num(node_attr::SEQ).unwrap_or(0);
        let final_path = final_path_override.unwrap_or_else(|| path.to_owned());

        let node_acq = Self::find(acquired, &final_path);
        if let Some(existing) = node_acq.old.as_ref() {
            if Sys::node_exists(Some(existing)) {
                if existing.str("req_tag") == Some(tag) {
                    return Ok(WritePlan::already(
                        existing.num(node_attr::VERSION).unwrap_or(0) as u64,
                    ));
                }
                return Err(OpError::Client(FkError::NodeExists));
            }
        }

        let mut children_after: Vec<String> = parent_item
            .list(node_attr::CHILDREN)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        children_after.push(zkpath::basename(&final_path).to_owned());

        let ephemeral_owner = mode.is_ephemeral().then(|| request.session_id.clone());

        // Commit: node item + parent item, atomically (Z1).
        let node_key_path: &str = &final_path;
        let mut node_sets = vec![
            (node_attr::CREATED.to_owned(), SerValue::Txid),
            (node_attr::VERSION.to_owned(), SerValue::Txid),
            (node_attr::VCOUNT.to_owned(), SerValue::Num(0)),
            ("req_tag".to_owned(), SerValue::Str(tag.to_owned())),
        ];
        if let Some(owner) = &ephemeral_owner {
            node_sets.push((
                node_attr::EPH_OWNER.to_owned(),
                SerValue::Str(owner.clone()),
            ));
        }
        let node_item = CommitItem {
            key: keys::node(node_key_path),
            lock_ts: node_acq.token.timestamp,
            sets: node_sets,
            appends: vec![(node_attr::TXQ.to_owned(), SerValue::TxidList)],
            removes: vec![node_attr::DELETED.to_owned()],
            list_removes: vec![],
        };
        let mut parent_sets = Vec::new();
        if mode.is_sequential() {
            parent_sets.push((node_attr::SEQ.to_owned(), SerValue::Num(seq + 1)));
        }
        // Stamp the parent's children-rewrite txid: later transactions
        // locking this parent floor their allocation above it, keeping
        // children rewrites totally ordered across shard groups.
        parent_sets.push((node_attr::CHILDREN_TXID.to_owned(), SerValue::Txid));
        let parent_commit = CommitItem {
            key: keys::node(parent),
            lock_ts: parent_acq.token.timestamp,
            sets: parent_sets,
            appends: vec![(
                node_attr::CHILDREN.to_owned(),
                SerValue::StrList(vec![zkpath::basename(&final_path).to_owned()]),
            )],
            removes: vec![],
            list_removes: vec![],
        };

        let stat = Stat {
            created_txid: 0,
            modified_txid: 0,
            version: 0,
            num_children: 0,
            data_length: payload.byte_len() as u32,
            ephemeral: mode.is_ephemeral(),
        };
        Ok(WritePlan {
            final_path: final_path.clone(),
            commit: SystemCommit {
                items: vec![node_item, parent_commit],
            },
            user_update: UserUpdate::WriteNode {
                path: final_path.clone(),
                payload: payload.clone(),
                created_txid: 0,
                version: 0,
                children: vec![],
                ephemeral_owner,
                parent_children: Some((parent.to_owned(), children_after)),
            },
            stat,
            fires: vec![
                FiredWatch {
                    watch_path: final_path,
                    event_type: WatchEventType::NodeCreated,
                },
                FiredWatch {
                    watch_path: parent.to_owned(),
                    event_type: WatchEventType::NodeChildrenChanged,
                },
            ],
            is_delete: false,
            deleted_ephemeral_owner: None,
            already_committed: None,
        })
    }

    fn plan_set_data(
        &self,
        payload: &Payload,
        expected_version: i32,
        path: &str,
        acquired: &[Acquired],
        tag: &str,
    ) -> Result<WritePlan, OpError> {
        if payload.byte_len() > self.config.max_node_bytes {
            return Err(OpError::Client(FkError::TooLarge {
                size: payload.byte_len(),
                limit: self.config.max_node_bytes,
            }));
        }
        let acq = Self::find(acquired, path);
        if !Sys::node_exists(acq.old.as_ref()) {
            return Err(OpError::Client(FkError::NoNode));
        }
        let item = acq.old.as_ref().expect("node exists");
        let vcount = item.num(node_attr::VCOUNT).unwrap_or(0) as i32;
        if expected_version >= 0 && vcount != expected_version {
            if item.str("req_tag") == Some(tag) {
                return Ok(WritePlan::already(
                    item.num(node_attr::VERSION).unwrap_or(0) as u64,
                ));
            }
            return Err(OpError::Client(FkError::BadVersion));
        }
        let children: Vec<String> = item
            .list(node_attr::CHILDREN)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        let created = item.num(node_attr::CREATED).unwrap_or(0) as u64;
        let ephemeral_owner = item.str(node_attr::EPH_OWNER).map(str::to_owned);

        let commit_item = CommitItem {
            key: keys::node(path),
            lock_ts: acq.token.timestamp,
            sets: vec![
                (node_attr::VERSION.to_owned(), SerValue::Txid),
                (
                    node_attr::VCOUNT.to_owned(),
                    SerValue::Num((vcount + 1) as i64),
                ),
                ("req_tag".to_owned(), SerValue::Str(tag.to_owned())),
            ],
            appends: vec![(node_attr::TXQ.to_owned(), SerValue::TxidList)],
            removes: vec![],
            list_removes: vec![],
        };
        let stat = Stat {
            created_txid: created,
            modified_txid: 0,
            version: vcount + 1,
            num_children: children.len() as u32,
            data_length: payload.byte_len() as u32,
            ephemeral: ephemeral_owner.is_some(),
        };
        Ok(WritePlan {
            final_path: path.to_owned(),
            commit: SystemCommit {
                items: vec![commit_item],
            },
            user_update: UserUpdate::WriteNode {
                path: path.to_owned(),
                payload: payload.clone(),
                created_txid: created,
                version: vcount + 1,
                children,
                ephemeral_owner,
                parent_children: None,
            },
            stat,
            fires: vec![FiredWatch {
                watch_path: path.to_owned(),
                event_type: WatchEventType::NodeDataChanged,
            }],
            is_delete: false,
            deleted_ephemeral_owner: None,
            already_committed: None,
        })
    }

    fn plan_delete(
        &self,
        expected_version: i32,
        path: &str,
        parent: &str,
        acquired: &[Acquired],
        tag: &str,
    ) -> Result<WritePlan, OpError> {
        let acq = Self::find(acquired, path);
        if !Sys::node_exists(acq.old.as_ref()) {
            if acq
                .old
                .as_ref()
                .map(|i| i.contains(node_attr::DELETED) && i.str("req_tag") == Some(tag))
                .unwrap_or(false)
            {
                return Ok(WritePlan::already(
                    acq.old
                        .as_ref()
                        .and_then(|i| i.num(node_attr::VERSION))
                        .unwrap_or(0) as u64,
                ));
            }
            return Err(OpError::Client(FkError::NoNode));
        }
        let item = acq.old.as_ref().expect("node exists");
        let vcount = item.num(node_attr::VCOUNT).unwrap_or(0) as i32;
        if expected_version >= 0 && vcount != expected_version {
            return Err(OpError::Client(FkError::BadVersion));
        }
        if item
            .list(node_attr::CHILDREN)
            .map(|l| !l.is_empty())
            .unwrap_or(false)
        {
            return Err(OpError::Client(FkError::NotEmpty));
        }
        let parent_acq = Self::find(acquired, parent);
        let name = zkpath::basename(path).to_owned();
        let parent_children: Vec<String> = parent_acq
            .old
            .as_ref()
            .and_then(|i| i.list(node_attr::CHILDREN))
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .filter(|c| c != &name)
                    .collect()
            })
            .unwrap_or_default();

        let node_item = CommitItem {
            key: keys::node(path),
            lock_ts: acq.token.timestamp,
            sets: vec![
                (node_attr::DELETED.to_owned(), SerValue::Num(1)),
                (node_attr::VERSION.to_owned(), SerValue::Txid),
                ("req_tag".to_owned(), SerValue::Str(tag.to_owned())),
            ],
            appends: vec![(node_attr::TXQ.to_owned(), SerValue::TxidList)],
            removes: vec![],
            list_removes: vec![],
        };
        let parent_item = CommitItem {
            key: keys::node(parent),
            lock_ts: parent_acq.token.timestamp,
            sets: vec![(node_attr::CHILDREN_TXID.to_owned(), SerValue::Txid)],
            appends: vec![],
            removes: vec![],
            list_removes: vec![(
                node_attr::CHILDREN.to_owned(),
                SerValue::StrList(vec![name]),
            )],
        };
        Ok(WritePlan {
            final_path: path.to_owned(),
            commit: SystemCommit {
                items: vec![node_item, parent_item],
            },
            user_update: UserUpdate::DeleteNode {
                path: path.to_owned(),
                parent_children: Some((parent.to_owned(), parent_children)),
            },
            stat: Stat::default(),
            fires: vec![
                FiredWatch {
                    watch_path: path.to_owned(),
                    event_type: WatchEventType::NodeDeleted,
                },
                FiredWatch {
                    watch_path: parent.to_owned(),
                    event_type: WatchEventType::NodeChildrenChanged,
                },
            ],
            is_delete: true,
            deleted_ephemeral_owner: item.str(node_attr::EPH_OWNER).map(str::to_owned),
            already_committed: None,
        })
    }

    /// CloseSession: delete the session's ephemeral nodes (each a regular
    /// delete transaction), then push a deregistration record so the
    /// leader confirms completion in order (§3.6).
    fn close_session(&self, ctx: &Ctx, request: &ClientRequest) -> Result<(), FnError> {
        let session = &request.session_id;
        let Some(item) = self.system.get_session(ctx, session) else {
            self.notify_failure(ctx, session, request.request_id, FkError::SessionExpired);
            return Ok(());
        };
        let mut ephemerals: Vec<String> = item
            .list(session_attr::EPHEMERALS)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        ephemerals.sort();
        for path in ephemerals {
            let sub = ClientRequest {
                session_id: session.clone(),
                request_id: INTERNAL_REQUEST,
                op: WriteOp::Delete {
                    path: path.clone(),
                    expected_version: -1,
                },
            };
            match self.write_op(ctx, &sub, &sub.op) {
                Ok(_) => {}
                Err(OpError::Client(_)) => {} // already gone: fine
                Err(OpError::Retry(e)) => return Err(e),
            }
        }
        // The deregistration record sequences after every prior write of
        // the session: its prev_txid makes the receiving leader hold it
        // back until all of them (wherever they were sharded) have been
        // distributed, so the session item is not removed under a leader
        // that still needs its high-water mark. (Single-group tiers get
        // this for free from their one queue's total order.)
        let multi_group = self.leader_queues.shards() > 1;
        let (txid, prev_txid) = if multi_group {
            let prev_txid = self.system.session_last_txid(ctx, session);
            let group = self.group_of(session);
            let txid = self
                .system
                .alloc_txid(ctx, group, prev_txid)
                .map_err(|e| FnError::retryable(e.to_string()))?;
            (txid, prev_txid)
        } else {
            (0, 0)
        };
        let record = LeaderRecord {
            session_id: session.clone(),
            request_id: request.request_id,
            txid,
            prev_txid,
            path: String::new(),
            commit: SystemCommit::default(),
            user_update: UserUpdate::None,
            stat: Stat::default(),
            fires: vec![],
            is_delete: false,
            deregister_session: true,
        };
        ctx.push_phase("push_to_leader");
        let sent = self
            .leader_queues
            .send_grouped(ctx, session, LEADER_GROUP, record.encode());
        ctx.pop_phase();
        sent.map_err(|e| FnError::retryable(e.to_string()))?;
        if multi_group {
            self.system
                .record_session_push(ctx, session, txid)
                .map_err(|e| FnError::retryable(e.to_string()))?;
        }
        Ok(())
    }
}

/// Plan produced by validation: everything needed for ➂ and ➃.
struct WritePlan {
    final_path: String,
    commit: SystemCommit,
    user_update: UserUpdate,
    stat: Stat,
    fires: Vec<FiredWatch>,
    is_delete: bool,
    deleted_ephemeral_owner: Option<String>,
    /// Set when a redelivered request is detected as already committed.
    already_committed: Option<u64>,
}

impl WritePlan {
    fn already(txid: u64) -> Self {
        WritePlan {
            final_path: String::new(),
            commit: SystemCommit::default(),
            user_update: UserUpdate::None,
            stat: Stat::default(),
            fires: vec![],
            is_delete: false,
            deleted_ephemeral_owner: None,
            already_committed: Some(txid),
        }
    }
}

/// Internal error split: client errors are notified, retry errors bubble
/// to the queue for redelivery.
enum OpError {
    Client(FkError),
    Retry(FnError),
}

// Unit tests for the follower live in `functions_tests.rs` next to the
// leader's, since meaningful scenarios need both halves of the pipeline.
