//! The follower function (Algorithm 1, §3.1).
//!
//! Invoked by the session write queue, the follower processes each
//! client's requests in FIFO order: ➀ lock the involved node(s),
//! ➁ validate the operation against the locked state, ➂ allocate the
//! transaction id from the target shard group's epoch counter
//! ([`crate::system_store::SystemStore::alloc_txid`]) and push the
//! confirmed change down that group's FIFO queue to its leader instance,
//! ➃ commit the new node version to system storage with a single
//! conditional write that also releases the lock.
//!
//! # Pipelined batches (waves)
//!
//! A pipelined client keeps many writes in flight, so a queue batch
//! regularly carries several independent requests — and the follower's
//! storage I/O, not its compute, dominates (Table 3). The batch is
//! therefore processed in **waves**: a maximal run of requests whose
//! lock sets are pairwise disjoint. Within a wave, phase ➀/➁
//! (lock + validate) runs on parallel forked workers and phase ➃
//! (commit) likewise — both are independent conditional writes to
//! disjoint items — while phase ➂ (allocate + push) stays strictly
//! serial in batch order, because push order *is* what assigns and
//! orders txids per session (Z1/Z2: a session's txids must increase in
//! submission order). Requests that touch an overlapping path wait for
//! the next wave, which starts only after the previous wave's commits
//! released their locks — exactly the sequential interleaving the
//! one-at-a-time follower produced.
//!
//! A commit that fails *after* its record was pushed is never retried by
//! the follower: the record is already in a leader queue, and the leader
//! re-executes the same commit description (`TryCommit`, Algorithm 2 ➋)
//! idempotently — re-delivering the message would only produce an
//! orphaned duplicate push.
//!
//! # `multi` transactions
//!
//! A [`WriteOp::Multi`] validates and commits as one unit: all touched
//! node locks are acquired as a single sorted set (deadlock-free, like
//! any other lock set), the ops are validated **in order against an
//! overlay** of the locked state (each op observes its predecessors'
//! effects — a create can populate the parent a later op uses), the
//! per-item updates are merged into one [`SystemCommit`] executed as a
//! single multi-item conditional transaction (all-or-nothing, Z1), one
//! txid covers every sub-op, and a single [`LeaderRecord`] carries the
//! subs so the distributor applies them as one epoch-atomic unit. A
//! validation failure anywhere aborts the whole multi with
//! [`FkError::MultiFailed`] naming the failing index; no state is left
//! behind (nothing was written before validation completed). One
//! provider-honest restriction: each path may appear in at most one
//! *mutating* op (DynamoDB's `TransactWriteItems` cannot write one item
//! twice); version checks may target any path, including mutated ones —
//! the ZooKeeper compare-and-swap idiom `[check(v), set_data(v)]`.
//!
//! The txid allocation floor is the maximum of the session's previous
//! txid and the locked nodes' last txids, so per-session and per-path
//! txid order survive the move from one leader queue to a sharded tier
//! (one leader instance per shard group); the record also carries
//! `prev_txid`, which the receiving leader uses for the cross-shard
//! hold-back (Z2 — see `docs/consistency.md`).
//!
//! Locks are timed, so a follower crash cannot deadlock the system; the
//! commit is guarded by the lock timestamp, so a stolen lock aborts it
//! atomically and the leader rejects the transaction (Algorithm 2 ➋).

use crate::api::{CreateMode, FkError, Stat, WatchEventType};
use crate::messages::{
    ClientNotification, ClientRequest, CommitItem, FiredWatch, LeaderRecord, MultiOp, MultiSub,
    OpOutcome, Payload, SerValue, SystemCommit, UserUpdate, WriteOp, WriteResultData,
};
use crate::notify::ClientBus;
use crate::path as zkpath;
use crate::system_store::SystemStore as Sys;
use crate::system_store::{keys, node_attr, session_attr, Membership, SystemStore};
use fk_cloud::faas::FnError;
use fk_cloud::ops::Op;
use fk_cloud::queue::{group_of, Message, ShardedQueues};
use fk_cloud::retry::{with_retry, RetryPolicy};
use fk_cloud::trace::Ctx;
use fk_cloud::CloudError;
use fk_sync::Acquired;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Follower configuration.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Maximum node payload size (provider dependent, §4.4).
    pub max_node_bytes: usize,
    /// Attempts to acquire a contended lock before asking for redelivery.
    pub lock_attempts: u32,
    /// Fault injection for crash-consistency tests: while non-zero, each
    /// phase-➃ commit decrements the counter and is *skipped* — exactly
    /// the state a follower crash between push (➂) and commit (➃) leaves
    /// behind, which the leader repairs via `TryCommit`. Production
    /// configs leave it at zero.
    pub skip_commits: Arc<AtomicU64>,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            max_node_bytes: 1024 * 1024,
            lock_attempts: 24,
            skip_commits: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// The follower function body. Shared across invocations (stateless per
/// the FaaS model; all state lives in cloud storage).
pub struct Follower {
    system: SystemStore,
    leader_queues: ShardedQueues,
    bus: ClientBus,
    config: FollowerConfig,
}

/// Name of each leader queue's single ordering group: one group per
/// member queue ⇒ a global FIFO per shard group ⇒ exactly one active
/// leader instance per group (Appendix B, Z2). Records route to a member
/// by their shard key, so per-key order is still total.
pub const LEADER_GROUP: &str = "leader";

/// Request id used for internally generated sub-requests (ephemeral
/// cleanup); no client awaits these.
pub const INTERNAL_REQUEST: u64 = 0;

impl Follower {
    /// Creates the function body over the leader tier's sharded queues
    /// (a single-member group reproduces the one-leader deployment).
    pub fn new(
        system: SystemStore,
        leader_queues: ShardedQueues,
        bus: ClientBus,
        config: FollowerConfig,
    ) -> Self {
        Follower {
            system,
            leader_queues,
            bus,
            config,
        }
    }

    /// The follower's configuration (tests reach the fault-injection
    /// knob through this).
    pub fn config(&self) -> &FollowerConfig {
        &self.config
    }

    /// The group `key`'s submission must actually go to: the hash group
    /// under the membership's *active* width (a scale-out widens the
    /// hash from the next batch on), then redirected to its successor
    /// while it drains. Computed once per request and carried through
    /// staging, so the txid-allocation group and the destination queue
    /// are the same group *structurally* even if the membership record
    /// changes mid-wave. Keys that change groups when the width moves
    /// stay Z2-ordered: the session's txid floor travels with it.
    fn routed_group(&self, membership: Option<&Membership>, key: &str) -> usize {
        let provisioned = self.leader_queues.shards();
        let width = membership
            .map(|m| m.active_groups.clamp(1, provisioned))
            .unwrap_or(provisioned);
        let group = group_of(key, width);
        membership.map(|m| m.route(group)).unwrap_or(group)
    }

    /// The membership record steering this batch, read strongly once per
    /// batch. Single-group tiers skip the read entirely — membership
    /// changes need somewhere to move writes *to*, so a one-group
    /// deployment is static by construction and stays byte-identical to
    /// the pre-membership follower.
    fn current_membership(&self, ctx: &Ctx) -> Option<Membership> {
        if self.leader_queues.shards() <= 1 {
            return None;
        }
        self.system.read_membership(ctx)
    }

    /// The meter retries are reported to (the deployment-shared meter
    /// behind the system table).
    fn meter(&self) -> &fk_cloud::Meter {
        self.system.kv().meter()
    }

    /// Records the session's highest pushed txid, absorbing transient
    /// storage errors. Safe to repeat: the mark is a monotone max, so a
    /// duplicate write of the same txid is a no-op.
    fn record_push_mark(&self, ctx: &Ctx, session: &str, txid: u64) -> fk_cloud::CloudResult<()> {
        with_retry(
            ctx,
            self.meter(),
            &RetryPolicy::standard(),
            "follower.push_mark",
            || self.system.record_session_push(ctx, session, txid),
        )
    }

    /// Wall-clock milliseconds used for lock timestamps.
    fn now_ms() -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_millis() as i64
    }

    /// Entry point for a queue batch. On a retryable error the failed
    /// index is reported so the queue redelivers from that message.
    ///
    /// The batch is split into **waves** of requests with pairwise
    /// disjoint lock sets (see module docs): lock + validate and the
    /// commits run on parallel workers inside a wave, while the
    /// leader-queue pushes — the txid-ordering step — stay serial in
    /// batch order. CloseSession requests form singleton waves (their
    /// ephemeral cleanup touches an unbounded path set).
    pub fn process_messages(&self, ctx: &Ctx, messages: &[Message]) -> Result<(), FnError> {
        let mut requests: Vec<(usize, ClientRequest)> = Vec::with_capacity(messages.len());
        // At-least-once delivery defence, in two layers. Within the
        // batch, a duplicated send is two messages with the same
        // (session, request id) — only the first is processed. Across
        // batches — a crash redelivery of fully committed work, or a
        // duplicated copy straddling a batch boundary — the session's
        // committed request watermark decides: it is advanced *inside*
        // each commit transaction, so a request at or below it has landed
        // exactly once and its re-execution would double-apply an
        // unconditional write. The durable read is paid only for
        // messages the queue has delivered before (`attempt > 1` — a
        // duplicated copy counts as a re-receive, see
        // [`fk_cloud::queue::Message::attempt`]): a first delivery cannot
        // be behind the watermark, so the clean path costs nothing. The
        // leader notifies the original's result, so dropped duplicates
        // owe the client nothing.
        let mut seen: HashSet<(String, u64)> = HashSet::new();
        let mut watermarks: HashMap<String, u64> = HashMap::new();
        for (i, msg) in messages.iter().enumerate() {
            ctx.charge(Op::FnCompute, msg.body.len());
            let Some(request) = ClientRequest::decode(&msg.body) else {
                // Malformed message: drop it rather than poison the queue.
                continue;
            };
            if request.request_id != INTERNAL_REQUEST {
                if msg.attempt > 1 {
                    if matches!(request.op, WriteOp::CloseSession) {
                        // A CloseSession never advances the watermark
                        // (it does not commit through `stage_push`), but
                        // a redelivered or duplicated copy has its own
                        // tell: the session item is only ever removed by
                        // the leader's deregistration, which notifies
                        // the close's success first — so if the item is
                        // gone, the original delivery was completed and
                        // answered, and re-running it would misreport
                        // `SessionExpired` for a successful close.
                        if self.system.get_session(ctx, &request.session_id).is_none() {
                            continue;
                        }
                    } else {
                        let watermark = *watermarks
                            .entry(request.session_id.clone())
                            .or_insert_with(|| {
                                self.system
                                    .session_request_watermark(ctx, &request.session_id)
                            });
                        if request.request_id <= watermark {
                            continue;
                        }
                    }
                }
                if !seen.insert((request.session_id.clone(), request.request_id)) {
                    continue;
                }
            }
            requests.push((i, request));
        }
        // One strong membership read steers the whole batch: a drain
        // begun mid-batch redirects from the *next* batch on, which is
        // safe — the drained group's leader keeps running until its
        // queue is empty.
        let membership = self.current_membership(ctx);
        let mut start = 0;
        while start < requests.len() {
            let end = wave_end(&requests, start);
            let wave = &requests[start..end];
            if wave.len() == 1 {
                let (msg_index, request) = &wave[0];
                self.process_request_with(ctx, request, membership.as_ref())
                    .map_err(|e| e.at_index(*msg_index))?;
            } else {
                self.process_wave(ctx, wave, membership.as_ref())?;
            }
            start = end;
        }
        Ok(())
    }

    /// Processes one client request end to end (single-request entry
    /// point; a batch of one behaves identically to the wave path).
    pub fn process_request(&self, ctx: &Ctx, request: &ClientRequest) -> Result<(), FnError> {
        let membership = self.current_membership(ctx);
        self.process_request_with(ctx, request, membership.as_ref())
    }

    fn process_request_with(
        &self,
        ctx: &Ctx,
        request: &ClientRequest,
        membership: Option<&Membership>,
    ) -> Result<(), FnError> {
        match &request.op {
            WriteOp::CloseSession => self.close_session(ctx, request, membership),
            _ => match self.run_single(ctx, request, membership) {
                Ok(_) => Ok(()),
                Err(OpError::Client(err)) => {
                    self.notify_failure(ctx, &request.session_id, request.request_id, err);
                    Ok(())
                }
                Err(OpError::Retry(e)) => Err(e),
            },
        }
    }

    /// Serial path for one request: prepare → stage → push → commit →
    /// mark (the wave machinery with a batch of one).
    fn run_single(
        &self,
        ctx: &Ctx,
        request: &ClientRequest,
        membership: Option<&Membership>,
    ) -> Result<u64, OpError> {
        let prepared = self.prepare(ctx, request)?;
        let mut chain: HashMap<String, u64> = HashMap::new();
        let Some(push) = self.stage_push(ctx, 0, request, prepared, &mut chain, membership)? else {
            return Ok(0);
        };
        let multi_group = self.leader_queues.shards() > 1;
        ctx.push_phase("push_to_leader");
        // A failed send enqueued nothing (the queue's fault point rolls
        // before anything lands), so retrying cannot duplicate the push.
        let push_queue = self.leader_queues.queue(push.group);
        let sent = with_retry(
            ctx,
            self.meter(),
            &RetryPolicy::standard(),
            "follower.push",
            || push_queue.send(ctx, LEADER_GROUP, push.body.clone()),
        );
        ctx.pop_phase();
        let seq = match sent {
            Ok(seq) => seq,
            Err(e) => {
                self.release_all(ctx, &push.acquired);
                return Err(OpError::Retry(FnError::retryable(e.to_string())));
            }
        };
        let pushed = Pushed {
            pos: 0,
            session: push.session,
            txid: if multi_group { push.alloc_txid } else { seq },
            commit: push.commit,
            eph_adds: push.eph_adds,
            eph_removes: push.eph_removes,
        };
        ctx.push_phase("commit");
        self.commit_pushed(ctx, &pushed);
        ctx.pop_phase();
        if multi_group {
            self.record_push_mark(ctx, &request.session_id, pushed.txid)
                .map_err(|e| OpError::Retry(FnError::retryable(e.to_string())))?;
        }
        Ok(pushed.txid)
    }

    /// One multi-request wave: parallel prepare, serial push, parallel
    /// commit, per-session mark advancement. Partial-batch contract: on
    /// a retryable failure at wave position `p`, every request before
    /// `p` is fully processed (pushed; its commit either executed or is
    /// the leader's to repair) and `p..` redeliver.
    fn process_wave(
        &self,
        ctx: &Ctx,
        wave: &[(usize, ClientRequest)],
        membership: Option<&Membership>,
    ) -> Result<(), FnError> {
        use parking_lot::Mutex;
        // Phase ➀/➁ in parallel: lock + validate every request of the
        // wave (disjoint lock sets by construction, so no intra-wave
        // contention).
        let slots: Vec<Mutex<Option<Result<Prepared, OpError>>>> =
            wave.iter().map(|_| Mutex::new(None)).collect();
        let _ = crate::distributor::fan_out(ctx, wave.len(), |job, child| {
            let (_, request) = &wave[job];
            *slots[job].lock() = Some(self.prepare(child, request));
            Ok(())
        });
        let mut prepared: Vec<Option<Prepared>> = Vec::with_capacity(wave.len());
        let mut client_errors: Vec<(usize, FkError)> = Vec::new();
        let mut first_retry: Option<(usize, FnError)> = None;
        for (pos, slot) in slots.into_iter().enumerate() {
            let result = slot.into_inner().expect("wave job ran");
            match result {
                Ok(p) => prepared.push(Some(p)),
                Err(OpError::Client(err)) => {
                    client_errors.push((pos, err));
                    prepared.push(None);
                }
                Err(OpError::Retry(e)) => {
                    if first_retry.is_none() {
                        first_retry = Some((pos, e));
                    }
                    prepared.push(None);
                }
            }
        }
        // The wave is processed up to the first retryable failure; every
        // later request redelivers, so its phase-➀ locks are released
        // now (timed locks would expire anyway, but waiting out the
        // lease would stall the redelivery). Client-error notifications
        // are *deferred* to the end of the wave: they are terminal for
        // their message, so they may only go out for positions the batch
        // actually consumes — and the consumed prefix is not known until
        // the push and send phases have reported their failures too.
        let cut = first_retry
            .as_ref()
            .map(|(pos, _)| *pos)
            .unwrap_or(wave.len());

        // Phase ➂: allocate txids serially in batch order (this order is
        // what makes per-session txids increase in submission order;
        // `chain` threads each session's in-wave predecessor), then push
        // the wave's records with **batched sends** — one SQS
        // SendMessageBatch round trip per ≤ 10 records per destination
        // queue, instead of one round trip per record. Within a queue
        // the batch preserves order, so single-group tiers still read
        // their txids off consecutive sequence numbers.
        let mut chain: HashMap<String, u64> = HashMap::new();
        let mut staged: Vec<StagedPush> = Vec::new();
        let mut push_failure: Option<(usize, FnError)> = None;
        for (pos, entry) in prepared.into_iter().enumerate() {
            let Some(p) = entry else { continue };
            if pos >= cut || push_failure.is_some() {
                // At or past the failure point: redelivered later.
                self.release_all(ctx, &p.acquired);
                continue;
            }
            let (_, request) = &wave[pos];
            match self.stage_push(ctx, pos, request, p, &mut chain, membership) {
                Ok(Some(push)) => staged.push(push),
                Ok(None) => {}
                Err(OpError::Client(err)) => {
                    client_errors.push((pos, err));
                }
                Err(OpError::Retry(e)) => {
                    // Requests staged before this position still push
                    // (the partial-batch contract promises everything
                    // before the reported index is fully processed).
                    push_failure = Some((pos, e));
                }
            }
        }
        let multi_group = self.leader_queues.shards() > 1;
        // Sends run in **position order**, batching consecutive runs with
        // the same destination queue (≤ 10 per request), and stop at the
        // first failure — the sent set is then always a position-prefix
        // of the wave, exactly the serial path's contract. Sending
        // out-of-position (e.g. whole queues at a time) could push a
        // session's *later* write while an earlier one failed, and its
        // redelivered predecessor would then re-allocate a txid above
        // the successor's, inverting the session's submission order
        // (Z2). In a single-group tier every record shares one queue, so
        // runs are full ≤ 10-record batches either way.
        let mut seq_of: Vec<Option<u64>> = vec![None; staged.len()];
        let mut send_failure: Option<(usize, FnError)> = None;
        let mut run_start = 0;
        while run_start < staged.len() && send_failure.is_none() {
            let queue_idx = staged[run_start].group;
            let mut run_end = run_start + 1;
            while run_end < staged.len()
                && run_end - run_start < 10
                && staged[run_end].group == queue_idx
            {
                run_end += 1;
            }
            let bodies: Vec<bytes::Bytes> = staged[run_start..run_end]
                .iter()
                .map(|push| push.body.clone())
                .collect();
            ctx.push_phase("push_to_leader");
            // The batch lands whole or not at all, and a failed attempt
            // enqueued nothing — retrying cannot duplicate any record.
            let run_queue = self.leader_queues.queue(queue_idx);
            let sent = with_retry(
                ctx,
                self.meter(),
                &RetryPolicy::standard(),
                "follower.push",
                || run_queue.send_batch(ctx, LEADER_GROUP, bodies.clone()),
            );
            ctx.pop_phase();
            match sent {
                Ok(seqs) => {
                    for (slot, seq) in seq_of[run_start..run_end].iter_mut().zip(seqs) {
                        *slot = Some(seq);
                    }
                }
                Err(e) => {
                    send_failure = Some((staged[run_start].pos, FnError::retryable(e.to_string())));
                }
            }
            run_start = run_end;
        }
        if let Some(failure) = send_failure {
            if push_failure
                .as_ref()
                .map(|(p, _)| *p > failure.0)
                .unwrap_or(true)
            {
                push_failure = Some(failure);
            }
        }
        let mut pushed: Vec<Pushed> = Vec::new();
        for (i, push) in staged.into_iter().enumerate() {
            match seq_of[i] {
                Some(seq) => pushed.push(Pushed {
                    pos: push.pos,
                    txid: if multi_group { push.alloc_txid } else { seq },
                    session: push.session,
                    commit: push.commit,
                    eph_adds: push.eph_adds,
                    eph_removes: push.eph_removes,
                }),
                None => {
                    // Unsent (at or past the send failure): redelivered
                    // later; unlock now.
                    self.release_all(ctx, &push.acquired);
                }
            }
        }

        // Phase ➃ in parallel: commits are independent conditional
        // writes (disjoint items). A failed commit is the leader's to
        // repair — the record is already pushed (see module docs).
        ctx.span("commit", || {
            crate::distributor::fan_out(ctx, pushed.len(), |job, child| {
                self.commit_pushed(child, &pushed[job]);
                Ok(())
            })
        })
        .expect("commit workers never fail the wave");

        // Per-session marks: the highest pushed txid per session, set
        // once per session per wave (monotone — the write queue's FIFO
        // group serializes this session's follower work). A failed mark
        // write redelivers from the *failed session's* first request —
        // its redelivery repairs the marker via the already-committed
        // probe — not the whole wave.
        if self.leader_queues.shards() > 1 {
            let mut per_session: Vec<(&str, u64, usize)> = Vec::new();
            for done in &pushed {
                match per_session.iter_mut().find(|(s, _, _)| *s == done.session) {
                    Some((_, max, first_pos)) => {
                        *max = (*max).max(done.txid);
                        *first_pos = (*first_pos).min(done.pos);
                    }
                    None => per_session.push((done.session.as_str(), done.txid, done.pos)),
                }
            }
            for (session, txid, first_pos) in per_session {
                self.record_push_mark(ctx, session, txid)
                    .map_err(|e| FnError::retryable(e.to_string()).at_index(wave[first_pos].0))?;
            }
        }

        // The consumed prefix is now final: everything before the
        // earliest retryable failure is processed, everything at or
        // after it redelivers. Only now may the terminal client-error
        // notifications go out — a client error at a redelivered
        // position must stay unreported, because the redelivery
        // re-validates and its verdict may legitimately differ (e.g.
        // the conflicting node was deleted in between) and the client
        // must not have been told another outcome already.
        let final_cut = [
            push_failure.as_ref().map(|(pos, _)| *pos),
            first_retry.as_ref().map(|(pos, _)| *pos),
        ]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(wave.len());
        for (pos, err) in client_errors {
            if pos < final_cut {
                let (_, request) = &wave[pos];
                self.notify_failure(ctx, &request.session_id, request.request_id, err);
            }
        }

        // Report the earliest unprocessed position for redelivery.
        if let Some((pos, e)) = push_failure {
            return Err(e.at_index(wave[pos].0));
        }
        if let Some((pos, e)) = first_retry {
            return Err(e.at_index(wave[pos].0));
        }
        Ok(())
    }

    fn notify_failure(&self, ctx: &Ctx, session: &str, request_id: u64, err: FkError) {
        if request_id == INTERNAL_REQUEST {
            return;
        }
        self.bus.notify(
            ctx,
            session,
            ClientNotification::WriteResult {
                request_id,
                result: Err(err),
                txid: 0,
            },
        );
    }

    /// ➀ acquire locks on all keys, sorted to avoid deadlock with
    /// concurrent followers locking overlapping sets.
    fn lock_all(&self, ctx: &Ctx, paths: &[&str]) -> Result<Vec<Acquired>, OpError> {
        let mut sorted: Vec<&str> = paths.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let locks = self.system.locks();
        for attempt in 0..self.config.lock_attempts {
            let mut acquired: Vec<Acquired> = Vec::with_capacity(sorted.len());
            let now = Self::now_ms() + attempt as i64; // distinct stamps per retry
            let mut contended = false;
            for path in &sorted {
                // Transient storage errors (throttling, injected faults)
                // retry in place with a tight budget — queue redelivery
                // is the second line of defence but burns a delivery
                // attempt toward the DLQ. Contention (ConditionFailed)
                // is not retried here; the outer attempt loop owns it.
                let acquire = with_retry(
                    ctx,
                    self.meter(),
                    &RetryPolicy::quick(),
                    "follower.lock",
                    || locks.acquire(ctx, &keys::node(path), now),
                );
                match acquire {
                    Ok(acq) => acquired.push(acq),
                    Err(CloudError::ConditionFailed { .. }) => {
                        contended = true;
                        break;
                    }
                    Err(e) => return Err(OpError::Retry(FnError::retryable(e.to_string()))),
                }
            }
            if !contended {
                return Ok(acquired);
            }
            for acq in &acquired {
                let _ = locks.release(ctx, &acq.token);
            }
            std::thread::yield_now();
        }
        // Persistent contention: let the queue redeliver later.
        Err(OpError::Retry(FnError::retryable("lock contention")))
    }

    fn release_all(&self, ctx: &Ctx, acquired: &[Acquired]) {
        for acq in acquired {
            let _ = self.system.locks().release(ctx, &acq.token);
        }
    }

    fn find<'a>(acquired: &'a [Acquired], path: &str) -> &'a Acquired {
        let key = keys::node(path);
        acquired
            .iter()
            .find(|a| a.token.key == key)
            .expect("lock acquired for path")
    }

    /// The request tag marking which request committed a node state, used
    /// to recognize our own work on redelivery.
    fn req_tag(request: &ClientRequest) -> String {
        format!("{}#{}", request.session_id, request.request_id)
    }

    /// ➀–➁ for any write op: lock the involved nodes and validate,
    /// producing everything phases ➂/➃ need. On error every acquired
    /// lock is released before returning.
    fn prepare(&self, ctx: &Ctx, request: &ClientRequest) -> Result<Prepared, OpError> {
        match &request.op {
            WriteOp::Multi { ops } => self.prepare_multi(ctx, request, ops),
            WriteOp::CloseSession => unreachable!("handled separately"),
            op => self.prepare_single(ctx, request, op),
        }
    }

    /// ➀–➁ for create / set_data / delete.
    fn prepare_single(
        &self,
        ctx: &Ctx,
        request: &ClientRequest,
        op: &WriteOp,
    ) -> Result<Prepared, OpError> {
        let path = op.path();
        zkpath::validate(path).map_err(OpError::Client)?;
        let parent = zkpath::parent(path);

        // ➀ lock. Sequential creates lock the parent first: the parent's
        // lock serializes the sequence counter, and the generated name is
        // locked once known (it is fresh by construction).
        let sequential = matches!(op, WriteOp::Create { mode, .. } if mode.is_sequential());
        let lock_paths: Vec<&str> = match op {
            WriteOp::SetData { .. } => vec![path],
            WriteOp::Create { .. } | WriteOp::Delete { .. } => {
                let parent = parent.ok_or(OpError::Client(FkError::BadArguments {
                    detail: "cannot create or delete the root".into(),
                }))?;
                if sequential {
                    vec![parent]
                } else {
                    vec![path, parent]
                }
            }
            WriteOp::CloseSession | WriteOp::Multi { .. } => unreachable!("handled separately"),
        };
        ctx.push_phase("lock_node");
        let mut acquired = match self.lock_all(ctx, &lock_paths) {
            Ok(a) => a,
            Err(e) => {
                ctx.pop_phase();
                return Err(e);
            }
        };
        let mut final_path_override = None;
        if sequential {
            let parent_path = parent.expect("sequential create has parent");
            let parent_acq = Self::find(&acquired, parent_path);
            if Sys::node_exists(parent_acq.old.as_ref()) {
                let seq = parent_acq
                    .old
                    .as_ref()
                    .and_then(|i| i.num(node_attr::SEQ))
                    .unwrap_or(0);
                let fp = zkpath::with_sequence(path, seq);
                let acquire = with_retry(
                    ctx,
                    self.meter(),
                    &RetryPolicy::quick(),
                    "follower.lock",
                    || {
                        self.system
                            .locks()
                            .acquire(ctx, &keys::node(&fp), Self::now_ms())
                    },
                );
                match acquire {
                    Ok(acq) => {
                        acquired.push(acq);
                        final_path_override = Some(fp);
                    }
                    Err(e) => {
                        self.release_all(ctx, &acquired);
                        ctx.pop_phase();
                        return Err(OpError::Retry(FnError::retryable(e.to_string())));
                    }
                }
            }
            // A missing parent falls through to validation, which reports
            // NoNode to the client.
        }
        ctx.pop_phase();

        // ➁ validate against the locked state; on failure release.
        ctx.push_phase("validate");
        let plan =
            self.validate_and_plan(request, op, path, parent, &acquired, final_path_override);
        ctx.pop_phase();
        match plan {
            Ok(plan) => Ok(Prepared { acquired, plan }),
            Err(e) => {
                self.release_all(ctx, &acquired);
                Err(e)
            }
        }
    }

    /// ➀–➁ for a `multi`: lock every touched path as one sorted set,
    /// then validate the ops **in order against an overlay** of the
    /// locked state and merge their updates into one all-or-nothing
    /// [`SystemCommit`] (see module docs).
    fn prepare_multi(
        &self,
        ctx: &Ctx,
        request: &ClientRequest,
        ops: &[MultiOp],
    ) -> Result<Prepared, OpError> {
        let fail = |index: usize, cause: FkError| {
            OpError::Client(FkError::MultiFailed {
                index: index as u32,
                cause: Box::new(cause),
            })
        };
        if ops.is_empty() {
            return Err(OpError::Client(FkError::BadArguments {
                detail: "empty multi".into(),
            }));
        }
        // Pre-lock validation: path syntax, size limits, structure, and
        // the one-*mutating*-op-per-path restriction (DynamoDB's
        // TransactWriteItems cannot touch one item twice, so merged
        // per-item updates could not express two writes to one path).
        // Checks are free: a check on a mutated path folds into that
        // item's validation (no second transact item), and a standalone
        // check maps to a ConditionCheck-style no-op item. Sequential
        // creates are also exempt: their *final* paths are distinct by
        // the parent's counter (two `create_seq("/q/task-")` ops are a
        // legal ZooKeeper multi), and a generated-name collision with an
        // explicitly named op is caught by the overlay's NodeExists
        // check once the name is resolved.
        let mut mutated: HashSet<&str> = HashSet::new();
        for (i, op) in ops.iter().enumerate() {
            zkpath::validate(op.path()).map_err(|e| fail(i, e))?;
            let sequential_create =
                matches!(op, MultiOp::Create { mode, .. } if mode.is_sequential());
            if !matches!(op, MultiOp::Check { .. })
                && !sequential_create
                && !mutated.insert(op.path())
            {
                return Err(fail(
                    i,
                    FkError::BadArguments {
                        detail: "duplicate mutating path in multi".into(),
                    },
                ));
            }
            match op {
                MultiOp::Create { path, payload, .. } => {
                    if zkpath::parent(path).is_none() {
                        return Err(fail(
                            i,
                            FkError::BadArguments {
                                detail: "cannot create the root".into(),
                            },
                        ));
                    }
                    if payload.byte_len() > self.config.max_node_bytes {
                        return Err(fail(
                            i,
                            FkError::TooLarge {
                                size: payload.byte_len(),
                                limit: self.config.max_node_bytes,
                            },
                        ));
                    }
                }
                MultiOp::SetData { payload, .. } => {
                    if payload.byte_len() > self.config.max_node_bytes {
                        return Err(fail(
                            i,
                            FkError::TooLarge {
                                size: payload.byte_len(),
                                limit: self.config.max_node_bytes,
                            },
                        ));
                    }
                }
                MultiOp::Delete { path, .. } => {
                    if zkpath::parent(path).is_none() {
                        return Err(fail(
                            i,
                            FkError::BadArguments {
                                detail: "cannot delete the root".into(),
                            },
                        ));
                    }
                }
                MultiOp::Check { .. } => {}
            }
        }

        // ➀ one sorted, deduplicated lock set over every touched path
        // (`lock_all` sorts; sequential creates lock their generated
        // names during validation, once the name is known).
        let op_holder = WriteOp::Multi { ops: ops.to_vec() };
        let lock_paths: Vec<&str> = lock_set(&op_holder).expect("multi has a lock set");
        ctx.push_phase("lock_node");
        let acquired = self.lock_all(ctx, &lock_paths);
        ctx.pop_phase();
        let mut acquired = acquired?;

        ctx.push_phase("validate");
        let plan = self.plan_multi(ctx, request, ops, &mut acquired);
        ctx.pop_phase();
        match plan {
            Ok(plan) => Ok(Prepared { acquired, plan }),
            Err(e) => {
                self.release_all(ctx, &acquired);
                Err(e)
            }
        }
    }

    /// ➁ for a `multi`: sequential validation against the overlay,
    /// producing the merged commit, the sub list and the per-op
    /// outcomes. `acquired` grows when sequential creates lock their
    /// generated names.
    #[allow(clippy::too_many_lines)]
    fn plan_multi(
        &self,
        ctx: &Ctx,
        request: &ClientRequest,
        ops: &[MultiOp],
        acquired: &mut Vec<Acquired>,
    ) -> Result<WritePlan, OpError> {
        let tag = Self::req_tag(request);
        let fail = |index: usize, cause: FkError| {
            OpError::Client(FkError::MultiFailed {
                index: index as u32,
                cause: Box::new(cause),
            })
        };
        let mut overlay: HashMap<String, SimNode> = HashMap::new();
        let mut items: Vec<CommitItem> = Vec::new();
        let mut subs: Vec<MultiSub> = Vec::new();
        let mut eph_adds: Vec<String> = Vec::new();
        let mut eph_removes: Vec<(String, String)> = Vec::new();
        let mut primary: Option<String> = None;

        for (i, op) in ops.iter().enumerate() {
            match op {
                MultiOp::Create {
                    path,
                    payload,
                    mode,
                } => {
                    let parent_path = zkpath::parent(path).expect("validated").to_owned();
                    let (parent_exists, parent_ephemeral, seq) = {
                        let p = sim_node(&mut overlay, acquired, &parent_path);
                        (p.exists, p.eph_owner.is_some(), p.seq)
                    };
                    if !parent_exists {
                        if let Some(txid) = already_probe(acquired, path, &tag) {
                            return Ok(WritePlan::already(txid));
                        }
                        return Err(fail(i, FkError::NoNode));
                    }
                    if parent_ephemeral {
                        return Err(fail(i, FkError::NoChildrenForEphemerals));
                    }
                    let final_path = if mode.is_sequential() {
                        let fp = zkpath::with_sequence(path, seq);
                        let acquire = with_retry(
                            ctx,
                            self.meter(),
                            &RetryPolicy::quick(),
                            "follower.lock",
                            || {
                                self.system
                                    .locks()
                                    .acquire(ctx, &keys::node(&fp), Self::now_ms())
                            },
                        );
                        match acquire {
                            Ok(acq) => acquired.push(acq),
                            Err(e) => {
                                return Err(OpError::Retry(FnError::retryable(e.to_string())))
                            }
                        }
                        sim_node(&mut overlay, acquired, &parent_path).seq += 1;
                        fp
                    } else {
                        path.clone()
                    };
                    if sim_node(&mut overlay, acquired, &final_path).exists {
                        if let Some(txid) = already_probe(acquired, &final_path, &tag) {
                            return Ok(WritePlan::already(txid));
                        }
                        return Err(fail(i, FkError::NodeExists));
                    }
                    let name = zkpath::basename(&final_path).to_owned();
                    let ephemeral_owner = mode.is_ephemeral().then(|| request.session_id.clone());
                    {
                        let d = delta(&mut items, acquired, &parent_path);
                        if mode.is_sequential() {
                            set_attr(d, node_attr::SEQ, SerValue::Num(seq + 1));
                        }
                        set_attr(d, node_attr::CHILDREN_TXID, SerValue::Txid);
                        d.appends.push((
                            node_attr::CHILDREN.to_owned(),
                            SerValue::StrList(vec![name.clone()]),
                        ));
                    }
                    {
                        let d = delta(&mut items, acquired, &final_path);
                        set_attr(d, node_attr::CREATED, SerValue::Txid);
                        set_attr(d, node_attr::VERSION, SerValue::Txid);
                        set_attr(d, node_attr::VCOUNT, SerValue::Num(0));
                        set_attr(d, "req_tag", SerValue::Str(tag.clone()));
                        if let Some(owner) = &ephemeral_owner {
                            set_attr(d, node_attr::EPH_OWNER, SerValue::Str(owner.clone()));
                        }
                        d.appends
                            .push((node_attr::TXQ.to_owned(), SerValue::TxidList));
                        d.removes.push(node_attr::DELETED.to_owned());
                    }
                    let children_after = {
                        let p = sim_node(&mut overlay, acquired, &parent_path);
                        p.children.push(name);
                        p.children.clone()
                    };
                    *sim_node(&mut overlay, acquired, &final_path) = SimNode {
                        exists: true,
                        vcount: 0,
                        mzxid: 0,
                        czxid: 0,
                        children: Vec::new(),
                        seq: 0,
                        eph_owner: ephemeral_owner.clone(),
                    };
                    if ephemeral_owner.is_some() {
                        eph_adds.push(final_path.clone());
                    }
                    subs.push(MultiSub {
                        path: final_path.clone(),
                        user_update: UserUpdate::WriteNode {
                            path: final_path.clone(),
                            payload: payload.clone(),
                            created_txid: 0,
                            version: 0,
                            children: vec![],
                            ephemeral_owner,
                            parent_children: Some((parent_path.clone(), children_after)),
                        },
                        fires: vec![
                            FiredWatch {
                                watch_path: final_path.clone(),
                                event_type: WatchEventType::NodeCreated,
                            },
                            FiredWatch {
                                watch_path: parent_path,
                                event_type: WatchEventType::NodeChildrenChanged,
                            },
                        ],
                        is_delete: false,
                        outcome: OpOutcome::Created {
                            path: final_path.clone(),
                            stat: Stat {
                                data_length: payload.byte_len() as u32,
                                ephemeral: mode.is_ephemeral(),
                                ..Stat::default()
                            },
                        },
                    });
                    primary.get_or_insert(final_path);
                }
                MultiOp::SetData {
                    path,
                    payload,
                    expected_version,
                } => {
                    let (exists, vcount, czxid, children, eph_owner) = {
                        let n = sim_node(&mut overlay, acquired, path);
                        (
                            n.exists,
                            n.vcount,
                            n.czxid,
                            n.children.clone(),
                            n.eph_owner.clone(),
                        )
                    };
                    if !exists {
                        if let Some(txid) = already_probe(acquired, path, &tag) {
                            return Ok(WritePlan::already(txid));
                        }
                        return Err(fail(i, FkError::NoNode));
                    }
                    if *expected_version >= 0 && vcount != *expected_version {
                        if let Some(txid) = already_probe(acquired, path, &tag) {
                            return Ok(WritePlan::already(txid));
                        }
                        return Err(fail(i, FkError::BadVersion));
                    }
                    {
                        let d = delta(&mut items, acquired, path);
                        set_attr(d, node_attr::VERSION, SerValue::Txid);
                        set_attr(d, node_attr::VCOUNT, SerValue::Num((vcount + 1) as i64));
                        set_attr(d, "req_tag", SerValue::Str(tag.clone()));
                        d.appends
                            .push((node_attr::TXQ.to_owned(), SerValue::TxidList));
                    }
                    sim_node(&mut overlay, acquired, path).vcount = vcount + 1;
                    let stat = Stat {
                        created_txid: czxid,
                        modified_txid: 0,
                        version: vcount + 1,
                        num_children: children.len() as u32,
                        data_length: payload.byte_len() as u32,
                        ephemeral: eph_owner.is_some(),
                    };
                    subs.push(MultiSub {
                        path: path.clone(),
                        user_update: UserUpdate::WriteNode {
                            path: path.clone(),
                            payload: payload.clone(),
                            created_txid: czxid,
                            version: vcount + 1,
                            children,
                            ephemeral_owner: eph_owner,
                            parent_children: None,
                        },
                        fires: vec![FiredWatch {
                            watch_path: path.clone(),
                            event_type: WatchEventType::NodeDataChanged,
                        }],
                        is_delete: false,
                        outcome: OpOutcome::Set {
                            path: path.clone(),
                            stat,
                        },
                    });
                    primary.get_or_insert_with(|| path.clone());
                }
                MultiOp::Delete {
                    path,
                    expected_version,
                } => {
                    let parent_path = zkpath::parent(path).expect("validated").to_owned();
                    let (exists, vcount, children_empty, eph_owner) = {
                        let n = sim_node(&mut overlay, acquired, path);
                        (
                            n.exists,
                            n.vcount,
                            n.children.is_empty(),
                            n.eph_owner.clone(),
                        )
                    };
                    if !exists {
                        if let Some(txid) = already_probe(acquired, path, &tag) {
                            return Ok(WritePlan::already(txid));
                        }
                        return Err(fail(i, FkError::NoNode));
                    }
                    if *expected_version >= 0 && vcount != *expected_version {
                        return Err(fail(i, FkError::BadVersion));
                    }
                    if !children_empty {
                        return Err(fail(i, FkError::NotEmpty));
                    }
                    let name = zkpath::basename(path).to_owned();
                    {
                        let d = delta(&mut items, acquired, path);
                        set_attr(d, node_attr::DELETED, SerValue::Num(1));
                        set_attr(d, node_attr::VERSION, SerValue::Txid);
                        set_attr(d, "req_tag", SerValue::Str(tag.clone()));
                        d.appends
                            .push((node_attr::TXQ.to_owned(), SerValue::TxidList));
                    }
                    {
                        let d = delta(&mut items, acquired, &parent_path);
                        set_attr(d, node_attr::CHILDREN_TXID, SerValue::Txid);
                        d.list_removes.push((
                            node_attr::CHILDREN.to_owned(),
                            SerValue::StrList(vec![name.clone()]),
                        ));
                    }
                    let children_after = {
                        let p = sim_node(&mut overlay, acquired, &parent_path);
                        p.children.retain(|c| c != &name);
                        p.children.clone()
                    };
                    sim_node(&mut overlay, acquired, path).exists = false;
                    if let Some(owner) = eph_owner {
                        eph_removes.push((owner, path.clone()));
                    }
                    subs.push(MultiSub {
                        path: path.clone(),
                        user_update: UserUpdate::DeleteNode {
                            path: path.clone(),
                            parent_children: Some((parent_path.clone(), children_after)),
                        },
                        fires: vec![
                            FiredWatch {
                                watch_path: path.clone(),
                                event_type: WatchEventType::NodeDeleted,
                            },
                            FiredWatch {
                                watch_path: parent_path,
                                event_type: WatchEventType::NodeChildrenChanged,
                            },
                        ],
                        is_delete: true,
                        outcome: OpOutcome::Deleted { path: path.clone() },
                    });
                    primary.get_or_insert_with(|| path.clone());
                }
                MultiOp::Check {
                    path,
                    expected_version,
                } => {
                    let (exists, vcount, czxid, mzxid, num_children, eph) = {
                        let n = sim_node(&mut overlay, acquired, path);
                        (
                            n.exists,
                            n.vcount,
                            n.czxid,
                            n.mzxid,
                            n.children.len() as u32,
                            n.eph_owner.is_some(),
                        )
                    };
                    if !exists {
                        return Err(fail(i, FkError::NoNode));
                    }
                    if *expected_version >= 0 && vcount != *expected_version {
                        return Err(fail(i, FkError::BadVersion));
                    }
                    // Ensure the checked item appears in the commit so
                    // its lock releases with everyone else's (the item
                    // update is a pure unlock — no attribute changes).
                    delta(&mut items, acquired, path);
                    subs.push(MultiSub {
                        path: path.clone(),
                        user_update: UserUpdate::None,
                        fires: vec![],
                        is_delete: false,
                        outcome: OpOutcome::Checked {
                            stat: Stat {
                                created_txid: czxid,
                                modified_txid: mzxid,
                                version: vcount,
                                num_children,
                                data_length: 0,
                                ephemeral: eph,
                            },
                        },
                    });
                }
            }
        }

        let Some(primary) = primary else {
            // Check-only multi: the validation under locks *is* the
            // transaction — no commit, no push, no txid. The outcomes
            // are answered directly by the caller.
            return Ok(WritePlan {
                local_result: Some(subs.into_iter().map(|sub| sub.outcome).collect()),
                ..WritePlan::new(String::new())
            });
        };
        Ok(WritePlan {
            commit: SystemCommit { items },
            subs,
            eph_adds,
            eph_removes,
            ..WritePlan::new(primary)
        })
    }

    /// Phase ➂ minus the send, shared by the serial path and the wave's
    /// batched push: resolves the already-committed / check-only cases,
    /// allocates the txid (multi-group), and encodes the record.
    ///
    /// In a multi-group tier the txid comes from the group's epoch
    /// counter, floored at the session's previous txid and the locked
    /// nodes' last txids (version for the primary path, children_txid
    /// for a parent) — this is what keeps txids totally ordered per
    /// session and per path across shard groups. A single-group tier
    /// (the default deployment) skips all of that: one queue totally
    /// orders everything, its sequence number *is* the txid (the
    /// paper's scheme), and the sequencing bookkeeping would add billed
    /// strong-consistency KV round trips to every write for nothing.
    /// `chain` carries each session's highest in-wave txid so
    /// same-session requests in one wave floor and sequence after one
    /// another. Returns `None` when nothing needs pushing (already
    /// committed on redelivery, or a check-only multi answered
    /// locally).
    fn stage_push(
        &self,
        ctx: &Ctx,
        pos: usize,
        request: &ClientRequest,
        prepared: Prepared,
        chain: &mut HashMap<String, u64>,
        membership: Option<&Membership>,
    ) -> Result<Option<StagedPush>, OpError> {
        let Prepared { acquired, mut plan } = prepared;
        let multi_group = self.leader_queues.shards() > 1;
        if let Some(txid) = plan.already_committed {
            self.release_all(ctx, &acquired);
            if multi_group && txid > 0 {
                self.record_push_mark(ctx, &request.session_id, txid)
                    .map_err(|e| OpError::Retry(FnError::retryable(e.to_string())))?;
            }
            return Ok(None);
        }
        if let Some(outcomes) = plan.local_result {
            self.release_all(ctx, &acquired);
            self.bus.notify(
                ctx,
                &request.session_id,
                ClientNotification::WriteResult {
                    request_id: request.request_id,
                    result: Ok(WriteResultData {
                        path: String::new(),
                        stat: Stat::default(),
                        op_results: outcomes,
                    }),
                    txid: 0,
                },
            );
            return Ok(None);
        }
        // Drain re-route happens *here*, before txid allocation: the
        // allocation group and the destination queue below are the same
        // resolved group, so a redirected write sequences in its
        // successor's epoch stream — never in the queue of a group whose
        // leader is about to stop.
        let group = if multi_group {
            self.routed_group(membership, &plan.final_path)
        } else {
            0
        };
        let (alloc_txid, prev_txid) = if multi_group {
            ctx.push_phase("alloc_txid");
            let stored_prev = match chain.get(&request.session_id) {
                Some(in_wave) => *in_wave,
                None => self.system.session_last_txid(ctx, &request.session_id),
            };
            let mut floor = stored_prev;
            for acq in &acquired {
                if let Some(item) = acq.old.as_ref() {
                    floor = floor
                        .max(item.num(node_attr::VERSION).unwrap_or(0) as u64)
                        .max(item.num(node_attr::CHILDREN_TXID).unwrap_or(0) as u64);
                }
            }
            // Safe to repeat: a transiently failed allocation never
            // advanced the counter (the fault point rolls before the
            // conditional update applies), and even a hypothetical
            // burned value only leaves a gap — txids need not be dense.
            let allocated = with_retry(
                ctx,
                self.meter(),
                &RetryPolicy::standard(),
                "follower.alloc_txid",
                || self.system.alloc_txid(ctx, group, floor),
            );
            ctx.pop_phase();
            match allocated {
                Ok(txid) => {
                    chain.insert(request.session_id.clone(), txid);
                    (txid, stored_prev)
                }
                Err(e) => {
                    self.release_all(ctx, &acquired);
                    return Err(OpError::Retry(FnError::retryable(e.to_string())));
                }
            }
        } else {
            (0, 0)
        };
        // Advance the session's committed-request watermark *inside* the
        // commit transaction: the watermark moves exactly when the
        // write's effects land (whether the follower or a repairing
        // leader runs the commit), so a redelivery of this request — the
        // crash-between-commit-and-ack window — is filtered durably by
        // `process_messages`. Unguarded: the `seq:` item is not under a
        // timed lock, and the transact is all-or-nothing regardless.
        if request.request_id != INTERNAL_REQUEST {
            plan.commit.items.push(CommitItem {
                key: keys::session_seq(&request.session_id),
                lock_ts: crate::commit::UNGUARDED,
                sets: vec![(
                    session_attr::LAST_REQUEST.to_owned(),
                    SerValue::Num(request.request_id as i64),
                )],
                appends: vec![],
                removes: vec![],
                list_removes: vec![],
            });
        }
        let record = LeaderRecord {
            session_id: request.session_id.clone(),
            request_id: request.request_id,
            txid: alloc_txid,
            prev_txid,
            path: plan.final_path.clone(),
            commit: plan.commit.clone(),
            user_update: plan.user_update,
            stat: plan.stat,
            fires: plan.fires,
            is_delete: plan.is_delete,
            deregister_session: false,
            ops: plan.subs,
        };
        Ok(Some(StagedPush {
            pos,
            session: request.session_id.clone(),
            group,
            body: record.encode(),
            alloc_txid,
            commit: plan.commit,
            eph_adds: plan.eph_adds,
            eph_removes: plan.eph_removes,
            acquired,
        }))
    }

    /// ➃ commit-and-unlock, conditional on the locks still being held.
    /// Never fails the batch: the record is already in a leader queue,
    /// and the leader re-executes the same commit description
    /// (`TryCommit`) for any missing commit — re-delivering the message
    /// would only produce an orphaned duplicate push. A stolen lock
    /// likewise hands the decision to the leader (Algorithm 2 ➋).
    fn commit_pushed(&self, ctx: &Ctx, pushed: &Pushed) {
        if self
            .config
            .skip_commits
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            // Injected crash between push (➂) and commit (➃): leave the
            // commit to the leader's TryCommit, exactly like a real
            // follower death at this point.
            return;
        }
        // Transient failures retry with a tight budget (the commit is a
        // single all-or-nothing transaction, so a failed attempt wrote
        // nothing); anything that survives the budget is the leader's
        // TryCommit to repair, as before.
        let committed = with_retry(
            ctx,
            self.meter(),
            &RetryPolicy::quick(),
            "follower.commit",
            || crate::commit::execute(&pushed.commit, pushed.txid, ctx, self.system.kv()),
        );
        if committed.is_ok() {
            // Session bookkeeping for ephemeral lifecycle (outside the
            // node transaction: it only drives heartbeat cleanup).
            for path in &pushed.eph_adds {
                let _ = self
                    .system
                    .add_session_ephemeral(ctx, &pushed.session, path);
            }
            for (owner, path) in &pushed.eph_removes {
                let _ = self.system.remove_session_ephemeral(ctx, owner, path);
            }
        }
        // Any failure — stolen lock or storage error — is the leader's
        // to resolve; the commit description rides the pushed record.
    }

    /// Validation and commit planning (Algorithm 1 ➁).
    fn validate_and_plan(
        &self,
        request: &ClientRequest,
        op: &WriteOp,
        path: &str,
        parent: Option<&str>,
        acquired: &[Acquired],
        final_path_override: Option<String>,
    ) -> Result<WritePlan, OpError> {
        let tag = Self::req_tag(request);
        match op {
            WriteOp::Create { payload, mode, .. } => self.plan_create(
                request,
                payload,
                *mode,
                path,
                parent.expect("create locks parent"),
                acquired,
                &tag,
                final_path_override,
            ),
            WriteOp::SetData {
                payload,
                expected_version,
                ..
            } => self.plan_set_data(payload, *expected_version, path, acquired, &tag),
            WriteOp::Delete {
                expected_version, ..
            } => self.plan_delete(
                *expected_version,
                path,
                parent.expect("delete locks parent"),
                acquired,
                &tag,
            ),
            WriteOp::CloseSession | WriteOp::Multi { .. } => unreachable!("handled separately"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_create(
        &self,
        request: &ClientRequest,
        payload: &Payload,
        mode: CreateMode,
        path: &str,
        parent: &str,
        acquired: &[Acquired],
        tag: &str,
        final_path_override: Option<String>,
    ) -> Result<WritePlan, OpError> {
        if payload.byte_len() > self.config.max_node_bytes {
            return Err(OpError::Client(FkError::TooLarge {
                size: payload.byte_len(),
                limit: self.config.max_node_bytes,
            }));
        }
        let parent_acq = Self::find(acquired, parent);
        if !Sys::node_exists(parent_acq.old.as_ref()) {
            return Err(OpError::Client(FkError::NoNode));
        }
        let parent_item = parent_acq.old.as_ref().expect("parent exists");
        if parent_item.contains(node_attr::EPH_OWNER) {
            return Err(OpError::Client(FkError::NoChildrenForEphemerals));
        }

        // Sequential names come from the parent's counter (§2.2 "sequential
        // nodes" in Table 1); the caller locked the generated name.
        let seq = parent_item.num(node_attr::SEQ).unwrap_or(0);
        let final_path = final_path_override.unwrap_or_else(|| path.to_owned());

        let node_acq = Self::find(acquired, &final_path);
        if let Some(existing) = node_acq.old.as_ref() {
            if Sys::node_exists(Some(existing)) {
                if existing.str("req_tag") == Some(tag) {
                    return Ok(WritePlan::already(
                        existing.num(node_attr::VERSION).unwrap_or(0) as u64,
                    ));
                }
                return Err(OpError::Client(FkError::NodeExists));
            }
        }

        let mut children_after: Vec<String> = parent_item
            .list(node_attr::CHILDREN)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        children_after.push(zkpath::basename(&final_path).to_owned());

        let ephemeral_owner = mode.is_ephemeral().then(|| request.session_id.clone());

        // Commit: node item + parent item, atomically (Z1).
        let node_key_path: &str = &final_path;
        let mut node_sets = vec![
            (node_attr::CREATED.to_owned(), SerValue::Txid),
            (node_attr::VERSION.to_owned(), SerValue::Txid),
            (node_attr::VCOUNT.to_owned(), SerValue::Num(0)),
            ("req_tag".to_owned(), SerValue::Str(tag.to_owned())),
        ];
        if let Some(owner) = &ephemeral_owner {
            node_sets.push((
                node_attr::EPH_OWNER.to_owned(),
                SerValue::Str(owner.clone()),
            ));
        }
        let node_item = CommitItem {
            key: keys::node(node_key_path),
            lock_ts: node_acq.token.timestamp,
            sets: node_sets,
            appends: vec![(node_attr::TXQ.to_owned(), SerValue::TxidList)],
            removes: vec![node_attr::DELETED.to_owned()],
            list_removes: vec![],
        };
        let mut parent_sets = Vec::new();
        if mode.is_sequential() {
            parent_sets.push((node_attr::SEQ.to_owned(), SerValue::Num(seq + 1)));
        }
        // Stamp the parent's children-rewrite txid: later transactions
        // locking this parent floor their allocation above it, keeping
        // children rewrites totally ordered across shard groups.
        parent_sets.push((node_attr::CHILDREN_TXID.to_owned(), SerValue::Txid));
        let parent_commit = CommitItem {
            key: keys::node(parent),
            lock_ts: parent_acq.token.timestamp,
            sets: parent_sets,
            appends: vec![(
                node_attr::CHILDREN.to_owned(),
                SerValue::StrList(vec![zkpath::basename(&final_path).to_owned()]),
            )],
            removes: vec![],
            list_removes: vec![],
        };

        let stat = Stat {
            created_txid: 0,
            modified_txid: 0,
            version: 0,
            num_children: 0,
            data_length: payload.byte_len() as u32,
            ephemeral: mode.is_ephemeral(),
        };
        Ok(WritePlan {
            commit: SystemCommit {
                items: vec![node_item, parent_commit],
            },
            user_update: UserUpdate::WriteNode {
                path: final_path.clone(),
                payload: payload.clone(),
                created_txid: 0,
                version: 0,
                children: vec![],
                ephemeral_owner: ephemeral_owner.clone(),
                parent_children: Some((parent.to_owned(), children_after)),
            },
            stat,
            fires: vec![
                FiredWatch {
                    watch_path: final_path.clone(),
                    event_type: WatchEventType::NodeCreated,
                },
                FiredWatch {
                    watch_path: parent.to_owned(),
                    event_type: WatchEventType::NodeChildrenChanged,
                },
            ],
            eph_adds: ephemeral_owner
                .is_some()
                .then(|| final_path.clone())
                .into_iter()
                .collect(),
            ..WritePlan::new(final_path)
        })
    }

    fn plan_set_data(
        &self,
        payload: &Payload,
        expected_version: i32,
        path: &str,
        acquired: &[Acquired],
        tag: &str,
    ) -> Result<WritePlan, OpError> {
        if payload.byte_len() > self.config.max_node_bytes {
            return Err(OpError::Client(FkError::TooLarge {
                size: payload.byte_len(),
                limit: self.config.max_node_bytes,
            }));
        }
        let acq = Self::find(acquired, path);
        if !Sys::node_exists(acq.old.as_ref()) {
            return Err(OpError::Client(FkError::NoNode));
        }
        let item = acq.old.as_ref().expect("node exists");
        let vcount = item.num(node_attr::VCOUNT).unwrap_or(0) as i32;
        if expected_version >= 0 && vcount != expected_version {
            if item.str("req_tag") == Some(tag) {
                return Ok(WritePlan::already(
                    item.num(node_attr::VERSION).unwrap_or(0) as u64,
                ));
            }
            return Err(OpError::Client(FkError::BadVersion));
        }
        let children: Vec<String> = item
            .list(node_attr::CHILDREN)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        let created = item.num(node_attr::CREATED).unwrap_or(0) as u64;
        let ephemeral_owner = item.str(node_attr::EPH_OWNER).map(str::to_owned);

        let commit_item = CommitItem {
            key: keys::node(path),
            lock_ts: acq.token.timestamp,
            sets: vec![
                (node_attr::VERSION.to_owned(), SerValue::Txid),
                (
                    node_attr::VCOUNT.to_owned(),
                    SerValue::Num((vcount + 1) as i64),
                ),
                ("req_tag".to_owned(), SerValue::Str(tag.to_owned())),
            ],
            appends: vec![(node_attr::TXQ.to_owned(), SerValue::TxidList)],
            removes: vec![],
            list_removes: vec![],
        };
        let stat = Stat {
            created_txid: created,
            modified_txid: 0,
            version: vcount + 1,
            num_children: children.len() as u32,
            data_length: payload.byte_len() as u32,
            ephemeral: ephemeral_owner.is_some(),
        };
        Ok(WritePlan {
            commit: SystemCommit {
                items: vec![commit_item],
            },
            user_update: UserUpdate::WriteNode {
                path: path.to_owned(),
                payload: payload.clone(),
                created_txid: created,
                version: vcount + 1,
                children,
                ephemeral_owner,
                parent_children: None,
            },
            stat,
            fires: vec![FiredWatch {
                watch_path: path.to_owned(),
                event_type: WatchEventType::NodeDataChanged,
            }],
            ..WritePlan::new(path.to_owned())
        })
    }

    fn plan_delete(
        &self,
        expected_version: i32,
        path: &str,
        parent: &str,
        acquired: &[Acquired],
        tag: &str,
    ) -> Result<WritePlan, OpError> {
        let acq = Self::find(acquired, path);
        if !Sys::node_exists(acq.old.as_ref()) {
            if acq
                .old
                .as_ref()
                .map(|i| i.contains(node_attr::DELETED) && i.str("req_tag") == Some(tag))
                .unwrap_or(false)
            {
                return Ok(WritePlan::already(
                    acq.old
                        .as_ref()
                        .and_then(|i| i.num(node_attr::VERSION))
                        .unwrap_or(0) as u64,
                ));
            }
            return Err(OpError::Client(FkError::NoNode));
        }
        let item = acq.old.as_ref().expect("node exists");
        let vcount = item.num(node_attr::VCOUNT).unwrap_or(0) as i32;
        if expected_version >= 0 && vcount != expected_version {
            return Err(OpError::Client(FkError::BadVersion));
        }
        if item
            .list(node_attr::CHILDREN)
            .map(|l| !l.is_empty())
            .unwrap_or(false)
        {
            return Err(OpError::Client(FkError::NotEmpty));
        }
        let parent_acq = Self::find(acquired, parent);
        let name = zkpath::basename(path).to_owned();
        let parent_children: Vec<String> = parent_acq
            .old
            .as_ref()
            .and_then(|i| i.list(node_attr::CHILDREN))
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .filter(|c| c != &name)
                    .collect()
            })
            .unwrap_or_default();

        let node_item = CommitItem {
            key: keys::node(path),
            lock_ts: acq.token.timestamp,
            sets: vec![
                (node_attr::DELETED.to_owned(), SerValue::Num(1)),
                (node_attr::VERSION.to_owned(), SerValue::Txid),
                ("req_tag".to_owned(), SerValue::Str(tag.to_owned())),
            ],
            appends: vec![(node_attr::TXQ.to_owned(), SerValue::TxidList)],
            removes: vec![],
            list_removes: vec![],
        };
        let parent_item = CommitItem {
            key: keys::node(parent),
            lock_ts: parent_acq.token.timestamp,
            sets: vec![(node_attr::CHILDREN_TXID.to_owned(), SerValue::Txid)],
            appends: vec![],
            removes: vec![],
            list_removes: vec![(
                node_attr::CHILDREN.to_owned(),
                SerValue::StrList(vec![name]),
            )],
        };
        Ok(WritePlan {
            commit: SystemCommit {
                items: vec![node_item, parent_item],
            },
            user_update: UserUpdate::DeleteNode {
                path: path.to_owned(),
                parent_children: Some((parent.to_owned(), parent_children)),
            },
            fires: vec![
                FiredWatch {
                    watch_path: path.to_owned(),
                    event_type: WatchEventType::NodeDeleted,
                },
                FiredWatch {
                    watch_path: parent.to_owned(),
                    event_type: WatchEventType::NodeChildrenChanged,
                },
            ],
            is_delete: true,
            eph_removes: item
                .str(node_attr::EPH_OWNER)
                .map(|owner| (owner.to_owned(), path.to_owned()))
                .into_iter()
                .collect(),
            ..WritePlan::new(path.to_owned())
        })
    }

    /// CloseSession: delete the session's ephemeral nodes (each a regular
    /// delete transaction), then push a deregistration record so the
    /// leader confirms completion in order (§3.6).
    fn close_session(
        &self,
        ctx: &Ctx,
        request: &ClientRequest,
        membership: Option<&Membership>,
    ) -> Result<(), FnError> {
        let session = &request.session_id;
        let Some(item) = self.system.get_session(ctx, session) else {
            self.notify_failure(ctx, session, request.request_id, FkError::SessionExpired);
            return Ok(());
        };
        let mut ephemerals: Vec<String> = item
            .list(session_attr::EPHEMERALS)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        ephemerals.sort();
        for path in ephemerals {
            let sub = ClientRequest {
                session_id: session.clone(),
                request_id: INTERNAL_REQUEST,
                op: WriteOp::Delete {
                    path: path.clone(),
                    expected_version: -1,
                },
            };
            match self.run_single(ctx, &sub, membership) {
                Ok(_) => {}
                Err(OpError::Client(_)) => {} // already gone: fine
                Err(OpError::Retry(e)) => return Err(e),
            }
        }
        // The deregistration record sequences after every prior write of
        // the session: its prev_txid makes the receiving leader hold it
        // back until all of them (wherever they were sharded) have been
        // distributed, so the session item is not removed under a leader
        // that still needs its high-water mark. (Single-group tiers get
        // this for free from their one queue's total order.)
        let multi_group = self.leader_queues.shards() > 1;
        // The same drain re-route as regular writes: deregistration must
        // not land in a queue whose leader is winding down.
        let dereg_group = self.routed_group(membership, session);
        let (txid, prev_txid) = if multi_group {
            let prev_txid = self.system.session_last_txid(ctx, session);
            let txid = with_retry(
                ctx,
                self.meter(),
                &RetryPolicy::standard(),
                "follower.alloc_txid",
                || self.system.alloc_txid(ctx, dereg_group, prev_txid),
            )
            .map_err(|e| FnError::retryable(e.to_string()))?;
            (txid, prev_txid)
        } else {
            (0, 0)
        };
        let record = LeaderRecord {
            session_id: session.clone(),
            request_id: request.request_id,
            txid,
            prev_txid,
            path: String::new(),
            commit: SystemCommit::default(),
            user_update: UserUpdate::None,
            stat: Stat::default(),
            fires: vec![],
            is_delete: false,
            deregister_session: true,
            ops: vec![],
        };
        ctx.push_phase("push_to_leader");
        let body = record.encode();
        let sent = with_retry(
            ctx,
            self.meter(),
            &RetryPolicy::standard(),
            "follower.push",
            || {
                self.leader_queues
                    .queue(dereg_group)
                    .send(ctx, LEADER_GROUP, body.clone())
            },
        );
        ctx.pop_phase();
        sent.map_err(|e| FnError::retryable(e.to_string()))?;
        if multi_group {
            self.record_push_mark(ctx, session, txid)
                .map_err(|e| FnError::retryable(e.to_string()))?;
        }
        Ok(())
    }
}

/// Plan produced by validation: everything needed for ➂ and ➃.
struct WritePlan {
    final_path: String,
    commit: SystemCommit,
    user_update: UserUpdate,
    stat: Stat,
    fires: Vec<FiredWatch>,
    is_delete: bool,
    /// Multi sub-operations (empty for single ops).
    subs: Vec<MultiSub>,
    /// Ephemeral paths to add to the session's cleanup list post-commit.
    eph_adds: Vec<String>,
    /// `(owner, path)` ephemeral entries to drop post-commit.
    eph_removes: Vec<(String, String)>,
    /// Set when a redelivered request is detected as already committed.
    already_committed: Option<u64>,
    /// Set when the request needs no commit or distribution at all
    /// (check-only multi): the outcomes to notify directly.
    local_result: Option<Vec<OpOutcome>>,
}

impl WritePlan {
    fn new(final_path: String) -> Self {
        WritePlan {
            final_path,
            commit: SystemCommit::default(),
            user_update: UserUpdate::None,
            stat: Stat::default(),
            fires: vec![],
            is_delete: false,
            subs: vec![],
            eph_adds: vec![],
            eph_removes: vec![],
            already_committed: None,
            local_result: None,
        }
    }

    fn already(txid: u64) -> Self {
        WritePlan {
            already_committed: Some(txid),
            ..Self::new(String::new())
        }
    }
}

/// A locked-and-validated request, ready for phase ➂.
struct Prepared {
    acquired: Vec<Acquired>,
    plan: WritePlan,
}

/// A pushed request, ready for phase ➃.
struct Pushed {
    /// Wave position (failure-index reporting; 0 on the serial path).
    pos: usize,
    session: String,
    txid: u64,
    commit: SystemCommit,
    eph_adds: Vec<String>,
    eph_removes: Vec<(String, String)>,
}

/// A wave request staged for the batched push: the encoded record plus
/// everything phase ➃ needs once the send assigns its sequence number.
struct StagedPush {
    /// Wave position (for failure-index reporting).
    pos: usize,
    session: String,
    /// Resolved destination group (static hash of the final path plus
    /// drain redirects), shared by the txid allocation and the queue
    /// send.
    group: usize,
    /// The encoded leader record.
    body: bytes::Bytes,
    /// Multi-group allocated txid (`0` in single-group tiers, where the
    /// queue sequence number becomes the txid).
    alloc_txid: u64,
    commit: SystemCommit,
    eph_adds: Vec<String>,
    eph_removes: Vec<(String, String)>,
    /// Held locks, released by the commit — or explicitly if the send
    /// fails and the request redelivers.
    acquired: Vec<Acquired>,
}

/// Overlay state of one node during multi validation: the locked item's
/// state plus the effects of the multi's earlier ops, so each op
/// observes its predecessors (`czxid == 0` marks a node created by this
/// very multi — the leader substitutes the txid).
struct SimNode {
    exists: bool,
    vcount: i32,
    mzxid: u64,
    czxid: u64,
    children: Vec<String>,
    seq: i64,
    eph_owner: Option<String>,
}

/// The overlay entry for `path`, initialized from the locked item state
/// on first touch. Every overlay path is in the lock set by
/// construction.
fn sim_node<'a>(
    overlay: &'a mut HashMap<String, SimNode>,
    acquired: &[Acquired],
    path: &str,
) -> &'a mut SimNode {
    if !overlay.contains_key(path) {
        let key = keys::node(path);
        let item = acquired
            .iter()
            .find(|a| a.token.key == key)
            .and_then(|a| a.old.as_ref());
        overlay.insert(
            path.to_owned(),
            SimNode {
                exists: Sys::node_exists(item),
                vcount: item.and_then(|i| i.num(node_attr::VCOUNT)).unwrap_or(0) as i32,
                mzxid: item.and_then(|i| i.num(node_attr::VERSION)).unwrap_or(0) as u64,
                czxid: item.and_then(|i| i.num(node_attr::CREATED)).unwrap_or(0) as u64,
                children: item
                    .and_then(|i| i.list(node_attr::CHILDREN))
                    .map(|l| {
                        l.iter()
                            .filter_map(|v| v.as_str().map(str::to_owned))
                            .collect()
                    })
                    .unwrap_or_default(),
                seq: item.and_then(|i| i.num(node_attr::SEQ)).unwrap_or(0),
                eph_owner: item
                    .and_then(|i| i.str(node_attr::EPH_OWNER))
                    .map(str::to_owned),
            },
        );
    }
    overlay.get_mut(path).expect("just inserted")
}

/// The merged commit item for `path`, created with the path's lock
/// timestamp on first touch (first-touch order fixes the transact's item
/// order; the transaction is all-or-nothing either way).
fn delta<'a>(
    items: &'a mut Vec<CommitItem>,
    acquired: &[Acquired],
    path: &str,
) -> &'a mut CommitItem {
    let key = keys::node(path);
    if let Some(pos) = items.iter().position(|item| item.key == key) {
        return &mut items[pos];
    }
    let lock_ts = acquired
        .iter()
        .find(|a| a.token.key == key)
        .expect("multi locks every touched path")
        .token
        .timestamp;
    items.push(CommitItem {
        key,
        lock_ts,
        sets: vec![],
        appends: vec![],
        removes: vec![],
        list_removes: vec![],
    });
    items.last_mut().expect("just pushed")
}

/// Sets (or replaces) one attribute in a merged commit item — a later op
/// of the multi overrides an earlier op's value for the same attribute
/// (the parent's `seq_counter` under several sequential creates).
fn set_attr(item: &mut CommitItem, attr: &str, value: SerValue) {
    match item.sets.iter_mut().find(|(a, _)| a == attr) {
        Some(entry) => entry.1 = value,
        None => item.sets.push((attr.to_owned(), value)),
    }
}

/// Redelivery probe: the locked item carries this request's tag, so the
/// multi already committed (atomically — one committed item implies all
/// did); returns the committed txid.
fn already_probe(acquired: &[Acquired], path: &str, tag: &str) -> Option<u64> {
    let key = keys::node(path);
    let item = acquired.iter().find(|a| a.token.key == key)?.old.as_ref()?;
    (item.str("req_tag") == Some(tag)).then(|| item.num(node_attr::VERSION).unwrap_or(0) as u64)
}

/// The set of system-store node keys a request locks — conservatively,
/// since sequential creates lock a generated name that is only known
/// under the parent lock (the parent itself is in the set, which is what
/// serializes the counter). `None` marks requests that conflict with
/// everything (CloseSession: its ephemeral cleanup is unbounded).
fn lock_set(op: &WriteOp) -> Option<Vec<&str>> {
    let mut paths = Vec::new();
    match op {
        WriteOp::SetData { path, .. } => paths.push(path.as_str()),
        WriteOp::Create { path, mode, .. } => {
            if !mode.is_sequential() {
                paths.push(path.as_str());
            }
            paths.push(zkpath::parent(path).unwrap_or("/"));
        }
        WriteOp::Delete { path, .. } => {
            paths.push(path.as_str());
            paths.push(zkpath::parent(path).unwrap_or("/"));
        }
        WriteOp::CloseSession => return None,
        WriteOp::Multi { ops } => {
            for op in ops {
                match op {
                    MultiOp::Create { path, mode, .. } => {
                        if !mode.is_sequential() {
                            paths.push(path.as_str());
                        }
                        paths.push(zkpath::parent(path).unwrap_or("/"));
                    }
                    MultiOp::SetData { path, .. } | MultiOp::Check { path, .. } => {
                        paths.push(path.as_str());
                    }
                    MultiOp::Delete { path, .. } => {
                        paths.push(path.as_str());
                        paths.push(zkpath::parent(path).unwrap_or("/"));
                    }
                }
            }
        }
    }
    Some(paths)
}

/// The exclusive end of the wave starting at `start`: the longest run of
/// requests whose lock sets are pairwise disjoint. A sequential create's
/// generated name is not in its set — collisions with an explicitly
/// named sibling lock are resolved by the lock acquisition itself (the
/// loser retries via redelivery), exactly as between two concurrent
/// follower instances.
fn wave_end(requests: &[(usize, ClientRequest)], start: usize) -> usize {
    let Some((_, first)) = requests.get(start) else {
        return start;
    };
    let Some(first_set) = lock_set(&first.op) else {
        return start + 1; // CloseSession: singleton wave
    };
    let mut locked: HashSet<&str> = first_set.into_iter().collect();
    let mut end = start + 1;
    while end < requests.len() {
        let (_, request) = &requests[end];
        let Some(set) = lock_set(&request.op) else {
            break;
        };
        if set.iter().any(|path| locked.contains(path)) {
            break;
        }
        locked.extend(set);
        end += 1;
    }
    end
}

/// Internal error split: client errors are notified, retry errors bubble
/// to the queue for redelivery.
enum OpError {
    Client(FkError),
    Retry(FnError),
}

// Unit tests for the follower live in `functions_tests.rs` next to the
// leader's, since meaningful scenarios need both halves of the pipeline.
