//! The heartbeat function (§3.6).
//!
//! ZooKeeper keeps sessions alive through heartbeats on the TCP
//! connection; FaaSKeeper replaces them with a *scheduled* function that
//! periodically scans the session table, pings every client in parallel,
//! and starts an eviction for sessions that stop answering — placing a
//! deregistration request in the processing queue so that ephemeral-node
//! cleanup flows through the ordinary ordered write path.

use crate::follower::INTERNAL_REQUEST;
use crate::messages::{ClientNotification, ClientRequest, WriteOp};
use crate::notify::ClientBus;
use crate::replica::CommittedFloors;
use crate::system_store::SystemStore;
use fk_cloud::queue::Queue;
use fk_cloud::trace::Ctx;
use fk_cloud::CloudResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of one heartbeat round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeartbeatReport {
    /// Sessions found in the table scan.
    pub scanned: usize,
    /// Sessions pinged.
    pub pinged: usize,
    /// Sessions that failed the ping and were queued for eviction.
    pub evicted: Vec<String>,
}

/// The heartbeat function body.
pub struct Heartbeat {
    system: SystemStore,
    bus: ClientBus,
    write_queue: Queue,
    /// Monotone round counter carried in each ping.
    round: AtomicU64,
    /// The leader tier's distributed-txid high-water publication, when
    /// deployed: each ping piggybacks `floors.committed()` (the min
    /// over shard groups) so an idle session's MRD keeps advancing —
    /// and its cache/replica hits stay eligible — without a write.
    floors: Option<Arc<CommittedFloors>>,
}

impl Heartbeat {
    /// Creates the function body.
    pub fn new(system: SystemStore, bus: ClientBus, write_queue: Queue) -> Self {
        Heartbeat {
            system,
            bus,
            write_queue,
            round: AtomicU64::new(0),
            floors: None,
        }
    }

    /// Builder: piggyback the leaders' distributed high-water marks onto
    /// every ping ([`CommittedFloors`]).
    pub fn with_floors(mut self, floors: Arc<CommittedFloors>) -> Self {
        self.floors = Some(floors);
        self
    }

    /// One scheduled round: scan, parallel ping, evict non-responders.
    pub fn run(&self, ctx: &Ctx) -> CloudResult<HeartbeatReport> {
        let sessions = ctx.span("scan_sessions", || self.system.list_sessions(ctx));
        let mut report = HeartbeatReport {
            scanned: sessions.len(),
            ..HeartbeatReport::default()
        };
        // "The function sends in parallel heartbeat messages to clients":
        // the round trips overlap, but building and dispatching each ping
        // is CPU work on the function's (memory-scaled) allocation.
        let round = self.round.fetch_add(1, Ordering::SeqCst) + 1;
        let committed = self
            .floors
            .as_ref()
            .map(|floors| floors.committed())
            .unwrap_or(0);
        let mut forks = Vec::with_capacity(sessions.len());
        let mut dead = Vec::new();
        ctx.span("ping_clients", || {
            for (id, _item) in &sessions {
                ctx.charge(fk_cloud::ops::Op::FnCompute, 16 * 1024);
                let child = ctx.fork();
                report.pinged += 1;
                let ping = ClientNotification::Ping { round, committed };
                if !self.bus.ping_with(&child, id, ping) {
                    dead.push(id.clone());
                }
                forks.push(child);
            }
        });
        ctx.join(&forks);
        for id in dead {
            let request = ClientRequest {
                session_id: id.clone(),
                request_id: INTERNAL_REQUEST,
                op: WriteOp::CloseSession,
            };
            // Eviction must survive transient queue errors: a dropped
            // CloseSession would leak the dead session's ephemerals
            // until the next round. Safe to repeat — a failed send
            // enqueued nothing, and even a duplicate CloseSession is
            // absorbed by the follower's internal-request handling.
            let body = request.encode();
            ctx.span("evict", || {
                fk_cloud::with_retry(
                    ctx,
                    self.write_queue.meter(),
                    &fk_cloud::RetryPolicy::standard(),
                    "heartbeat.evict",
                    || self.write_queue.send(ctx, &id, body.clone()),
                )
            })?;
            report.evicted.push(id);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fk_cloud::metering::Meter;
    use fk_cloud::{KvStore, QueueKind, Region};

    fn setup() -> (Heartbeat, SystemStore, ClientBus, Queue, Ctx) {
        let kv = KvStore::new("sys", Region::US_EAST_1, Meter::new());
        let system = SystemStore::new(kv, 1000);
        let bus = ClientBus::new();
        let queue = Queue::new("writes", QueueKind::Fifo, Region::US_EAST_1, Meter::new());
        let hb = Heartbeat::new(system.clone(), bus.clone(), queue.clone());
        (hb, system, bus, queue, Ctx::disabled())
    }

    #[test]
    fn responsive_clients_stay_alive() {
        let (hb, system, bus, queue, ctx) = setup();
        system.register_session(&ctx, "s1", 0).unwrap();
        let (_rx, _alive) = bus.register("s1");
        let report = hb.run(&ctx).unwrap();
        assert_eq!(report.scanned, 1);
        assert_eq!(report.pinged, 1);
        assert!(report.evicted.is_empty());
        assert_eq!(queue.pending(), 0);
    }

    #[test]
    fn silent_clients_are_evicted_via_queue() {
        let (hb, system, bus, queue, ctx) = setup();
        system.register_session(&ctx, "s1", 0).unwrap();
        system.register_session(&ctx, "s2", 0).unwrap();
        let (_rx1, _alive1) = bus.register("s1");
        let (_rx2, alive2) = bus.register("s2");
        alive2.store(false, std::sync::atomic::Ordering::SeqCst);

        let report = hb.run(&ctx).unwrap();
        assert_eq!(report.evicted, vec!["s2".to_owned()]);
        // The eviction is an ordinary CloseSession request on the session's
        // own ordering group.
        let batch = queue
            .receive(10, std::time::Duration::from_secs(5))
            .unwrap();
        let req = ClientRequest::decode(&batch.messages[0].body).unwrap();
        assert_eq!(req.session_id, "s2");
        assert_eq!(req.op, WriteOp::CloseSession);
        assert_eq!(&*batch.messages[0].group, "s2");
    }

    #[test]
    fn unregistered_endpoint_counts_as_dead() {
        let (hb, system, _bus, queue, ctx) = setup();
        system.register_session(&ctx, "ghost", 0).unwrap();
        let report = hb.run(&ctx).unwrap();
        assert_eq!(report.evicted, vec!["ghost".to_owned()]);
        assert_eq!(queue.pending(), 1);
    }

    #[test]
    fn pings_piggyback_committed_floor() {
        let kv = KvStore::new("sys", Region::US_EAST_1, Meter::new());
        let system = SystemStore::new(kv, 1000);
        let bus = ClientBus::new();
        let queue = Queue::new("writes", QueueKind::Fifo, Region::US_EAST_1, Meter::new());
        let floors = Arc::new(CommittedFloors::new(1));
        floors.publish(0, 17);
        let hb = Heartbeat::new(system.clone(), bus.clone(), queue).with_floors(floors.clone());
        let ctx = Ctx::disabled();
        system.register_session(&ctx, "s1", 0).unwrap();
        let (rx, _alive) = bus.register("s1");
        hb.run(&ctx).unwrap();
        assert_eq!(
            rx.try_recv().unwrap(),
            ClientNotification::Ping {
                round: 1,
                committed: 17
            }
        );
        // The floor advances between rounds; so does the round counter.
        floors.publish(0, 23);
        hb.run(&ctx).unwrap();
        assert_eq!(
            rx.try_recv().unwrap(),
            ClientNotification::Ping {
                round: 2,
                committed: 23
            }
        );
    }

    #[test]
    fn empty_table_is_a_noop() {
        let (hb, _system, _bus, queue, ctx) = setup();
        let report = hb.run(&ctx).unwrap();
        assert_eq!(report, HeartbeatReport::default());
        assert_eq!(queue.pending(), 0);
    }
}
